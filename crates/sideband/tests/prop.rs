//! Seeded property sweeps over the side-band model: quantizer error
//! bound/monotonicity and the gather-latency formula `g = ceil(k/2)·h·n`.
//!
//! Like `wormsim`'s flow properties, these are in-tree seeded case
//! generators rather than `proptest` strategies, so the workspace builds
//! with no network access (README, "Hermetic build"). Enable
//! `slow-proptests` for a wider sweep:
//!
//! ```sh
//! cargo test -p sideband --features slow-proptests
//! ```

use sideband::width::bits_for_max;
use sideband::{Quantizer, Sideband, SidebandConfig};

const CASES: u64 = if cfg!(feature = "slow-proptests") {
    20_000
} else {
    2_000
};

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One random (bits, max, value) triple with `value <= max`.
fn quant_case(case: u64) -> (u32, u32, u32) {
    let mut rng = 0x0FA_17D0_u64 ^ case;
    let bits = 1 + (mix(&mut rng) % 32) as u32; // 1..=32
                                                // Mix tiny, paper-sized and huge ranges.
    let max = match mix(&mut rng) % 4 {
        0 => (mix(&mut rng) % 16) as u32,     // degenerate: 0..=15
        1 => 3072,                            // the paper's census range
        2 => (mix(&mut rng) % 10_000) as u32, // mid-size
        _ => (mix(&mut rng) % u64::from(u32::MAX)) as u32, // anywhere
    };
    let value = if max == 0 {
        0
    } else {
        (mix(&mut rng) % (u64::from(max) + 1)) as u32
    };
    (bits, max, value)
}

/// The receiver's error is strictly below one quantization step, and the
/// quantized count never exceeds the true one (truncation, not rounding —
/// the throttle must never see *more* congestion reported than exists).
#[test]
fn quantizer_error_is_bounded_by_one_step() {
    for case in 0..CASES {
        let (bits, max, value) = quant_case(case);
        let q = Quantizer::new(bits).quantize(value, max);
        assert!(q <= value, "case {case}: q({value})={q} grew");
        let needed = bits_for_max(max);
        if needed <= bits {
            assert_eq!(q, value, "case {case}: wide channel must be identity");
        } else {
            let step = 1u32 << (needed - bits);
            assert!(
                value - q < step,
                "case {case}: error {} >= step {step} (bits={bits}, max={max}, v={value})",
                value - q
            );
        }
    }
}

/// Quantization preserves order: a larger census never quantizes to a
/// smaller transmitted count (the controller's comparisons survive the
/// narrow side-band).
#[test]
fn quantizer_is_monotonic() {
    for case in 0..CASES {
        let (bits, max, v1) = quant_case(case);
        let mut rng = 0x0_0DE2 ^ case;
        let v2 = if max == 0 {
            0
        } else {
            (mix(&mut rng) % (u64::from(max) + 1)) as u32
        };
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        let q = Quantizer::new(bits);
        assert!(
            q.quantize(lo, max) <= q.quantize(hi, max),
            "case {case}: quantize not monotonic (bits={bits}, max={max}, {lo} vs {hi})"
        );
    }
}

/// Quantization is idempotent: a value already on the grid stays put, so
/// re-quantizing at a relay hop loses nothing further.
#[test]
fn quantizer_is_idempotent() {
    for case in 0..CASES {
        let (bits, max, value) = quant_case(case);
        let q = Quantizer::new(bits);
        let once = q.quantize(value, max);
        assert_eq!(q.quantize(once, max), once, "case {case}");
    }
}

/// The gather latency is exactly `g = ceil(k/2) * h * n` for every
/// (radix, dimensions, hop-delay) combination — checked against the
/// formula and, behaviorally, against when the first snapshot becomes
/// visible (taken at `g`, in flight for `g`, visible at `2g`).
#[test]
fn gather_latency_is_half_radix_times_hops_times_dims() {
    // (k, n, h): the paper's network, the small preset, odd radix,
    // single-dimension rings and a slow side-band.
    let combos: &[(usize, usize, u64)] = &[
        (16, 2, 2), // paper: g = 32
        (8, 2, 2),  // small preset: g = 16
        (8, 3, 1),
        (5, 2, 2), // odd radix rounds half the ring up
        (16, 2, 4),
        (4, 3, 3),
        (2, 1, 1),
    ];
    for &(k, n, h) in combos {
        let cfg = SidebandConfig {
            radix: k,
            dimensions: n,
            hop_delay: h,
            ..SidebandConfig::paper()
        };
        let g = (k as u64).div_ceil(2) * h * n as u64;
        assert_eq!(cfg.gather_period(), g, "formula for k={k} n={n} h={h}");

        // Behavioral check: nothing is visible through cycle 2g-1; the
        // snapshot taken at g arrives exactly at 2g. The census must stay
        // within the network's physical ceiling or receivers reject it.
        let mut sb = Sideband::new(cfg);
        let census = sb.max_full_buffers().min(42);
        for now in 0..2 * g {
            sb.on_cycle(now, census, 0);
            assert!(
                sb.latest().is_none(),
                "k={k} n={n} h={h}: snapshot visible early at cycle {now}"
            );
        }
        sb.on_cycle(2 * g, census, 0);
        let s = sb.latest().unwrap_or_else(|| {
            panic!(
                "k={k} n={n} h={h}: first snapshot must be visible at 2g={}",
                2 * g
            )
        });
        assert_eq!(s.taken_at, g);
        assert_eq!(s.available_at, 2 * g);
        assert_eq!(s.full_buffers, census);
    }
}

/// Same latency law under random (k, n, h) draws: the snapshot stream is
/// periodic with period `g` and every aggregate is visible exactly `g`
/// cycles after it was taken.
#[test]
fn gather_stream_is_periodic_for_random_shapes() {
    let cases = CASES / 200; // each case drives a few thousand cycles
    for case in 0..cases.max(4) {
        let mut rng = 0x6A7_4E12 ^ case;
        let k = 2 + (mix(&mut rng) % 15) as usize; // 2..=16
        let n = 1 + (mix(&mut rng) % 3) as usize; // 1..=3
        let h = 1 + mix(&mut rng) % 4; // 1..=4
        let cfg = SidebandConfig {
            radix: k,
            dimensions: n,
            hop_delay: h,
            ..SidebandConfig::paper()
        };
        let g = cfg.gather_period();
        assert_eq!(g, (k as u64).div_ceil(2) * h * n as u64);

        let mut sb = Sideband::new(cfg);
        // Census encodes the cycle (mod the physical ceiling, or receivers
        // reject it) so snapshots are distinguishable.
        let m = u64::from(sb.max_full_buffers()).min(97) + 1;
        for now in 0..=6 * g {
            sb.on_cycle(now, (now % m) as u32, 2 * now);
            if let Some(s) = sb.latest() {
                // Visible aggregate is the newest one due: taken at the
                // last boundary at least g cycles ago.
                assert_eq!(s.available_at, s.taken_at + g, "case {case}");
                assert_eq!(s.taken_at % g, 0, "case {case}");
                assert_eq!(
                    s.taken_at,
                    (now / g).saturating_sub(1) * g,
                    "case {case} cycle {now}"
                );
                assert_eq!(s.full_buffers, (s.taken_at % m) as u32, "case {case}");
            } else {
                assert!(now < 2 * g, "case {case}: no snapshot by cycle {now}");
            }
        }
    }
}
