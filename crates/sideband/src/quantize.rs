/// Models a narrow side-band: counts are truncated to `bits` bits by
/// dropping low-order bits before transmission and scaled back up at the
/// receiver.
///
/// The companion technical report shows the paper's 25 side-band bits can be
/// squeezed into 9-bit channels "with very little performance degradation";
/// this type lets the ablation experiment (X4 in DESIGN.md) reproduce that
/// claim by quantizing both transmitted counts.
///
/// # Examples
///
/// ```
/// use sideband::Quantizer;
/// let q = Quantizer::new(4);
/// // A 12-bit count squeezed into 4 bits keeps the high nibble.
/// assert_eq!(q.quantize(0xABC, 0xFFF), 0xA00);
/// // Values that already fit are untouched.
/// assert_eq!(q.quantize(9, 15), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// A quantizer transmitting `bits` bits per count.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=32).contains(&bits),
            "quantizer width must be 1..=32 bits"
        );
        Quantizer { bits }
    }

    /// The transmitted width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes `value` (whose maximum possible value is `max`) to the
    /// representable grid: the receiver sees `value` with the low
    /// `needed_bits(max) - bits` bits cleared.
    #[must_use]
    pub fn quantize(&self, value: u32, max: u32) -> u32 {
        let needed = crate::width::bits_for_max(max);
        if needed <= self.bits {
            return value;
        }
        let shift = needed - self.bits;
        (value >> shift) << shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_is_bounded() {
        let q = Quantizer::new(9);
        let max = 3072u32; // 12 bits
        let step = 1u32 << (12 - 9);
        for v in [0u32, 1, 7, 8, 100, 1000, 3072] {
            let out = q.quantize(v, max);
            assert!(out <= v);
            assert!(v - out < step, "error too large for {v}: {out}");
        }
    }

    #[test]
    fn identity_when_wide_enough() {
        let q = Quantizer::new(13);
        for v in [0u32, 1, 4095, 8191] {
            assert_eq!(q.quantize(v, 8191), v);
        }
        // 8192 needs 14 bits, so a 13-bit channel halves the resolution.
        assert_eq!(Quantizer::new(13).quantize(4095, 8192), 4094);
    }

    #[test]
    #[should_panic(expected = "quantizer width")]
    fn zero_bits_rejected() {
        let _ = Quantizer::new(0);
    }
}
