//! Side-band global-information-gather network model.
//!
//! The paper distributes two global quantities to every node over a dedicated
//! side-band: the network-wide count of **full** virtual-channel buffers and
//! the network-wide **delivered-flit count** of the last gather window. A
//! dimension-wise aggregation over a full-duplex k-ary n-cube completes the
//! all-to-all reduction in
//!
//! ```text
//! g = ceil(k / 2) * h * n   cycles     (the "gather duration")
//! ```
//!
//! where `h` is the per-hop side-band delay (2 cycles in the paper, so
//! `g = 32` for the 16-ary 2-cube). Nodes therefore see `g`-cycle-delayed
//! snapshots of the network, one every `g` cycles, and *linearly extrapolate*
//! from the two most recent snapshots to estimate current congestion.
//!
//! This crate models exactly that timing: [`Sideband::on_cycle`] is fed the
//! true instantaneous census each cycle; snapshots taken at multiples of `g`
//! become visible to the (replicated, network-wide identical) receivers `g`
//! cycles later; [`Sideband::estimate`] produces the congestion estimate the
//! throttle compares against its threshold.
//!
//! The bit-width accounting of §5 (12 bits of full-buffer count + 13 bits of
//! throughput = 25 side-band bits for the paper's network) lives in
//! [`width`], and the companion technical report's narrow (quantized)
//! side-band variant is modeled by [`Quantizer`].
//!
//! # Examples
//!
//! ```
//! use sideband::{Estimator, Sideband, SidebandConfig};
//!
//! let cfg = SidebandConfig::paper(); // k=16, n=2, h=2  =>  g=32
//! assert_eq!(cfg.gather_period(), 32);
//! let mut sb = Sideband::new(cfg);
//! let mut delivered = 0u64;
//! for now in 0..200 {
//!     sb.on_cycle(now, 10 + (now / 32) as u32, delivered);
//!     delivered += 3;
//! }
//! // After a few gathers the estimate tracks the (slowly rising) census.
//! assert!(sb.estimate(200) > 10.0);
//! ```

mod gather;
mod quantize;
pub mod width;

pub use gather::{Estimator, Sideband, SidebandConfig, SidebandStats, Snapshot};
pub use quantize::Quantizer;
