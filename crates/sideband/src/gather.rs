use crate::Quantizer;
use faults::{FaultPlan, SidebandField, SnapshotFate};
use std::collections::VecDeque;

/// How receivers turn delayed snapshots into a current-congestion estimate.
///
/// The paper uses linear extrapolation and notes that "any prediction
/// mechanism based on previously observed network states can be used"; the
/// extra variants here exist for that ablation (X1 in DESIGN.md).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub enum Estimator {
    /// Use the most recent snapshot unchanged until the next one arrives.
    LastSnapshot,
    /// Linearly extrapolate from the two most recent snapshots (the paper's
    /// default; §3.1 reports it is worth 3–5% of throughput).
    #[default]
    LinearExtrapolation,
    /// Exponentially weighted moving average over snapshots with smoothing
    /// factor `alpha` in `(0, 1]` (1 degenerates to
    /// [`Estimator::LastSnapshot`]). Smooths census noise at the cost of
    /// extra lag — the opposite trade to extrapolation.
    Ewma {
        /// Weight of the newest snapshot.
        alpha: f64,
    },
}

/// Configuration of the side-band gather network.
#[derive(Debug, Clone, PartialEq)]
pub struct SidebandConfig {
    /// Torus radix `k`.
    pub radix: usize,
    /// Torus dimension count `n`.
    pub dimensions: usize,
    /// Per-hop side-band delay `h`, in cycles (2 in the paper).
    pub hop_delay: u64,
    /// Virtual channels per physical channel in the data network (3 in the
    /// paper); sizes the full-buffer count's value range for quantization,
    /// range validation and extrapolation clamping.
    pub vcs: usize,
    /// Estimation scheme used by receivers.
    pub estimator: Estimator,
    /// Optional narrow-side-band quantization of the transmitted counts
    /// (models the TR's 9-bit side-band channels).
    pub quantizer: Option<Quantizer>,
}

impl SidebandConfig {
    /// The paper's configuration: 16-ary 2-cube, `h = 2`, linear
    /// extrapolation, full-width (25-bit) side-band.
    #[must_use]
    pub fn paper() -> Self {
        SidebandConfig {
            radix: 16,
            dimensions: 2,
            hop_delay: 2,
            vcs: 3,
            estimator: Estimator::LinearExtrapolation,
            quantizer: None,
        }
    }

    /// The gather duration `g = ceil(k/2) * h * n`, in cycles.
    ///
    /// ```
    /// use sideband::SidebandConfig;
    /// assert_eq!(SidebandConfig::paper().gather_period(), 32);
    /// ```
    #[must_use]
    pub fn gather_period(&self) -> u64 {
        (self.radix as u64).div_ceil(2) * self.hop_delay * self.dimensions as u64
    }
}

/// One network snapshot as seen by receivers: the instantaneous full-buffer
/// count at `taken_at` and the flits delivered network-wide during the
/// gather window ending at `taken_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Cycle at which the snapshot was taken (a multiple of `g`).
    pub taken_at: u64,
    /// Cycle at which every node has received the aggregate (`taken_at + g`).
    pub available_at: u64,
    /// Network-wide count of completely full VC buffers at `taken_at`
    /// (quantized if a [`Quantizer`] is configured).
    pub full_buffers: u32,
    /// Flits delivered network-wide in `[taken_at - g, taken_at)`
    /// (quantized if a [`Quantizer`] is configured).
    pub delivered_flits: u32,
}

/// Fault and degradation event counters of one [`Sideband`] instance,
/// cumulative since construction. All zero on a fault-free side-band.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SidebandStats {
    /// Gathers whose aggregate never reached the receivers.
    pub lost_snapshots: u64,
    /// Gathers whose aggregate arrived late.
    pub delayed_snapshots: u64,
    /// Gathers whose transmitted counts were altered in transit.
    pub corrupted_snapshots: u64,
    /// Arrived aggregates rejected because a newer one was already visible
    /// (monotonicity validation; only out-of-order delays cause this).
    pub rejected_stale: u64,
    /// Arrived aggregates rejected because a count was outside its physical
    /// range (corruption detected by the receivers).
    pub rejected_range: u64,
}

impl SidebandStats {
    /// Total aggregates rejected by receiver-side validation.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_stale + self.rejected_range
    }
}

/// The side-band gather network: accepts the true census every cycle and
/// exposes delayed snapshots plus the congestion estimate derived from them.
///
/// All nodes receive identical aggregates at identical times under
/// dimension-wise aggregation on a symmetric torus, so one instance serves
/// the whole network.
///
/// An optional [`FaultPlan`] (see [`Sideband::set_faults`]) subjects every
/// gather to seeded loss, delay and corruption; receivers validate arrivals
/// (monotonic `taken_at`, counts within physical range) and count every
/// fault and rejection in [`Sideband::stats`].
#[derive(Debug, Clone)]
pub struct Sideband {
    cfg: SidebandConfig,
    period: u64,
    /// Snapshots in flight (taken, not yet visible to receivers).
    in_flight: VecDeque<Snapshot>,
    /// The two most recent snapshots visible to receivers: `[newest, older]`.
    visible: [Option<Snapshot>; 2],
    /// Running EWMA state (only maintained for [`Estimator::Ewma`]).
    ewma: Option<f64>,
    /// Cumulative delivered flits at the previous snapshot boundary.
    window_base: u64,
    last_cycle_seen: Option<u64>,
    /// Transit faults applied to every gather (`None` = perfect side-band).
    /// Boxed: the plan is cold state, and keeping the controller structs
    /// small matters more than one indirection per gather.
    faults: Option<Box<FaultPlan>>,
    stats: SidebandStats,
}

impl Sideband {
    /// Creates a side-band network from `cfg`.
    #[must_use]
    pub fn new(cfg: SidebandConfig) -> Self {
        let period = cfg.gather_period();
        Sideband {
            cfg,
            period,
            in_flight: VecDeque::with_capacity(4),
            visible: [None, None],
            ewma: None,
            window_base: 0,
            last_cycle_seen: None,
            faults: None,
            stats: SidebandStats::default(),
        }
    }

    /// Serializes the runtime state (in-flight and visible snapshots, EWMA,
    /// window base, cycle tracking, fault counters) into `enc`. The
    /// configuration and fault plan are not written; restore into a
    /// side-band built from the same configuration.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        fn snap(enc: &mut checkpoint::Enc, s: Option<&Snapshot>) {
            enc.bool(s.is_some());
            let s = s.copied().unwrap_or(Snapshot {
                taken_at: 0,
                available_at: 0,
                full_buffers: 0,
                delivered_flits: 0,
            });
            enc.u64(s.taken_at);
            enc.u64(s.available_at);
            enc.u32(s.full_buffers);
            enc.u32(s.delivered_flits);
        }
        enc.usize(self.in_flight.len());
        for s in &self.in_flight {
            snap(enc, Some(s));
        }
        for s in &self.visible {
            snap(enc, s.as_ref());
        }
        enc.opt_f64(self.ewma);
        enc.u64(self.window_base);
        enc.opt_u64(self.last_cycle_seen);
        enc.u64(self.stats.lost_snapshots);
        enc.u64(self.stats.delayed_snapshots);
        enc.u64(self.stats.corrupted_snapshots);
        enc.u64(self.stats.rejected_stale);
        enc.u64(self.stats.rejected_range);
    }

    /// Restores state captured with [`Sideband::save_state`] into a
    /// side-band built from the same configuration. In particular the
    /// cycle-sequencing state is restored, so [`Sideband::on_cycle`] resumes
    /// mid-gather exactly where the snapshot was taken.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream or a
    /// structurally impossible value.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        fn snap(
            dec: &mut checkpoint::Dec<'_>,
        ) -> Result<Option<Snapshot>, checkpoint::CheckpointError> {
            let some = dec.bool()?;
            let s = Snapshot {
                taken_at: dec.u64()?,
                available_at: dec.u64()?,
                full_buffers: dec.u32()?,
                delivered_flits: dec.u32()?,
            };
            Ok(some.then_some(s))
        }
        let n = dec.usize()?;
        if n > 1024 {
            return Err(checkpoint::CheckpointError::Corrupt(
                "implausible in-flight snapshot count",
            ));
        }
        let mut in_flight = VecDeque::with_capacity(n.max(4));
        for _ in 0..n {
            in_flight.push_back(snap(dec)?.ok_or(checkpoint::CheckpointError::Corrupt(
                "absent in-flight snapshot",
            ))?);
        }
        let visible = [snap(dec)?, snap(dec)?];
        self.in_flight = in_flight;
        self.visible = visible;
        self.ewma = dec.opt_f64()?;
        self.window_base = dec.u64()?;
        self.last_cycle_seen = dec.opt_u64()?;
        self.stats = SidebandStats {
            lost_snapshots: dec.u64()?,
            delayed_snapshots: dec.u64()?,
            corrupted_snapshots: dec.u64()?,
            rejected_stale: dec.u64()?,
            rejected_range: dec.u64()?,
        };
        Ok(())
    }

    /// Installs a fault plan: every subsequent gather is subject to the
    /// plan's side-band loss, delay and corruption. A plan whose side-band
    /// portion is quiet leaves the perfect-side-band fast path untouched.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = (!plan.sideband.is_quiet()).then(|| Box::new(plan));
    }

    /// Fault and rejection counters (all zero on a perfect side-band).
    #[must_use]
    pub fn stats(&self) -> SidebandStats {
        self.stats
    }

    /// The gather duration `g` in cycles.
    #[must_use]
    pub fn gather_period(&self) -> u64 {
        self.period
    }

    /// The configuration this side-band was built from.
    #[must_use]
    pub fn config(&self) -> &SidebandConfig {
        &self.cfg
    }

    /// Feeds one cycle of ground truth: the instantaneous network-wide
    /// full-buffer count and the *cumulative* delivered flit count.
    ///
    /// Must be called once per cycle with strictly increasing `now`
    /// (starting at 0); the simulator drives this.
    ///
    /// # Panics
    ///
    /// Panics if cycles are skipped or repeated.
    pub fn on_cycle(&mut self, now: u64, full_buffers: u32, delivered_cum: u64) {
        if let Some(prev) = self.last_cycle_seen {
            assert_eq!(now, prev + 1, "sideband must be ticked every cycle");
        } else {
            assert_eq!(now, 0, "sideband must be ticked starting at cycle 0");
        }
        self.last_cycle_seen = Some(now);

        // Promote snapshots that have finished propagating. Delay faults can
        // reorder arrivals, so scan the whole in-flight set (oldest due
        // aggregate first) rather than just the front.
        loop {
            let mut pick: Option<usize> = None;
            for (i, s) in self.in_flight.iter().enumerate() {
                if s.available_at <= now
                    && pick.is_none_or(|p| s.taken_at < self.in_flight[p].taken_at)
                {
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            let snap = self.in_flight.remove(i).expect("index from enumerate");
            self.accept(snap);
        }

        // Take a new snapshot at each gather boundary (skip cycle 0: there is
        // no delivery window behind it yet).
        if now > 0 && now.is_multiple_of(self.period) {
            let window_flits = delivered_cum - self.window_base;
            self.window_base = delivered_cum;
            let q = |v: u32, max: u32| match &self.cfg.quantizer {
                Some(quant) => quant.quantize(v, max),
                None => v,
            };
            let max_tput = (self.period * self.node_count() as u64) as u32;
            let mut snap = Snapshot {
                taken_at: now,
                available_at: now + self.period,
                full_buffers: q(full_buffers, self.max_full_buffers()),
                delivered_flits: q(
                    u32::try_from(window_flits).expect("window flits exceed u32"),
                    max_tput,
                ),
            };
            if let Some(plan) = &self.faults {
                match plan.snapshot_fate(now) {
                    SnapshotFate::Lost => {
                        self.stats.lost_snapshots += 1;
                        return;
                    }
                    SnapshotFate::Delayed(extra) => {
                        self.stats.delayed_snapshots += 1;
                        snap.available_at += extra;
                    }
                    SnapshotFate::OnTime => {}
                }
                let full = Self::corrupt_on_wire(
                    plan,
                    self.cfg.quantizer.as_ref(),
                    now,
                    SidebandField::FullBuffers,
                    snap.full_buffers,
                    self.max_full_buffers(),
                );
                let tput = Self::corrupt_on_wire(
                    plan,
                    self.cfg.quantizer.as_ref(),
                    now,
                    SidebandField::DeliveredFlits,
                    snap.delivered_flits,
                    max_tput,
                );
                if full != snap.full_buffers || tput != snap.delivered_flits {
                    self.stats.corrupted_snapshots += 1;
                }
                snap.full_buffers = full;
                snap.delivered_flits = tput;
            }
            self.in_flight.push_back(snap);
        }
    }

    /// Receiver-side validation and installation of one arrived aggregate.
    fn accept(&mut self, snap: Snapshot) {
        // Monotonicity: an aggregate older than the newest visible one
        // (possible only via delay faults) carries no usable information —
        // receivers keep the two newest snapshots — and would corrupt the
        // extrapolation baseline. Reject it.
        if self.visible[0].is_some_and(|s0| snap.taken_at <= s0.taken_at) {
            self.stats.rejected_stale += 1;
            return;
        }
        // Range: no census exceeds the number of buffers that exist, and no
        // window delivers more than one flit per node per cycle. Corrupted
        // counts outside those bounds are detectably impossible.
        if snap.full_buffers > self.max_full_buffers()
            || u64::from(snap.delivered_flits) > self.period * self.node_count() as u64
        {
            self.stats.rejected_range += 1;
            return;
        }
        self.visible = [Some(snap), self.visible[0]];
        if let Estimator::Ewma { alpha } = self.cfg.estimator {
            let v = f64::from(snap.full_buffers);
            self.ewma = Some(match self.ewma {
                Some(prev) => alpha * v + (1.0 - alpha) * prev,
                None => v,
            });
        }
    }

    /// Applies transit corruption to one transmitted count, composing with
    /// quantization: with a narrow side-band only the transmitted high bits
    /// are on the wire, so flips land there and scale back up at the
    /// receiver.
    fn corrupt_on_wire(
        plan: &FaultPlan,
        quantizer: Option<&Quantizer>,
        taken_at: u64,
        field: SidebandField,
        value: u32,
        max: u32,
    ) -> u32 {
        let needed = crate::width::bits_for_max(max);
        match quantizer {
            Some(q) if needed > q.bits() => {
                let shift = needed - q.bits();
                plan.corrupt_count(taken_at, field, value >> shift, q.bits()) << shift
            }
            _ => plan.corrupt_count(taken_at, field, value, needed),
        }
    }

    fn node_count(&self) -> usize {
        self.cfg.radix.pow(self.cfg.dimensions as u32)
    }

    /// The largest possible full-buffer census for the configured network
    /// (`nodes * 2n * vcs`): the quantization scale, the range-validation
    /// bound and the extrapolation ceiling.
    #[must_use]
    pub fn max_full_buffers(&self) -> u32 {
        (self.node_count() * 2 * self.cfg.dimensions * self.cfg.vcs) as u32
    }

    /// The largest full-buffer count one node can contribute to the
    /// dimension-wise reduction (`2n * vcs` input VCs per router): the
    /// quantization scale of a single node's side-band message.
    #[must_use]
    pub fn max_full_buffers_per_node(&self) -> u32 {
        (2 * self.cfg.dimensions * self.cfg.vcs) as u32
    }

    /// Quantizes one node's local contribution — the popcount of its
    /// occupancy bit-plane (`Network::full_buffers_at` in the simulator) —
    /// exactly as the narrow side-band would transmit it. Identity without
    /// a configured [`Quantizer`].
    ///
    /// The aggregate census the receivers see is the sum of these per-node
    /// popcounts; the global feed ([`Sideband::on_cycle`]) carries that sum
    /// maintained incrementally, and the simulator's debug audit pins the
    /// two views equal every cycle.
    #[must_use]
    pub fn quantize_node_census(&self, popcount: u32) -> u32 {
        match &self.cfg.quantizer {
            Some(q) => q.quantize(popcount, self.max_full_buffers_per_node()),
            None => popcount,
        }
    }

    /// How many gathers overdue the receivers' newest visible aggregate is
    /// at cycle `now`: 0 on a healthy side-band, and grows by one per gather
    /// period while aggregates fail to arrive. Drives the staleness
    /// watchdog of the self-tuned controller.
    #[must_use]
    pub fn gathers_overdue(&self, now: u64) -> u64 {
        if now < 2 * self.period {
            return 0; // the first aggregate cannot have arrived yet
        }
        // The newest gather boundary whose aggregate should be visible.
        let expected = (now / self.period - 1) * self.period;
        let have = self.visible[0].map_or(0, |s| s.taken_at);
        expected.saturating_sub(have) / self.period
    }

    /// The most recent snapshot visible to receivers, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Snapshot> {
        self.visible[0]
    }

    /// The snapshot before [`Sideband::latest`], if any.
    #[must_use]
    pub fn previous(&self) -> Option<Snapshot> {
        self.visible[1]
    }

    /// The receivers' estimate of the *current* network-wide full-buffer
    /// count at cycle `now`.
    ///
    /// With [`Estimator::LinearExtrapolation`] this is
    /// `s0 + (s0 - s1) * (now - t0) / g` clamped to the physical range
    /// `[0, max_full_buffers]` — no estimate may predict fewer than zero or
    /// more than every buffer full, however adversarial the snapshot pair
    /// (e.g. extrapolating far ahead across a stale gap); with
    /// [`Estimator::LastSnapshot`] it is simply `s0`. Before any snapshot is
    /// visible the estimate is 0 (an empty warm network).
    #[must_use]
    pub fn estimate(&self, now: u64) -> f64 {
        match (self.visible[0], self.visible[1], self.cfg.estimator) {
            (None, _, _) => 0.0,
            (Some(s0), _, Estimator::LastSnapshot) => f64::from(s0.full_buffers),
            (Some(s0), _, Estimator::Ewma { .. }) => {
                self.ewma.unwrap_or_else(|| f64::from(s0.full_buffers))
            }
            (Some(s0), None, Estimator::LinearExtrapolation) => f64::from(s0.full_buffers),
            (Some(s0), Some(s1), Estimator::LinearExtrapolation) => {
                let gap = (s0.taken_at - s1.taken_at) as f64;
                let slope = (f64::from(s0.full_buffers) - f64::from(s1.full_buffers)) / gap;
                let ahead = now.saturating_sub(s0.taken_at) as f64;
                (f64::from(s0.full_buffers) + slope * ahead)
                    .clamp(0.0, f64::from(self.max_full_buffers()))
            }
        }
    }

    /// Flits delivered network-wide in the most recent visible gather
    /// window (the throughput feedback used by the self-tuner).
    #[must_use]
    pub fn window_throughput(&self) -> Option<u32> {
        self.latest().map(|s| s.delivered_flits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sb: &mut Sideband, upto: u64, full: impl Fn(u64) -> u32, rate: u64) {
        let start = sb.last_cycle_seen.map_or(0, |c| c + 1);
        for now in start..=upto {
            sb.on_cycle(now, full(now), now * rate);
        }
    }

    #[test]
    fn gather_period_formula() {
        let cfg = SidebandConfig {
            radix: 8,
            dimensions: 3,
            hop_delay: 1,
            vcs: 3,
            estimator: Estimator::default(),
            quantizer: None,
        };
        assert_eq!(cfg.gather_period(), 12);
        // Odd radix rounds up.
        let cfg = SidebandConfig {
            radix: 5,
            dimensions: 2,
            hop_delay: 2,
            ..cfg
        };
        assert_eq!(cfg.gather_period(), 12);
        assert_eq!(SidebandConfig::paper().gather_period(), 32);
    }

    #[test]
    fn per_node_census_quantizes_on_the_node_scale() {
        // Paper network: 2n*vcs = 12 full buffers per node -> 4 bits needed.
        let sb = Sideband::new(SidebandConfig::paper());
        assert_eq!(sb.max_full_buffers_per_node(), 12);
        assert_eq!(
            sb.max_full_buffers(),
            sb.max_full_buffers_per_node() * 256,
            "global ceiling is the per-node ceiling summed over all nodes"
        );
        // Without a quantizer the popcount passes through.
        assert_eq!(sb.quantize_node_census(7), 7);
        // A 2-bit side-band keeps the high 2 of the 4 needed bits.
        let sb = Sideband::new(SidebandConfig {
            quantizer: Some(Quantizer::new(2)),
            ..SidebandConfig::paper()
        });
        assert_eq!(sb.quantize_node_census(7), 4);
        assert_eq!(sb.quantize_node_census(12), 12);
    }

    #[test]
    fn snapshots_arrive_exactly_one_gather_late() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        drive(&mut sb, 63, |_| 100, 0);
        // Snapshot taken at 32 is available at 64, not before.
        assert!(sb.latest().is_none());
        sb.on_cycle(64, 100, 0);
        let s = sb.latest().expect("snapshot at 32 visible at 64");
        assert_eq!(s.taken_at, 32);
        assert_eq!(s.available_at, 64);
        assert_eq!(s.full_buffers, 100);
    }

    #[test]
    fn window_throughput_counts_per_window_flits() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // 5 flits delivered per cycle.
        drive(&mut sb, 96, |_| 0, 5);
        let s = sb.latest().expect("snapshot visible");
        assert_eq!(s.taken_at, 64);
        assert_eq!(s.delivered_flits, 32 * 5);
        assert_eq!(sb.window_throughput(), Some(160));
    }

    #[test]
    fn linear_extrapolation_tracks_linear_growth_exactly() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // Census grows by exactly 2 per cycle; extrapolation should predict
        // the current value exactly despite the g-cycle staleness.
        drive(&mut sb, 200, |now| (2 * now) as u32, 0);
        let est = sb.estimate(200);
        assert!((est - 400.0).abs() < 1e-9, "estimate {est} should be 400");
    }

    #[test]
    fn last_snapshot_estimator_lags() {
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::LastSnapshot;
        let mut sb = Sideband::new(cfg);
        drive(&mut sb, 200, |now| (2 * now) as u32, 0);
        // Latest visible snapshot was taken at 160 (available at 192).
        assert_eq!(sb.estimate(200), 320.0);
    }

    #[test]
    fn extrapolation_clamps_at_zero() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // Census collapses from 1000 to 0; extrapolation must not go negative.
        drive(&mut sb, 200, |now| if now < 100 { 1000 } else { 0 }, 0);
        assert!(sb.estimate(260) >= 0.0);
    }

    #[test]
    fn estimate_before_first_snapshot_is_zero() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        drive(&mut sb, 40, |_| 999, 0);
        assert_eq!(sb.estimate(40), 0.0);
    }

    #[test]
    fn ewma_smooths_and_lags() {
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::Ewma { alpha: 0.5 };
        let mut sb = Sideband::new(cfg);
        // Alternating census 0 / 1000 per gather window.
        drive(
            &mut sb,
            400,
            |now| if (now / 32) % 2 == 0 { 0 } else { 1000 },
            0,
        );
        let est = sb.estimate(400);
        assert!(
            (200.0..800.0).contains(&est),
            "EWMA should land between the extremes, got {est}"
        );
        // alpha = 1 degenerates to last-snapshot behavior.
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::Ewma { alpha: 1.0 };
        let mut sb1 = Sideband::new(cfg);
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::LastSnapshot;
        let mut sb2 = Sideband::new(cfg);
        drive(&mut sb1, 300, |now| (3 * now) as u32, 0);
        drive(&mut sb2, 300, |now| (3 * now) as u32, 0);
        assert_eq!(sb1.estimate(300), sb2.estimate(300));
    }

    #[test]
    #[should_panic(expected = "ticked every cycle")]
    fn skipping_cycles_panics() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        sb.on_cycle(0, 0, 0);
        sb.on_cycle(2, 0, 0);
    }

    use faults::SidebandFaults;

    fn plan(sb_faults: SidebandFaults) -> FaultPlan {
        FaultPlan::sideband_only(0xFA17, sb_faults)
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let mut clean = Sideband::new(SidebandConfig::paper());
        let mut quiet = Sideband::new(SidebandConfig::paper());
        quiet.set_faults(FaultPlan::none(123));
        drive(&mut clean, 500, |now| (3 * now) as u32, 4);
        drive(&mut quiet, 500, |now| (3 * now) as u32, 4);
        assert_eq!(clean.latest(), quiet.latest());
        assert_eq!(clean.estimate(500).to_bits(), quiet.estimate(500).to_bits());
        assert_eq!(quiet.stats(), SidebandStats::default());
    }

    #[test]
    fn blackout_loses_every_snapshot() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        sb.set_faults(plan(SidebandFaults {
            loss_rate: 1.0,
            ..SidebandFaults::none()
        }));
        drive(&mut sb, 640, |_| 500, 2);
        assert!(sb.latest().is_none(), "no aggregate can survive 100% loss");
        assert_eq!(sb.estimate(640), 0.0);
        assert_eq!(sb.stats().lost_snapshots, 640 / 32);
        assert_eq!(sb.gathers_overdue(640), 640 / 32 - 1);
    }

    #[test]
    fn extrapolation_clamps_to_the_buffer_ceiling() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        let max = sb.max_full_buffers(); // 3072 for the paper network
                                         // Census explodes from 0 to near-max within one gather: the
                                         // adversarial snapshot pair (0, 3000) extrapolates far past the
                                         // number of buffers that exist.
        drive(&mut sb, 96, |now| if now < 33 { 0 } else { 3000 }, 0);
        let est = sb.estimate(96 + 320);
        assert!(
            est <= f64::from(max),
            "estimate {est} exceeds the physical ceiling {max}"
        );
        assert!(est > 3000.0, "still extrapolates upward before the clamp");
    }

    #[test]
    fn gathers_overdue_is_zero_on_a_healthy_sideband() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        for now in 0..=1000 {
            sb.on_cycle(now, 10, 0);
            assert_eq!(sb.gathers_overdue(now), 0, "cycle {now}");
        }
    }

    #[test]
    fn delays_preserve_monotonic_visibility() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        sb.set_faults(plan(SidebandFaults {
            delay_rate: 0.7,
            max_delay: 100, // up to ~3 gathers late: plenty of reordering
            ..SidebandFaults::none()
        }));
        let mut last_seen = 0u64;
        for now in 0..=6400 {
            sb.on_cycle(now, (now % 997) as u32, 2 * now);
            if let Some(s) = sb.latest() {
                assert!(
                    s.taken_at >= last_seen,
                    "visible snapshot went backwards at cycle {now}"
                );
                last_seen = s.taken_at;
                assert!(s.available_at <= now, "not yet due at {now}: {s:?}");
            }
        }
        let st = sb.stats();
        assert!(st.delayed_snapshots > 50, "delays applied: {st:?}");
        assert!(
            st.rejected_stale > 0,
            "reordering must have produced stale arrivals: {st:?}"
        );
        assert_eq!(st.lost_snapshots, 0);
    }

    #[test]
    fn corruption_is_counted_and_impossible_values_rejected() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        sb.set_faults(plan(SidebandFaults {
            corrupt_rate: 1.0,
            corrupt_bits: 2,
            ..SidebandFaults::none()
        }));
        // Census pinned mid-range: bit flips near the top of the 12-bit
        // field push some counts past the 3072-buffer ceiling.
        drive(&mut sb, 32 * 200, |_| 1800, 1);
        let st = sb.stats();
        assert!(st.corrupted_snapshots > 100, "{st:?}");
        assert!(
            st.rejected_range > 0,
            "some corruptions must exceed the ceiling: {st:?}"
        );
        // Everything that *was* accepted respects the physical range.
        for s in [sb.latest(), sb.previous()].into_iter().flatten() {
            assert!(s.full_buffers <= sb.max_full_buffers());
        }
    }

    #[test]
    fn corruption_composes_with_the_quantizer() {
        let mut cfg = SidebandConfig::paper();
        cfg.quantizer = Some(Quantizer::new(9));
        let mut sb = Sideband::new(cfg);
        sb.set_faults(plan(SidebandFaults {
            corrupt_rate: 1.0,
            corrupt_bits: 1,
            ..SidebandFaults::none()
        }));
        drive(&mut sb, 32 * 100, |_| 1024, 1);
        // 3072 buffers need 12 bits; a 9-bit side-band drops the low 3. Any
        // corrupted value must still land on the 8-flit quantization grid:
        // flips happen on the wire, inside the transmitted 9 bits.
        for s in [sb.latest(), sb.previous()].into_iter().flatten() {
            assert_eq!(
                s.full_buffers % 8,
                0,
                "corruption escaped the wire bits: {s:?}"
            );
        }
        assert!(sb.stats().corrupted_snapshots > 0);
    }

    #[test]
    fn faulty_sideband_is_deterministic() {
        let run = || {
            let mut sb = Sideband::new(SidebandConfig::paper());
            sb.set_faults(plan(SidebandFaults {
                loss_rate: 0.3,
                delay_rate: 0.3,
                max_delay: 64,
                corrupt_rate: 0.3,
                corrupt_bits: 1,
            }));
            drive(&mut sb, 6400, |now| (now % 1301) as u32, 3);
            (sb.latest(), sb.stats(), sb.estimate(6400).to_bits())
        };
        assert_eq!(run(), run());
    }
}
