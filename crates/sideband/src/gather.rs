use crate::Quantizer;
use std::collections::VecDeque;

/// How receivers turn delayed snapshots into a current-congestion estimate.
///
/// The paper uses linear extrapolation and notes that "any prediction
/// mechanism based on previously observed network states can be used"; the
/// extra variants here exist for that ablation (X1 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimator {
    /// Use the most recent snapshot unchanged until the next one arrives.
    LastSnapshot,
    /// Linearly extrapolate from the two most recent snapshots (the paper's
    /// default; §3.1 reports it is worth 3–5% of throughput).
    LinearExtrapolation,
    /// Exponentially weighted moving average over snapshots with smoothing
    /// factor `alpha` in `(0, 1]` (1 degenerates to
    /// [`Estimator::LastSnapshot`]). Smooths census noise at the cost of
    /// extra lag — the opposite trade to extrapolation.
    Ewma {
        /// Weight of the newest snapshot.
        alpha: f64,
    },
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator::LinearExtrapolation
    }
}

/// Configuration of the side-band gather network.
#[derive(Debug, Clone, PartialEq)]
pub struct SidebandConfig {
    /// Torus radix `k`.
    pub radix: usize,
    /// Torus dimension count `n`.
    pub dimensions: usize,
    /// Per-hop side-band delay `h`, in cycles (2 in the paper).
    pub hop_delay: u64,
    /// Estimation scheme used by receivers.
    pub estimator: Estimator,
    /// Optional narrow-side-band quantization of the transmitted counts
    /// (models the TR's 9-bit side-band channels).
    pub quantizer: Option<Quantizer>,
}

impl SidebandConfig {
    /// The paper's configuration: 16-ary 2-cube, `h = 2`, linear
    /// extrapolation, full-width (25-bit) side-band.
    #[must_use]
    pub fn paper() -> Self {
        SidebandConfig {
            radix: 16,
            dimensions: 2,
            hop_delay: 2,
            estimator: Estimator::LinearExtrapolation,
            quantizer: None,
        }
    }

    /// The gather duration `g = ceil(k/2) * h * n`, in cycles.
    ///
    /// ```
    /// use sideband::SidebandConfig;
    /// assert_eq!(SidebandConfig::paper().gather_period(), 32);
    /// ```
    #[must_use]
    pub fn gather_period(&self) -> u64 {
        (self.radix as u64).div_ceil(2) * self.hop_delay * self.dimensions as u64
    }
}

/// One network snapshot as seen by receivers: the instantaneous full-buffer
/// count at `taken_at` and the flits delivered network-wide during the
/// gather window ending at `taken_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Cycle at which the snapshot was taken (a multiple of `g`).
    pub taken_at: u64,
    /// Cycle at which every node has received the aggregate (`taken_at + g`).
    pub available_at: u64,
    /// Network-wide count of completely full VC buffers at `taken_at`
    /// (quantized if a [`Quantizer`] is configured).
    pub full_buffers: u32,
    /// Flits delivered network-wide in `[taken_at - g, taken_at)`
    /// (quantized if a [`Quantizer`] is configured).
    pub delivered_flits: u32,
}

/// The side-band gather network: accepts the true census every cycle and
/// exposes delayed snapshots plus the congestion estimate derived from them.
///
/// All nodes receive identical aggregates at identical times under
/// dimension-wise aggregation on a symmetric torus, so one instance serves
/// the whole network.
#[derive(Debug, Clone)]
pub struct Sideband {
    cfg: SidebandConfig,
    period: u64,
    /// Snapshots in flight (taken, not yet visible to receivers).
    in_flight: VecDeque<Snapshot>,
    /// The two most recent snapshots visible to receivers: `[newest, older]`.
    visible: [Option<Snapshot>; 2],
    /// Running EWMA state (only maintained for [`Estimator::Ewma`]).
    ewma: Option<f64>,
    /// Cumulative delivered flits at the previous snapshot boundary.
    window_base: u64,
    last_cycle_seen: Option<u64>,
}

impl Sideband {
    /// Creates a side-band network from `cfg`.
    #[must_use]
    pub fn new(cfg: SidebandConfig) -> Self {
        let period = cfg.gather_period();
        Sideband {
            cfg,
            period,
            in_flight: VecDeque::with_capacity(4),
            visible: [None, None],
            ewma: None,
            window_base: 0,
            last_cycle_seen: None,
        }
    }

    /// The gather duration `g` in cycles.
    #[must_use]
    pub fn gather_period(&self) -> u64 {
        self.period
    }

    /// The configuration this side-band was built from.
    #[must_use]
    pub fn config(&self) -> &SidebandConfig {
        &self.cfg
    }

    /// Feeds one cycle of ground truth: the instantaneous network-wide
    /// full-buffer count and the *cumulative* delivered flit count.
    ///
    /// Must be called once per cycle with strictly increasing `now`
    /// (starting at 0); the simulator drives this.
    ///
    /// # Panics
    ///
    /// Panics if cycles are skipped or repeated.
    pub fn on_cycle(&mut self, now: u64, full_buffers: u32, delivered_cum: u64) {
        if let Some(prev) = self.last_cycle_seen {
            assert_eq!(now, prev + 1, "sideband must be ticked every cycle");
        } else {
            assert_eq!(now, 0, "sideband must be ticked starting at cycle 0");
        }
        self.last_cycle_seen = Some(now);

        // Promote snapshots that have finished propagating.
        while let Some(front) = self.in_flight.front() {
            if front.available_at <= now {
                let snap = self.in_flight.pop_front().expect("front checked");
                self.visible = [Some(snap), self.visible[0]];
                if let Estimator::Ewma { alpha } = self.cfg.estimator {
                    let v = f64::from(snap.full_buffers);
                    self.ewma = Some(match self.ewma {
                        Some(prev) => alpha * v + (1.0 - alpha) * prev,
                        None => v,
                    });
                }
            } else {
                break;
            }
        }

        // Take a new snapshot at each gather boundary (skip cycle 0: there is
        // no delivery window behind it yet).
        if now > 0 && now % self.period == 0 {
            let window_flits = delivered_cum - self.window_base;
            self.window_base = delivered_cum;
            let q = |v: u32, max: u32| match &self.cfg.quantizer {
                Some(quant) => quant.quantize(v, max),
                None => v,
            };
            let max_tput = (self.period * self.node_count() as u64) as u32;
            let snap = Snapshot {
                taken_at: now,
                available_at: now + self.period,
                full_buffers: q(full_buffers, self.max_full_buffers()),
                delivered_flits: q(
                    u32::try_from(window_flits).expect("window flits exceed u32"),
                    max_tput,
                ),
            };
            self.in_flight.push_back(snap);
        }
    }

    fn node_count(&self) -> usize {
        self.cfg.radix.pow(self.cfg.dimensions as u32)
    }

    fn max_full_buffers(&self) -> u32 {
        // Upper bound used only for quantization scaling; assumes the paper's
        // 3 VCs x 2n channels. Conservative overestimates are harmless here.
        (self.node_count() * 2 * self.cfg.dimensions * 3) as u32
    }

    /// The most recent snapshot visible to receivers, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Snapshot> {
        self.visible[0]
    }

    /// The snapshot before [`Sideband::latest`], if any.
    #[must_use]
    pub fn previous(&self) -> Option<Snapshot> {
        self.visible[1]
    }

    /// The receivers' estimate of the *current* network-wide full-buffer
    /// count at cycle `now`.
    ///
    /// With [`Estimator::LinearExtrapolation`] this is
    /// `s0 + (s0 - s1) * (now - t0) / g` clamped at zero; with
    /// [`Estimator::LastSnapshot`] it is simply `s0`. Before any snapshot is
    /// visible the estimate is 0 (an empty warm network).
    #[must_use]
    pub fn estimate(&self, now: u64) -> f64 {
        match (self.visible[0], self.visible[1], self.cfg.estimator) {
            (None, _, _) => 0.0,
            (Some(s0), _, Estimator::LastSnapshot) => f64::from(s0.full_buffers),
            (Some(s0), _, Estimator::Ewma { .. }) => {
                self.ewma.unwrap_or_else(|| f64::from(s0.full_buffers))
            }
            (Some(s0), None, Estimator::LinearExtrapolation) => f64::from(s0.full_buffers),
            (Some(s0), Some(s1), Estimator::LinearExtrapolation) => {
                let slope = (f64::from(s0.full_buffers) - f64::from(s1.full_buffers))
                    / self.period as f64;
                let ahead = now.saturating_sub(s0.taken_at) as f64;
                (f64::from(s0.full_buffers) + slope * ahead).max(0.0)
            }
        }
    }

    /// Flits delivered network-wide in the most recent visible gather
    /// window (the throughput feedback used by the self-tuner).
    #[must_use]
    pub fn window_throughput(&self) -> Option<u32> {
        self.latest().map(|s| s.delivered_flits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sb: &mut Sideband, upto: u64, full: impl Fn(u64) -> u32, rate: u64) {
        let start = sb.last_cycle_seen.map_or(0, |c| c + 1);
        for now in start..=upto {
            sb.on_cycle(now, full(now), now * rate);
        }
    }

    #[test]
    fn gather_period_formula() {
        let cfg = SidebandConfig {
            radix: 8,
            dimensions: 3,
            hop_delay: 1,
            estimator: Estimator::default(),
            quantizer: None,
        };
        assert_eq!(cfg.gather_period(), 12);
        // Odd radix rounds up.
        let cfg = SidebandConfig {
            radix: 5,
            dimensions: 2,
            hop_delay: 2,
            ..cfg
        };
        assert_eq!(cfg.gather_period(), 12);
        assert_eq!(SidebandConfig::paper().gather_period(), 32);
    }

    #[test]
    fn snapshots_arrive_exactly_one_gather_late() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        drive(&mut sb, 63, |_| 100, 0);
        // Snapshot taken at 32 is available at 64, not before.
        assert!(sb.latest().is_none());
        sb.on_cycle(64, 100, 0);
        let s = sb.latest().expect("snapshot at 32 visible at 64");
        assert_eq!(s.taken_at, 32);
        assert_eq!(s.available_at, 64);
        assert_eq!(s.full_buffers, 100);
    }

    #[test]
    fn window_throughput_counts_per_window_flits() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // 5 flits delivered per cycle.
        drive(&mut sb, 96, |_| 0, 5);
        let s = sb.latest().expect("snapshot visible");
        assert_eq!(s.taken_at, 64);
        assert_eq!(s.delivered_flits, 32 * 5);
        assert_eq!(sb.window_throughput(), Some(160));
    }

    #[test]
    fn linear_extrapolation_tracks_linear_growth_exactly() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // Census grows by exactly 2 per cycle; extrapolation should predict
        // the current value exactly despite the g-cycle staleness.
        drive(&mut sb, 200, |now| (2 * now) as u32, 0);
        let est = sb.estimate(200);
        assert!((est - 400.0).abs() < 1e-9, "estimate {est} should be 400");
    }

    #[test]
    fn last_snapshot_estimator_lags() {
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::LastSnapshot;
        let mut sb = Sideband::new(cfg);
        drive(&mut sb, 200, |now| (2 * now) as u32, 0);
        // Latest visible snapshot was taken at 160 (available at 192).
        assert_eq!(sb.estimate(200), 320.0);
    }

    #[test]
    fn extrapolation_clamps_at_zero() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        // Census collapses from 1000 to 0; extrapolation must not go negative.
        drive(&mut sb, 200, |now| if now < 100 { 1000 } else { 0 }, 0);
        assert!(sb.estimate(260) >= 0.0);
    }

    #[test]
    fn estimate_before_first_snapshot_is_zero() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        drive(&mut sb, 40, |_| 999, 0);
        assert_eq!(sb.estimate(40), 0.0);
    }

    #[test]
    fn ewma_smooths_and_lags() {
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::Ewma { alpha: 0.5 };
        let mut sb = Sideband::new(cfg);
        // Alternating census 0 / 1000 per gather window.
        drive(&mut sb, 400, |now| if (now / 32) % 2 == 0 { 0 } else { 1000 }, 0);
        let est = sb.estimate(400);
        assert!(
            (200.0..800.0).contains(&est),
            "EWMA should land between the extremes, got {est}"
        );
        // alpha = 1 degenerates to last-snapshot behavior.
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::Ewma { alpha: 1.0 };
        let mut sb1 = Sideband::new(cfg);
        let mut cfg = SidebandConfig::paper();
        cfg.estimator = Estimator::LastSnapshot;
        let mut sb2 = Sideband::new(cfg);
        drive(&mut sb1, 300, |now| (3 * now) as u32, 0);
        drive(&mut sb2, 300, |now| (3 * now) as u32, 0);
        assert_eq!(sb1.estimate(300), sb2.estimate(300));
    }

    #[test]
    #[should_panic(expected = "ticked every cycle")]
    fn skipping_cycles_panics() {
        let mut sb = Sideband::new(SidebandConfig::paper());
        sb.on_cycle(0, 0, 0);
        sb.on_cycle(2, 0, 0);
    }
}
