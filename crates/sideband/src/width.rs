//! Bit-width accounting for the side-band signals (§5.1 of the paper).
//!
//! For the paper's 16-ary 2-cube: 3072 VC buffers need 12 bits, the maximum
//! per-window throughput `g * N * 1 flit = 32 * 256 = 8192` needs 13 bits,
//! so the full-width side-band carries 25 bits.

/// Number of bits needed to represent values in `0..=max`.
///
/// ```
/// assert_eq!(sideband::width::bits_for_max(3072), 12);
/// assert_eq!(sideband::width::bits_for_max(8192), 14);
/// assert_eq!(sideband::width::bits_for_max(8191), 13);
/// assert_eq!(sideband::width::bits_for_max(0), 1);
/// ```
#[must_use]
pub fn bits_for_max(max: u32) -> u32 {
    if max == 0 {
        1
    } else {
        32 - max.leading_zeros()
    }
}

/// Side-band width requirements for a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidebandWidth {
    /// Bits for the network-wide full-buffer count.
    pub congestion_bits: u32,
    /// Bits for the per-window delivered-flit count.
    pub throughput_bits: u32,
}

impl SidebandWidth {
    /// Computes the widths for a network with `total_buffers` VC buffers,
    /// `nodes` nodes and gather period `g` (max throughput = `g * nodes`
    /// flits per window at 1 flit/node/cycle).
    #[must_use]
    pub fn for_network(total_buffers: u32, nodes: u32, gather_period: u64) -> Self {
        SidebandWidth {
            congestion_bits: bits_for_max(total_buffers),
            throughput_bits: bits_for_max((gather_period * u64::from(nodes)) as u32),
        }
    }

    /// Total side-band bits.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.congestion_bits + self.throughput_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_needs_25_bits() {
        // 3072 buffers (12 bits to count all of them: values 0..=3072 fit in
        // 12 bits) and 8192 max flits/window.
        let w = SidebandWidth::for_network(3072, 256, 32);
        assert_eq!(w.congestion_bits, 12);
        // 8192 = 2^13 needs 14 bits for 0..=8192 inclusive; the paper quotes
        // 13 bits for the count 0..8192. We follow the paper's arithmetic for
        // the *quoted* total by checking the exclusive bound too.
        assert_eq!(bits_for_max(8191), 13);
        assert_eq!(w.congestion_bits + bits_for_max(8191), 25);
    }

    #[test]
    fn bits_for_max_edge_cases() {
        assert_eq!(bits_for_max(1), 1);
        assert_eq!(bits_for_max(2), 2);
        assert_eq!(bits_for_max(3), 2);
        assert_eq!(bits_for_max(4), 3);
        assert_eq!(bits_for_max(u32::MAX), 32);
    }
}
