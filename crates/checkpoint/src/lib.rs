//! `checkpoint` — a versioned, zero-dependency binary snapshot codec.
//!
//! The simulator's crash-safety layer needs to freeze the *entire* mutable
//! state of a run (router buffers, controller state, RNG state, metrics)
//! and later resume it with the golden property *snapshot at cycle C +
//! restore + run to end ≡ uninterrupted run, bit for bit*. This crate
//! provides the byte-level plumbing every state-owning crate shares:
//!
//! * [`Enc`] / [`Dec`] — little-endian primitive writers/readers with
//!   typed, non-panicking decode errors ([`CheckpointError`]),
//! * [`seal`] / [`open`] — a self-describing container: magic, format
//!   version, a caller-supplied *configuration fingerprint* (so a snapshot
//!   is never restored into a simulation built from a different
//!   configuration), payload length and a CRC-32 integrity check,
//! * [`fnv1a64`] / [`crc32`] — the hash functions used for fingerprints
//!   and integrity.
//!
//! Floating-point values round-trip through [`f64::to_bits`], so restored
//! state is bit-identical even for NaN payloads. The codec has no
//! reflection and no external dependencies: each crate writes its own
//! fields in a fixed order and reads them back in the same order, with
//! structural validation (element counts against the rebuilt
//! configuration) at the call site.

use std::error::Error;
use std::fmt;

/// Magic bytes opening every sealed checkpoint.
pub const MAGIC: [u8; 8] = *b"STCCKPT\0";

/// Current container format version. Bump on any layout change.
///
/// v2: network payloads gained the per-stage work counters and the
/// starvation timer-wheel deadline array.
pub const VERSION: u32 = 2;

/// Decode-side failure: a snapshot that is truncated, corrupt, from a
/// different format version, or taken under a different configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the value being read.
    Truncated {
        /// Offset at which the read was attempted.
        at: usize,
    },
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    BadVersion {
        /// Version found in the container.
        found: u32,
    },
    /// The snapshot was taken under a different configuration than the one
    /// it is being restored into.
    ConfigMismatch {
        /// Fingerprint of the configuration being restored into.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The CRC-32 integrity check failed (bit rot or a torn write).
    BadChecksum,
    /// A decoded value is structurally impossible for the configuration
    /// being restored into (wrong element count, bad enum tag, ...).
    Corrupt(&'static str),
    /// Decoding finished with unread bytes left over.
    Trailing {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { at } => {
                write!(f, "checkpoint truncated at byte {at}")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (want {VERSION})")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, this run is {expected:#018x})"
            ),
            CheckpointError::BadChecksum => write!(f, "checkpoint integrity check failed"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Trailing { remaining } => {
                write!(f, "checkpoint has {remaining} trailing bytes")
            }
        }
    }
}

impl Error for CheckpointError {}

/// Little-endian binary encoder. Infallible; appends to an owned buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Enc::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent layout).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` via [`f64::to_bits`] (bit-exact, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        self.bool(v.is_some());
        self.u64(v.unwrap_or(0));
    }

    /// Writes an `Option<f64>` as a presence byte plus the value.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        self.bool(v.is_some());
        self.f64(v.unwrap_or(0.0));
    }
}

/// Little-endian binary decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let at = self.pos;
        let end = at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated { at })?;
        self.pos = end;
        Ok(&self.buf[at..end])
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if the stream is exhausted.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if the stream is exhausted.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if the stream is exhausted.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if the stream is exhausted.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `usize` written by [`Enc::usize`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] on a short stream;
    /// [`CheckpointError::Corrupt`] if the value overflows this platform's
    /// `usize`.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` written by [`Enc::f64`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if the stream is exhausted.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] on a short stream;
    /// [`CheckpointError::Corrupt`] on a byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bool out of range")),
        }
    }

    /// Reads an `Option<u64>` written by [`Enc::opt_u64`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Dec::bool`]/[`Dec::u64`] errors.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        let some = self.bool()?;
        let v = self.u64()?;
        Ok(some.then_some(v))
    }

    /// Reads an `Option<f64>` written by [`Enc::opt_f64`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Dec::bool`]/[`Dec::f64`] errors.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        let some = self.bool()?;
        let v = self.f64()?;
        Ok(some.then_some(v))
    }

    /// Asserts the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Trailing`] if bytes remain.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(CheckpointError::Trailing { remaining }),
        }
    }
}

/// FNV-1a 64-bit hash (used for configuration fingerprints).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let low = crc & 1;
            crc >>= 1;
            crc ^= 0xedb8_8320 * low;
        }
    }
    !crc
}

/// Wraps `payload` in the versioned container: magic, [`VERSION`],
/// `fingerprint`, payload length, payload, CRC-32 of everything prior.
#[must_use]
pub fn seal(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&MAGIC);
    e.u32(VERSION);
    e.u64(fingerprint);
    e.usize(payload.len());
    e.buf.extend_from_slice(payload);
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.into_vec()
}

/// Reads the configuration fingerprint out of a sealed container without
/// validating the payload (tooling and adversarial tests need to re-seal
/// a container they only have the bytes of).
///
/// # Errors
///
/// [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`] /
/// [`CheckpointError::Truncated`] when the header itself is damaged.
pub fn peek_fingerprint(bytes: &[u8]) -> Result<u64, CheckpointError> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len()).map_err(|_| CheckpointError::BadMagic)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion { found: version });
    }
    d.u64()
}

/// Validates a sealed container and returns its payload slice.
///
/// # Errors
///
/// [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`] /
/// [`CheckpointError::ConfigMismatch`] / [`CheckpointError::BadChecksum`] /
/// [`CheckpointError::Truncated`] / [`CheckpointError::Trailing`] on any
/// container-level mismatch.
pub fn open(bytes: &[u8], fingerprint: u64) -> Result<&[u8], CheckpointError> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len()).map_err(|_| CheckpointError::BadMagic)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion { found: version });
    }
    let found = d.u64()?;
    if found != fingerprint {
        return Err(CheckpointError::ConfigMismatch {
            expected: fingerprint,
            found,
        });
    }
    let len = d.usize()?;
    let payload = d.take(len)?;
    let body_end = bytes.len() - d.remaining();
    let crc = d.u32()?;
    if crc != crc32(&bytes[..body_end]) {
        return Err(CheckpointError::BadChecksum);
    }
    d.finish()?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 7);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.opt_f64(Some(2.5));
        e.opt_f64(None);
        let bytes = e.into_vec();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_f64().unwrap(), Some(2.5));
        assert_eq!(d.opt_f64().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_vec();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(CheckpointError::Truncated { at: 0 }));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut d = Dec::new(&[7]);
        assert!(matches!(d.bool(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_matches_known_vector() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn seal_open_round_trips() {
        let sealed = seal(42, b"payload");
        assert_eq!(open(&sealed, 42).unwrap(), b"payload");
    }

    #[test]
    fn open_rejects_wrong_fingerprint() {
        let sealed = seal(42, b"payload");
        assert!(matches!(
            open(&sealed, 43),
            Err(CheckpointError::ConfigMismatch {
                expected: 43,
                found: 42
            })
        ));
    }

    #[test]
    fn open_rejects_tampering() {
        let mut sealed = seal(42, b"payload");
        assert_eq!(open(&sealed, 42).unwrap(), b"payload");
        let n = sealed.len();
        sealed[n - 10] ^= 1; // flip a payload bit
        assert_eq!(open(&sealed, 42), Err(CheckpointError::BadChecksum));
    }

    #[test]
    fn open_rejects_wrong_magic_and_version() {
        let mut sealed = seal(0, b"x");
        sealed[0] ^= 1;
        assert_eq!(open(&sealed, 0), Err(CheckpointError::BadMagic));
        let mut sealed = seal(0, b"x");
        sealed[8] = 99; // version byte
        assert!(matches!(
            open(&sealed, 0),
            Err(CheckpointError::BadVersion { .. })
        ));
    }

    #[test]
    fn open_rejects_truncation_and_trailing() {
        let sealed = seal(7, b"abc");
        assert!(open(&sealed[..sealed.len() - 1], 7).is_err());
        let mut extended = sealed.clone();
        extended.push(0);
        assert!(open(&extended, 7).is_err());
    }
}
