//! Deterministic fault injection for the stcc reproduction.
//!
//! The paper assumes a perfect side-band: every node receives an exact,
//! `g`-cycle-delayed congestion snapshot every `g` cycles, and the tuner
//! trusts it unconditionally. Real interconnects lose, delay and corrupt
//! notifications, and links and nodes fail outright. A [`FaultPlan`]
//! describes such an imperfect world:
//!
//! * **Side-band snapshot loss** — a gather never arrives at the receivers.
//! * **Side-band snapshot delay** — a gather arrives up to `max_delay`
//!   cycles late (possibly out of order with later gathers).
//! * **Side-band corruption** — bit flips in the *transmitted* full-buffer
//!   and delivered-flit counts, composing with the `sideband` crate's
//!   narrow-side-band `Quantizer` model: flips land in the bits that are
//!   actually on the wire. (Plain code formatting, not an intra-doc link:
//!   `sideband` depends on this crate, so the link target cannot be named
//!   from here without a dependency cycle.)
//! * **Link stalls** — a router output port is dead for `[start, end)`
//!   cycles; nothing traverses it.
//! * **Node hotspots** — a node's delivery (ejection) channel is stalled
//!   for a window, modeling a hot or failed consumer (the classic
//!   tree-saturation trigger of Pfister & Norton).
//!
//! # Determinism
//!
//! Every per-event decision is a pure function of `(seed, event
//! coordinates)` via counter-based SplitMix64 hashing — no generator state,
//! no call-order dependence. Identical `(SimConfig, FaultPlan)` therefore
//! produce identical simulations, fault counters included, which the
//! integration tests assert.
//!
//! # Examples
//!
//! ```
//! use faults::{FaultPlan, SidebandFaults, SnapshotFate};
//!
//! let mut plan = FaultPlan::none(7);
//! assert!(plan.is_quiet());
//! plan.sideband = SidebandFaults { loss_rate: 1.0, ..SidebandFaults::none() };
//! // A total blackout loses every snapshot, deterministically.
//! assert_eq!(plan.snapshot_fate(32), SnapshotFate::Lost);
//! assert_eq!(plan.snapshot_fate(64), SnapshotFate::Lost);
//! ```

use core::fmt;

/// Stateless SplitMix64 finalizer over a counter: the source of every fault
/// decision. Distinct inputs give decorrelated 64-bit outputs.
#[inline]
#[must_use]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes `(seed, salt, ctr)` to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(seed: u64, salt: u64, ctr: u64) -> f64 {
    let h = mix64(seed ^ mix64(salt ^ mix64(ctr)));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hashes `(seed, salt, ctr)` to a uniform integer in `[0, span)`.
#[inline]
fn uniform(seed: u64, salt: u64, ctr: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    let h = mix64(seed ^ mix64(salt ^ mix64(ctr)));
    ((u128::from(h) * u128::from(span)) >> 64) as u64
}

const SALT_LOSS: u64 = 0xF1;
const SALT_DELAY: u64 = 0xF2;
const SALT_DELAY_AMT: u64 = 0xF3;
const SALT_CORRUPT: u64 = 0xF4;
const SALT_BITPOS: u64 = 0xF5;

/// Which transmitted side-band count a corruption decision applies to.
/// Separate channels corrupt independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidebandField {
    /// The network-wide full-buffer count.
    FullBuffers,
    /// The per-window delivered-flit count.
    DeliveredFlits,
}

impl SidebandField {
    fn salt(self) -> u64 {
        match self {
            SidebandField::FullBuffers => 0x10,
            SidebandField::DeliveredFlits => 0x20,
        }
    }
}

/// What happens to one side-band gather in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFate {
    /// The aggregate never reaches the receivers.
    Lost,
    /// The aggregate arrives the given number of cycles late.
    Delayed(u64),
    /// Normal, on-time arrival.
    OnTime,
}

/// Stochastic fault rates applied to every side-band gather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SidebandFaults {
    /// Probability a gather is lost entirely, in `[0, 1]`.
    pub loss_rate: f64,
    /// Probability a (non-lost) gather is delayed, in `[0, 1]`.
    pub delay_rate: f64,
    /// Maximum extra delay in cycles; the actual delay is uniform in
    /// `[1, max_delay]`.
    pub max_delay: u64,
    /// Probability each transmitted count suffers bit flips, in `[0, 1]`.
    pub corrupt_rate: f64,
    /// Number of bit positions flipped per corruption event (each drawn
    /// uniformly over the transmitted width; draws may coincide).
    pub corrupt_bits: u32,
}

impl SidebandFaults {
    /// No side-band faults.
    #[must_use]
    pub fn none() -> Self {
        SidebandFaults {
            loss_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            corrupt_rate: 0.0,
            corrupt_bits: 1,
        }
    }

    /// Whether this configuration can never produce a fault.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.loss_rate <= 0.0 && self.delay_rate <= 0.0 && self.corrupt_rate <= 0.0
    }
}

impl Default for SidebandFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// A dead router output port: nothing traverses `(node, port)` during
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Router whose output port stalls.
    pub node: usize,
    /// Output port index (`2*dim` for +, `2*dim + 1` for −).
    pub port: usize,
    /// First stalled cycle.
    pub start: u64,
    /// First cycle after the stall.
    pub end: u64,
}

/// A stalled delivery (ejection) channel: `node` consumes nothing during
/// `[start, end)`, backing traffic up into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotFault {
    /// The hot (non-consuming) node.
    pub node: usize,
    /// First stalled cycle.
    pub start: u64,
    /// First cycle after the stall.
    pub end: u64,
}

/// A complete, seeded description of every fault a run will experience.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all stochastic fault decisions (independent of the traffic
    /// seed so fault scenarios compose with any workload).
    pub seed: u64,
    /// Side-band gather faults.
    pub sideband: SidebandFaults,
    /// Scheduled data-network link stalls.
    pub links: Vec<LinkFault>,
    /// Scheduled node hotspots (stalled ejection channels).
    pub hotspots: Vec<HotspotFault>,
}

/// Error returned by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A rate field is outside `[0, 1]` (or NaN).
    BadRate {
        /// The offending field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `delay_rate > 0` requires `max_delay > 0`.
    ZeroMaxDelay,
    /// `corrupt_rate > 0` requires `corrupt_bits > 0`.
    ZeroCorruptBits,
    /// A scheduled fault has an empty `[start, end)` window.
    EmptyWindow {
        /// The rejected window start.
        start: u64,
        /// The rejected window end.
        end: u64,
    },
    /// A scheduled fault names a node outside the network.
    NodeOutOfRange {
        /// The rejected node.
        node: usize,
        /// The network's node count.
        nodes: usize,
    },
    /// A link fault names a port outside the router.
    PortOutOfRange {
        /// The rejected port.
        port: usize,
        /// Network ports per router (`2n`).
        ports: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadRate { field, value } => {
                write!(f, "{field} must be in [0, 1], got {value}")
            }
            FaultPlanError::ZeroMaxDelay => f.write_str("delay_rate > 0 requires max_delay > 0"),
            FaultPlanError::ZeroCorruptBits => {
                f.write_str("corrupt_rate > 0 requires corrupt_bits > 0")
            }
            FaultPlanError::EmptyWindow { start, end } => {
                write!(f, "fault window [{start}, {end}) is empty")
            }
            FaultPlanError::NodeOutOfRange { node, nodes } => {
                write!(f, "fault node {node} out of range (network has {nodes})")
            }
            FaultPlanError::PortOutOfRange { port, ports } => {
                write!(f, "fault port {port} out of range (routers have {ports})")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// The quiet plan: no faults of any kind.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            sideband: SidebandFaults::none(),
            links: Vec::new(),
            hotspots: Vec::new(),
        }
    }

    /// A side-band-only plan (the resilience experiment's sweep axis).
    #[must_use]
    pub fn sideband_only(seed: u64, sideband: SidebandFaults) -> Self {
        FaultPlan {
            seed,
            sideband,
            links: Vec::new(),
            hotspots: Vec::new(),
        }
    }

    /// Whether this plan can never produce any fault (the simulator skips
    /// all fault hooks for quiet plans so the no-faults code path stays
    /// bit-identical).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.sideband.is_quiet() && self.net_is_quiet()
    }

    /// Whether the data-network portion (links, hotspots) is fault-free.
    #[must_use]
    pub fn net_is_quiet(&self) -> bool {
        self.links.is_empty() && self.hotspots.is_empty()
    }

    /// Validates the plan against a network shape.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, nodes: usize, ports: usize) -> Result<(), FaultPlanError> {
        for (field, value) in [
            ("loss_rate", self.sideband.loss_rate),
            ("delay_rate", self.sideband.delay_rate),
            ("corrupt_rate", self.sideband.corrupt_rate),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(FaultPlanError::BadRate { field, value });
            }
        }
        if self.sideband.delay_rate > 0.0 && self.sideband.max_delay == 0 {
            return Err(FaultPlanError::ZeroMaxDelay);
        }
        if self.sideband.corrupt_rate > 0.0 && self.sideband.corrupt_bits == 0 {
            return Err(FaultPlanError::ZeroCorruptBits);
        }
        for l in &self.links {
            if l.start >= l.end {
                return Err(FaultPlanError::EmptyWindow {
                    start: l.start,
                    end: l.end,
                });
            }
            if l.node >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    node: l.node,
                    nodes,
                });
            }
            if l.port >= ports {
                return Err(FaultPlanError::PortOutOfRange {
                    port: l.port,
                    ports,
                });
            }
        }
        for h in &self.hotspots {
            if h.start >= h.end {
                return Err(FaultPlanError::EmptyWindow {
                    start: h.start,
                    end: h.end,
                });
            }
            if h.node >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    node: h.node,
                    nodes,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Side-band decisions (pure functions of the gather's taken_at cycle)
    // ------------------------------------------------------------------

    /// The transit fate of the gather taken at cycle `taken_at`.
    #[must_use]
    pub fn snapshot_fate(&self, taken_at: u64) -> SnapshotFate {
        let sb = &self.sideband;
        if sb.loss_rate > 0.0 && unit(self.seed, SALT_LOSS, taken_at) < sb.loss_rate {
            return SnapshotFate::Lost;
        }
        if sb.delay_rate > 0.0
            && sb.max_delay > 0
            && unit(self.seed, SALT_DELAY, taken_at) < sb.delay_rate
        {
            let extra = 1 + uniform(self.seed, SALT_DELAY_AMT, taken_at, sb.max_delay);
            return SnapshotFate::Delayed(extra);
        }
        SnapshotFate::OnTime
    }

    /// Applies transit corruption to one transmitted count.
    ///
    /// `code` is the value actually on the wire (already quantized when a
    /// narrow side-band is modeled) and `width_bits` its transmitted width;
    /// flips land only in transmitted bit positions, composing with the
    /// quantizer exactly as physical upsets would.
    #[must_use]
    pub fn corrupt_count(
        &self,
        taken_at: u64,
        field: SidebandField,
        code: u32,
        width_bits: u32,
    ) -> u32 {
        let sb = &self.sideband;
        if sb.corrupt_rate <= 0.0 || width_bits == 0 {
            return code;
        }
        let salt = SALT_CORRUPT ^ field.salt();
        if unit(self.seed, salt, taken_at) >= sb.corrupt_rate {
            return code;
        }
        let mut corrupted = code;
        for i in 0..sb.corrupt_bits {
            let pos = uniform(
                self.seed,
                SALT_BITPOS ^ field.salt() ^ u64::from(i),
                taken_at,
                u64::from(width_bits),
            );
            corrupted ^= 1 << pos;
        }
        corrupted
    }

    // ------------------------------------------------------------------
    // Data-network decisions (scheduled windows; checked on the hot path
    // only when the plan is non-quiet)
    // ------------------------------------------------------------------

    /// Whether output port `port` of router `node` is stalled at `now`.
    #[must_use]
    pub fn link_down(&self, node: usize, port: usize, now: u64) -> bool {
        self.links
            .iter()
            .any(|l| l.node == node && l.port == port && (l.start..l.end).contains(&now))
    }

    /// Whether `node`'s delivery channel is stalled at `now`.
    #[must_use]
    pub fn delivery_down(&self, node: usize, now: u64) -> bool {
        self.hotspots
            .iter()
            .any(|h| h.node == node && (h.start..h.end).contains(&now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(rate: f64) -> FaultPlan {
        FaultPlan::sideband_only(
            42,
            SidebandFaults {
                loss_rate: rate,
                ..SidebandFaults::none()
            },
        )
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::none(123);
        assert!(plan.is_quiet());
        for t in (32..3200).step_by(32) {
            assert_eq!(plan.snapshot_fate(t), SnapshotFate::OnTime);
            assert_eq!(
                plan.corrupt_count(t, SidebandField::FullBuffers, 77, 12),
                77
            );
        }
        assert!(!plan.link_down(0, 0, 10));
        assert!(!plan.delivery_down(0, 10));
    }

    #[test]
    fn total_blackout_loses_everything() {
        let plan = lossy(1.0);
        for t in (32..32_000).step_by(32) {
            assert_eq!(plan.snapshot_fate(t), SnapshotFate::Lost);
        }
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let plan = lossy(0.3);
        let n = 10_000u64;
        let lost = (1..=n)
            .filter(|t| plan.snapshot_fate(t * 32) == SnapshotFate::Lost)
            .count() as f64;
        let frac = lost / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "observed loss rate {frac}");
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_cycle() {
        let a = FaultPlan::sideband_only(
            9,
            SidebandFaults {
                loss_rate: 0.2,
                delay_rate: 0.5,
                max_delay: 64,
                corrupt_rate: 0.4,
                corrupt_bits: 2,
            },
        );
        let b = a.clone();
        // Query in different orders: identical outcomes.
        let fwd: Vec<_> = (1..100).map(|t| a.snapshot_fate(t * 32)).collect();
        let rev: Vec<_> = (1..100).rev().map(|t| b.snapshot_fate(t * 32)).collect();
        assert_eq!(fwd, rev.into_iter().rev().collect::<Vec<_>>());
        assert_eq!(
            a.corrupt_count(64, SidebandField::DeliveredFlits, 500, 13),
            b.corrupt_count(64, SidebandField::DeliveredFlits, 500, 13)
        );
    }

    #[test]
    fn different_seeds_make_different_weather() {
        let a = FaultPlan::sideband_only(
            1,
            SidebandFaults {
                loss_rate: 0.5,
                ..SidebandFaults::none()
            },
        );
        let b = FaultPlan::sideband_only(
            2,
            SidebandFaults {
                loss_rate: 0.5,
                ..SidebandFaults::none()
            },
        );
        let fates_a: Vec<_> = (1..200).map(|t| a.snapshot_fate(t * 32)).collect();
        let fates_b: Vec<_> = (1..200).map(|t| b.snapshot_fate(t * 32)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn delays_are_bounded_and_nonzero() {
        let plan = FaultPlan::sideband_only(
            5,
            SidebandFaults {
                delay_rate: 1.0,
                max_delay: 16,
                ..SidebandFaults::none()
            },
        );
        for t in (32..6400).step_by(32) {
            match plan.snapshot_fate(t) {
                SnapshotFate::Delayed(d) => assert!((1..=16).contains(&d), "delay {d}"),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_flips_only_transmitted_bits() {
        let plan = FaultPlan::sideband_only(
            7,
            SidebandFaults {
                corrupt_rate: 1.0,
                corrupt_bits: 1,
                ..SidebandFaults::none()
            },
        );
        for t in (32..3200).step_by(32) {
            let out = plan.corrupt_count(t, SidebandField::FullBuffers, 0, 9);
            assert!(out < (1 << 9), "flip escaped the 9-bit field: {out:#x}");
            assert_eq!(out.count_ones(), 1, "exactly one flip from zero");
        }
    }

    #[test]
    fn fields_corrupt_independently() {
        let plan = FaultPlan::sideband_only(
            11,
            SidebandFaults {
                corrupt_rate: 0.5,
                corrupt_bits: 1,
                ..SidebandFaults::none()
            },
        );
        let diverged = (1..400u64).any(|t| {
            let full = plan.corrupt_count(t * 32, SidebandField::FullBuffers, 0, 12);
            let tput = plan.corrupt_count(t * 32, SidebandField::DeliveredFlits, 0, 12);
            (full == 0) != (tput == 0)
        });
        assert!(diverged, "the two channels must not corrupt in lockstep");
    }

    #[test]
    fn scheduled_windows_are_half_open() {
        let plan = FaultPlan {
            seed: 0,
            sideband: SidebandFaults::none(),
            links: vec![LinkFault {
                node: 3,
                port: 1,
                start: 100,
                end: 200,
            }],
            hotspots: vec![HotspotFault {
                node: 7,
                start: 50,
                end: 60,
            }],
        };
        assert!(!plan.link_down(3, 1, 99));
        assert!(plan.link_down(3, 1, 100));
        assert!(plan.link_down(3, 1, 199));
        assert!(!plan.link_down(3, 1, 200));
        assert!(!plan.link_down(3, 0, 150));
        assert!(!plan.link_down(2, 1, 150));
        assert!(plan.delivery_down(7, 50));
        assert!(!plan.delivery_down(7, 60));
        assert!(!plan.delivery_down(6, 55));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let nodes = 64;
        let ports = 4;
        assert!(FaultPlan::none(0).validate(nodes, ports).is_ok());
        let bad_rate = FaultPlan::sideband_only(
            0,
            SidebandFaults {
                loss_rate: 1.5,
                ..SidebandFaults::none()
            },
        );
        assert!(matches!(
            bad_rate.validate(nodes, ports),
            Err(FaultPlanError::BadRate {
                field: "loss_rate",
                ..
            })
        ));
        let nan_rate = FaultPlan::sideband_only(
            0,
            SidebandFaults {
                corrupt_rate: f64::NAN,
                ..SidebandFaults::none()
            },
        );
        assert!(nan_rate.validate(nodes, ports).is_err());
        let no_delay = FaultPlan::sideband_only(
            0,
            SidebandFaults {
                delay_rate: 0.5,
                max_delay: 0,
                ..SidebandFaults::none()
            },
        );
        assert!(matches!(
            no_delay.validate(nodes, ports),
            Err(FaultPlanError::ZeroMaxDelay)
        ));
        let no_bits = FaultPlan::sideband_only(
            0,
            SidebandFaults {
                corrupt_rate: 0.5,
                corrupt_bits: 0,
                ..SidebandFaults::none()
            },
        );
        assert!(matches!(
            no_bits.validate(nodes, ports),
            Err(FaultPlanError::ZeroCorruptBits)
        ));
        let mut plan = FaultPlan::none(0);
        plan.links.push(LinkFault {
            node: 99,
            port: 0,
            start: 0,
            end: 1,
        });
        assert!(matches!(
            plan.validate(nodes, ports),
            Err(FaultPlanError::NodeOutOfRange { node: 99, .. })
        ));
        plan.links[0] = LinkFault {
            node: 0,
            port: 9,
            start: 0,
            end: 1,
        };
        assert!(matches!(
            plan.validate(nodes, ports),
            Err(FaultPlanError::PortOutOfRange { port: 9, .. })
        ));
        plan.links[0] = LinkFault {
            node: 0,
            port: 0,
            start: 5,
            end: 5,
        };
        assert!(matches!(
            plan.validate(nodes, ports),
            Err(FaultPlanError::EmptyWindow { .. })
        ));
        plan.links.clear();
        plan.hotspots.push(HotspotFault {
            node: 64,
            start: 0,
            end: 1,
        });
        assert!(matches!(
            plan.validate(nodes, ports),
            Err(FaultPlanError::NodeOutOfRange { node: 64, .. })
        ));
    }
}
