//! Randomized tests over network configurations: whatever the radix, VC
//! count, buffer depth or packet length, the simulator must conserve flits,
//! deliver in order, and drain completely.
//!
//! Formerly written with `proptest`; rewritten as seeded in-tree case
//! generation so the workspace builds with no network access (see README
//! "Hermetic build"). Enable `slow-proptests` for a wider sweep:
//!
//! ```sh
//! cargo test -p wormsim --features slow-proptests
//! ```

use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

const CASES: u64 = if cfg!(feature = "slow-proptests") {
    32
} else {
    8
};

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct RandomConfig {
    cfg: NetConfig,
    burst_cycles: u64,
    modulus: usize,
    seed: usize,
}

/// Draws one configuration from the same space the old proptest strategy
/// covered.
fn random_config(case: u64) -> RandomConfig {
    let mut rng = 0x5EED_0000 + case;
    let radix = 3 + (mix(&mut rng) as usize) % 4; // 3..=6
    let deadlock = match mix(&mut rng) % 3 {
        0 => DeadlockMode::Avoidance,
        1 => DeadlockMode::Recovery { timeout: 8 },
        _ => DeadlockMode::Recovery { timeout: 100 },
    };
    let mut vcs = 1 + (mix(&mut rng) as usize) % 3; // 1..=3
    if matches!(deadlock, DeadlockMode::Avoidance) {
        vcs = vcs.max(2);
    }
    RandomConfig {
        cfg: NetConfig {
            radix,
            dimensions: 2,
            vcs,
            buf_depth: 1 + (mix(&mut rng) as usize) % 8, // 1..=8
            packet_len: 1 + (mix(&mut rng) as usize) % 20, // 1..=20
            deadlock,
            hop_latency: 2,
            source_queue_cap: 8,
        },
        burst_cycles: 1_500,
        modulus: 2 + (mix(&mut rng) as usize) % 4, // 2..=5
        seed: mix(&mut rng) as usize,
    }
}

#[test]
fn any_configuration_conserves_and_drains() {
    for case in 0..CASES {
        let rc = random_config(case);
        let mut net = Network::new(rc.cfg.clone()).unwrap();
        let nodes = net.torus().node_count();
        let mut x = rc.seed;
        let modulus = rc.modulus;
        let mut src = move |_: u64, node: usize| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(node + 1);
            ((x >> 17).is_multiple_of(modulus)).then_some((x >> 33) % nodes)
        };
        net.run(rc.burst_cycles, &mut src, &mut NoControl);
        // Drain in bounded chunks instead of a fixed 600k-cycle run: most
        // configurations empty within a few thousand cycles.
        let mut silent = |_: u64, _: usize| None;
        for _ in 0..60 {
            if net.live_packets() == 0 {
                break;
            }
            net.run(10_000, &mut silent, &mut NoControl);
        }

        let c = net.counters();
        assert!(
            c.generated_packets > 0,
            "workload generated nothing: {rc:?}"
        );
        assert_eq!(
            c.generated_packets, c.delivered_packets,
            "failed to drain: {rc:?}"
        );
        assert_eq!(net.live_packets(), 0, "{rc:?}");
        assert_eq!(
            c.delivered_flits,
            c.delivered_packets * rc.cfg.packet_len as u64,
            "flit conservation: {rc:?}"
        );
        assert_eq!(net.full_buffer_count(), 0, "{rc:?}");
        // Delivery records are internally consistent.
        for r in net.drain_deliveries() {
            assert!(r.src < nodes && r.dst < nodes, "{rc:?}");
            assert!(r.injected_at >= r.generated_at, "{rc:?}");
            assert!(r.delivered_at >= r.injected_at, "{rc:?}"); // == for 1-flit local delivery
            assert_eq!(usize::from(r.len), rc.cfg.packet_len, "{rc:?}");
        }
    }
}
