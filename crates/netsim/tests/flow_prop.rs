//! Property tests over randomized network configurations: whatever the
//! radix, VC count, buffer depth or packet length, the simulator must
//! conserve flits, deliver in order, and drain completely.

use proptest::prelude::*;
use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

#[derive(Debug, Clone)]
struct RandomConfig {
    cfg: NetConfig,
    burst_cycles: u64,
    modulus: usize,
    seed: usize,
}

fn config_strategy() -> impl Strategy<Value = RandomConfig> {
    (
        3usize..=6,                   // radix
        prop_oneof![Just(1usize), Just(2), Just(3)], // vcs (>=2 forced for avoidance below)
        1usize..=8,                   // buf depth
        1usize..=20,                  // packet len
        prop_oneof![
            Just(DeadlockMode::Avoidance),
            Just(DeadlockMode::Recovery { timeout: 8 }),
            Just(DeadlockMode::Recovery { timeout: 100 }),
        ],
        2usize..=5,   // generation modulus (load)
        any::<usize>(),
    )
        .prop_map(|(k, vcs, depth, len, deadlock, modulus, seed)| {
            let vcs = if matches!(deadlock, DeadlockMode::Avoidance) {
                vcs.max(2)
            } else {
                vcs
            };
            RandomConfig {
                cfg: NetConfig {
                    radix: k,
                    dimensions: 2,
                    vcs,
                    buf_depth: depth,
                    packet_len: len,
                    deadlock,
                    hop_latency: 2,
                    source_queue_cap: 8,
                },
                burst_cycles: 1_500,
                modulus,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_configuration_conserves_and_drains(rc in config_strategy()) {
        let mut net = Network::new(rc.cfg.clone()).unwrap();
        let nodes = net.torus().node_count();
        let mut x = rc.seed;
        let modulus = rc.modulus;
        let mut src = move |_: u64, node: usize| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(node + 1);
            ((x >> 17) % modulus == 0).then_some((x >> 33) % nodes)
        };
        net.run(rc.burst_cycles, &mut src, &mut NoControl);
        let mut silent = |_: u64, _: usize| None;
        net.run(600_000, &mut silent, &mut NoControl);

        let c = net.counters();
        prop_assert!(c.generated_packets > 0, "workload generated nothing");
        prop_assert_eq!(c.generated_packets, c.delivered_packets, "network failed to drain");
        prop_assert_eq!(net.live_packets(), 0);
        prop_assert_eq!(
            c.delivered_flits,
            c.delivered_packets * rc.cfg.packet_len as u64,
            "flit conservation"
        );
        prop_assert_eq!(net.full_buffer_count(), 0);
        // Delivery records are internally consistent.
        for r in net.drain_deliveries() {
            prop_assert!(r.src < nodes && r.dst < nodes);
            prop_assert!(r.injected_at >= r.generated_at);
            prop_assert!(r.delivered_at >= r.injected_at); // == for 1-flit local delivery
            prop_assert_eq!(usize::from(r.len), rc.cfg.packet_len);
        }
    }
}
