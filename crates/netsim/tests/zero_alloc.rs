//! Proves the simulator's steady-state cycle pipeline is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! that lets every arena, slab and scratch buffer reach its high-water
//! capacity, thousands of saturated-traffic cycles (including regular
//! delivery drains) must perform **zero** heap allocations — in both
//! deadlock modes. The simulation is fully deterministic, so this test
//! either always passes or always fails for a given build: there is no
//! allocator-timing flakiness to mask a hot-path regression.
//!
//! Everything lives in one `#[test]` because the counter is process-global:
//! a second test running concurrently would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A saturating deterministic uniform-random source (every node offers a
/// packet most cycles), identical to the bench harness's pattern. The
/// closure captures only a `u64` seed: polling it never allocates.
fn saturating_source(nodes: usize) -> impl FnMut(u64, usize) -> Option<usize> {
    let mut x = 0x5EED_0BAD_F00Du64;
    move |_now, node| {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(node as u64 + 1);
        Some(((x >> 33) as usize) % nodes)
    }
}

/// Warms `net` to its steady-state memory high-water, then runs `measure`
/// more cycles asserting not a single allocator call. Deliveries are
/// drained every 32 cycles during measurement — the drain itself must be
/// allocation-free too — and every 64 during warmup, so the delivery
/// ring's warmed capacity upper-bounds any measurement-window backlog.
fn assert_zero_alloc_steady_state(label: &str, cfg: NetConfig, shards: usize) {
    let nodes = cfg.node_count();
    let mut net = Network::new(cfg).expect("valid config");
    // Worker-pool spawn and per-shard op-buffer allocation are one-time
    // costs paid here, before the warmup; the sharded steady state —
    // ticket barriers, parallel decides and applies, park/unpark — must
    // then be exactly as allocation-free as the inline path.
    net.set_shards(shards);
    let mut src = saturating_source(nodes);
    for c in 0..20_000u64 {
        net.cycle(&mut src, &mut NoControl);
        if c.is_multiple_of(64) {
            net.drain_deliveries().for_each(drop);
        }
    }
    net.drain_deliveries().for_each(drop);

    let before = alloc_calls();
    for c in 0..4_000u64 {
        net.cycle(&mut src, &mut NoControl);
        if c.is_multiple_of(32) {
            net.drain_deliveries().for_each(drop);
        }
    }
    let during = alloc_calls() - before;
    assert_eq!(
        during, 0,
        "{label}: {during} heap allocations in 4000 post-warmup cycles; \
         the hot path must not allocate"
    );
    // The network really was working, not idling through the measurement.
    assert!(
        net.counters().delivered_packets > 0,
        "{label}: no traffic delivered; the measurement is vacuous"
    );
}

#[test]
fn steady_state_cycles_never_allocate() {
    // Disha recovery: exercises timeout detection, the token queue, the
    // recovery drain and its recycled path scratch.
    assert_zero_alloc_steady_state(
        "recovery",
        NetConfig {
            source_queue_cap: 4,
            ..NetConfig::small(DeadlockMode::PAPER_RECOVERY)
        },
        1,
    );
    // Duato avoidance: exercises escape-channel allocation and the sticky
    // escape flags.
    assert_zero_alloc_steady_state(
        "avoidance",
        NetConfig {
            source_queue_cap: 4,
            ..NetConfig::small(DeadlockMode::Avoidance)
        },
        1,
    );
    // Sharded stepping (the `STCC_SHARDS=4` configuration): the persistent
    // worker pool's dispatch/claim/park cycle and the split local/boundary
    // apply must allocate nothing once the pool is up.
    assert_zero_alloc_steady_state(
        "recovery@shards=4",
        NetConfig {
            source_queue_cap: 4,
            ..NetConfig::small(DeadlockMode::PAPER_RECOVERY)
        },
        4,
    );
}
