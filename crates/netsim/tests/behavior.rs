//! Targeted behavioral tests of the wormhole simulator's microarchitecture.

use wormsim::{CongestionControl, DeadlockMode, NetConfig, Network, NoControl};

fn small(deadlock: DeadlockMode) -> Network {
    Network::new(NetConfig::small(deadlock)).unwrap()
}

#[test]
fn body_flits_stream_one_per_cycle_behind_the_header() {
    // One long packet on an idle network: delivery consumes the tail
    // exactly len-1 cycles after it could first have consumed the header.
    let mut net = small(DeadlockMode::Avoidance);
    let mut one = Some(9usize);
    let mut src = move |_: u64, node: usize| if node == 0 { one.take() } else { None };
    net.run(400, &mut src, &mut NoControl);
    let rec = net.drain_deliveries().next().expect("delivered");
    let dist = net.torus().distance(0, 9) as u64;
    // Tail time = header pipeline (3 cycles/hop + injection/delivery edges)
    // + (len-1) cycles of streaming. Anything longer means the worm stalled.
    let header_pipeline = 3 * dist + 4;
    assert!(
        rec.network_latency() <= header_pipeline + 15,
        "zero-load worm stalled: latency {} for distance {dist}",
        rec.network_latency()
    );
}

#[test]
fn delivery_channel_consumes_at_most_one_flit_per_cycle() {
    // Flood one destination from every other node; the sink's delivery
    // channel is the bottleneck: delivered flits <= elapsed cycles.
    let mut net = small(DeadlockMode::Avoidance);
    let mut src = |now: u64, node: usize| (node != 0 && now.is_multiple_of(8)).then_some(0);
    let cycles = 4_000u64;
    net.run(cycles, &mut src, &mut NoControl);
    let delivered = net.counters().delivered_flits;
    assert!(delivered > 0);
    assert!(
        delivered <= cycles,
        "node 0 consumed {delivered} flits in {cycles} cycles (one delivery channel!)"
    );
    // And the hotspot should actually saturate that channel.
    assert!(
        delivered > cycles / 2,
        "hotspot should keep the delivery channel busy: {delivered} of {cycles}"
    );
}

#[test]
fn source_queue_cap_refuses_generations() {
    let mut cfg = NetConfig::small(DeadlockMode::Avoidance);
    cfg.source_queue_cap = 2;
    let mut net = Network::new(cfg).unwrap();
    // Node 0 generates every cycle to a fixed far destination: queue fills.
    let mut src = |_: u64, node: usize| (node == 0).then_some(36);
    net.run(2_000, &mut src, &mut NoControl);
    let c = net.counters();
    assert!(
        c.refused_generations > 0,
        "cap of 2 must refuse under 1 pkt/cycle"
    );
    assert_eq!(c.generated_packets + c.refused_generations, 2_000);
}

#[test]
fn escape_channels_engage_under_avoidance_load() {
    let mut net = small(DeadlockMode::Avoidance);
    let nodes = net.torus().node_count();
    let mut x = 1usize;
    let mut src = move |_: u64, node: usize| {
        x = x.wrapping_mul(48271).wrapping_add(node);
        Some(x % nodes)
    };
    net.run(5_000, &mut src, &mut NoControl);
    assert!(
        net.counters().escape_allocations > 0,
        "heavy load must push some headers onto the escape VC"
    );
    assert_eq!(
        net.counters().recovery_timeouts,
        0,
        "no suspicion in avoidance mode"
    );
}

#[test]
fn recovery_suspicions_and_recoveries_fire_under_recovery_load() {
    let mut net = small(DeadlockMode::PAPER_RECOVERY);
    let nodes = net.torus().node_count();
    let mut x = 7usize;
    let mut src = move |_: u64, node: usize| {
        x = x.wrapping_mul(48271).wrapping_add(node);
        Some(x % nodes)
    };
    net.run(20_000, &mut src, &mut NoControl);
    let c = net.counters();
    assert!(
        c.recovery_timeouts > 0,
        "flooded recovery network must suspect packets"
    );
    assert!(
        c.recovered_packets > 0,
        "the token must actually drain suspects"
    );
    assert!(
        c.recovered_packets <= c.delivered_packets,
        "recoveries are a subset of deliveries"
    );
    assert_eq!(
        c.escape_allocations, 0,
        "no escape VCs exist in recovery mode"
    );
}

#[test]
fn gate_denials_are_counted_and_block_injection() {
    struct DenyAll;
    impl CongestionControl for DenyAll {
        fn allow_injection(&mut self, _: u64, _: usize, _: usize, _: &Network) -> bool {
            false
        }
        fn name(&self) -> &'static str {
            "deny-all"
        }
    }
    let mut net = small(DeadlockMode::Avoidance);
    let mut src = |now: u64, node: usize| (node == 0 && now == 0).then_some(5);
    net.run(100, &mut src, &mut DenyAll);
    let c = net.counters();
    assert_eq!(c.injected_packets, 0, "a closed gate must admit nothing");
    assert_eq!(c.delivered_packets, 0);
    assert!(
        c.throttled_injections >= 99,
        "denial is counted every blocked cycle"
    );
    assert_eq!(c.undelivered(), 1);
    assert_eq!(net.source_queue_len(0), 1);
}

#[test]
fn single_flit_packets_work_end_to_end() {
    let mut cfg = NetConfig::small(DeadlockMode::PAPER_RECOVERY);
    cfg.packet_len = 1; // header == tail
    let mut net = Network::new(cfg).unwrap();
    let nodes = net.torus().node_count();
    let mut x = 3usize;
    let mut src = move |now: u64, node: usize| {
        x = x.wrapping_mul(48271).wrapping_add(node);
        (now < 2_000 && x.is_multiple_of(4)).then_some(x % nodes)
    };
    net.run(2_000, &mut src, &mut NoControl);
    let mut silent = |_: u64, _: usize| None;
    net.run(50_000, &mut silent, &mut NoControl);
    let c = net.counters();
    assert!(c.generated_packets > 100);
    assert_eq!(c.generated_packets, c.delivered_packets);
    assert_eq!(c.delivered_flits, c.delivered_packets);
}

#[test]
fn deep_buffers_and_many_vcs_also_work() {
    let mut cfg = NetConfig::small(DeadlockMode::Avoidance);
    cfg.vcs = 6;
    cfg.buf_depth = 2;
    cfg.packet_len = 5;
    let mut net = Network::new(cfg).unwrap();
    let nodes = net.torus().node_count();
    let mut x = 11usize;
    let mut src = move |now: u64, node: usize| {
        x = x.wrapping_mul(48271).wrapping_add(node);
        (now < 3_000 && x.is_multiple_of(3)).then_some(x % nodes)
    };
    net.run(3_000, &mut src, &mut NoControl);
    let mut silent = |_: u64, _: usize| None;
    net.run(60_000, &mut silent, &mut NoControl);
    let c = net.counters();
    assert_eq!(c.generated_packets, c.delivered_packets);
    assert_eq!(c.delivered_flits, 5 * c.delivered_packets);
}

#[test]
fn counters_track_undelivered_inventory() {
    let mut net = small(DeadlockMode::Avoidance);
    let mut src = |now: u64, node: usize| (node < 4 && now < 64).then_some(node + 8);
    net.run(30, &mut src, &mut NoControl);
    let c = *net.counters();
    assert_eq!(
        c.undelivered(),
        net.live_packets() as u64,
        "counter arithmetic must match the live slab"
    );
}
