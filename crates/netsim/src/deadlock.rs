//! Disha-style progressive deadlock recovery.
//!
//! In recovery mode every VC routes fully adaptively, so cyclic waits can
//! form. A packet is *suspected* deadlocked when its header has been
//! ready-but-unrouted for `timeout` consecutive cycles and no flit of the
//! whole worm has moved for as long (the routing stage detects this and
//! queues the packet for the token). Suspects keep retrying normal routing;
//! capturing the single network-wide token is the commitment point. The
//! token holder drains, one flit per cycle, through per-router deadlock
//! buffers along a dimension-order path to its destination, bypassing the
//! ordinary virtual channels entirely. The token is released when the tail
//! is consumed.
//!
//! This serialization is exactly why the paper's deadlock-recovery network
//! collapses so hard past saturation: when deadlocks become frequent, the
//! only forward progress happens over this one-packet-at-a-time drain path.

use crate::network::{Assign, Network, RecoveryJob, DL_DEPTH};

impl Network {
    /// Grants the recovery token (if free) to the longest-waiting suspect
    /// and advances the active recovery by one cycle.
    pub(crate) fn recovery_stage(&mut self, now: u64) {
        if self.recovery.is_none() {
            self.grant_token();
        }
        let Some(mut job) = self.recovery.take() else {
            return;
        };
        self.counters.stage_drain_steps += 1;
        let finished = self.advance_recovery(now, &mut job);
        if finished {
            debug_assert!(job.tail_in, "tail delivered before leaving the source VC");
            // Recycle the path's backing storage for the next grant.
            self.path_scratch = job.path;
        } else {
            self.recovery = Some(job);
        }
    }

    fn grant_token(&mut self) {
        // Suspected packets are served in suspicion order (FIFO token
        // hand-off). Entries whose packet escaped back to normal routing in
        // the meantime are skipped.
        let idx = loop {
            if self.token_queue.is_empty(0) {
                return;
            }
            let idx = self.token_queue.pop_front(0) as usize;
            self.vc_queued[idx] = false;
            if matches!(self.vc_assign[idx], Assign::AwaitToken) {
                break idx;
            }
        };
        let pid = self
            .vc_bufs
            .front(idx)
            .expect("candidate VC has a blocked header")
            .packet;
        self.set_assign(idx, Assign::Recovery);
        self.vc_blocked[idx] = 0;
        let node = idx / (self.torus().channels_per_node() * self.config().vcs);
        let dst = self.packets.get(pid).dst;
        // The scratch vector is kept at diameter+1 capacity, so building the
        // path allocates nothing in steady state.
        let mut path = std::mem::take(&mut self.path_scratch);
        path.clear();
        path.reserve(self.max_path);
        path.push(node);
        let mut cur = node;
        while let Some((dim, dir)) = self.torus().dimension_order_hop(cur, dst) {
            cur = self.torus().neighbor(cur, dim, dir);
            path.push(cur);
        }
        self.recovery = Some(RecoveryJob {
            packet: pid,
            path,
            src_vc: idx,
            tail_in: false,
        });
    }

    /// Moves the recovering packet's flits one step: delivery end first so a
    /// vacated buffer can be refilled in the same cycle (pipelined drain).
    /// Returns whether the tail was delivered.
    fn advance_recovery(&mut self, now: u64, job: &mut RecoveryJob) -> bool {
        let last = job.path.len() - 1;
        let mut finished = false;

        for i in (0..=last).rev() {
            let r = job.path[i];
            if self.dl_bufs.is_empty(r) {
                continue;
            }
            if self.dl_bufs.front_ready_at(r) > now {
                continue;
            }
            if i == last {
                // A hot, non-consuming destination stalls the recovery
                // drain exactly as it stalls the normal delivery channel.
                if self.delivery_stalled(r, now) {
                    self.counters.hotspot_stall_cycles += 1;
                    continue;
                }
                let flit = self.dl_bufs.pop_front(r);
                let is_tail = flit.idx + 1 == self.packets.get(flit.packet).len;
                self.deliver_flit(now, flit, true);
                if is_tail {
                    finished = true;
                }
            } else {
                let next = job.path[i + 1];
                if self.dl_bufs.len(next) < DL_DEPTH {
                    let mut flit = self.dl_bufs.pop_front(r);
                    flit.ready_at = now + self.config().hop_latency;
                    self.dl_bufs.push_back(next, flit);
                    self.last_progress_at = now;
                }
            }
        }

        // Transition: pull the packet's flits out of the blocked input VC
        // into the local deadlock buffer.
        if !job.tail_in {
            let entry = job.path[0];
            if self.dl_bufs.len(entry) < DL_DEPTH {
                let src = job.src_vc;
                debug_assert!(matches!(self.vc_assign[src], Assign::Recovery));
                if !self.vc_bufs.is_empty(src) && self.vc_bufs.front_ready_at(src) <= now {
                    debug_assert_eq!(self.vc_bufs.front_packet(src), job.packet);
                    let mut flit = self.vc_bufs.pop_front(src);
                    if flit.idx + 1 == self.packets.get(flit.packet).len {
                        self.set_assign(src, Assign::None);
                        job.tail_in = true;
                    }
                    self.note_vc_popped(src);
                    flit.ready_at = now + 1;
                    self.dl_bufs.push_back(entry, flit);
                    self.last_progress_at = now;
                }
            }
        }
        finished
    }
}
