use crate::network::Network;
use kncube::NodeId;

/// A congestion-control policy plugged into the simulator.
///
/// The simulator calls [`CongestionControl::on_cycle`] exactly once per
/// cycle, before any injection decision, with read access to the network
/// (controllers derive whatever visibility model they implement from it —
/// e.g. the self-tuned controller feeds the true census into its side-band
/// model and only ever acts on the delayed snapshots that emerge).
/// [`CongestionControl::allow_injection`] is then consulted for the packet
/// at the head of each non-empty source queue; returning `false` keeps that
/// packet (and everything behind it) in the source queue this cycle.
///
/// Throttling only gates *new* packets: a packet whose header has entered
/// the network always finishes streaming.
pub trait CongestionControl {
    /// Per-cycle observation hook; default is a no-op.
    fn on_cycle(&mut self, now: u64, net: &Network) {
        let _ = (now, net);
    }

    /// Whether `node` may start injecting a packet destined for `dst` at
    /// cycle `now`. Default: always allow.
    fn allow_injection(&mut self, now: u64, node: NodeId, dst: NodeId, net: &Network) -> bool {
        let _ = (now, node, dst, net);
        true
    }

    /// Whether the policy throttled any injection during the most recent
    /// cycle (used by the self-tuner's decision table and by statistics).
    fn throttled_recently(&self) -> bool {
        false
    }

    /// The earliest cycle at which the policy needs its [`on_cycle`] hook
    /// to run again, assuming the network stays quiescent until then.
    /// Returning `now` (the conservative default) vetoes any fast-forward:
    /// the simulation steps cycle by cycle. Policies with no internal clock
    /// (or one derived purely from network events) may return a later cycle
    /// — or `u64::MAX` for "whenever traffic resumes" — allowing the
    /// driver to skip empty cycles wholesale.
    ///
    /// [`on_cycle`]: CongestionControl::on_cycle
    fn next_wakeup(&self, now: u64) -> u64 {
        now
    }

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// The paper's `Base` configuration: no congestion control at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoControl;

impl CongestionControl for NoControl {
    fn name(&self) -> &'static str {
        "base"
    }

    fn next_wakeup(&self, _now: u64) -> u64 {
        u64::MAX
    }
}
