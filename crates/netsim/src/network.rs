use crate::config::{DeadlockMode, NetConfig};
use crate::control::CongestionControl;
use crate::counters::Counters;
use crate::packet::{DeliveredRecord, Flit, PacketId, PacketInfo, PacketStore};
use crate::ring::{DeliveryDrain, DeliveryRing, FlitRings, IdRing};
use crate::routing::RouteTables;
use faults::{FaultPlan, FaultPlanError};
use kncube::{Dir, NodeId, Torus};

/// Capacity of each per-router Disha deadlock buffer, in flits. Two slots
/// allow the recovery path to stream at full rate despite the 2-cycle hop
/// pipeline.
pub(crate) const DL_DEPTH: usize = 2;

/// Where the packet currently at the front of an input VC (or of the
/// injection interface) is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Assign {
    /// Not yet routed.
    None,
    /// Assigned an output virtual channel on a network port.
    Out { port: u8, vc: u8 },
    /// Headed for the local delivery channel.
    Delivery,
    /// Suspected deadlocked: committed to recovery, waiting for the token.
    AwaitToken,
    /// Draining through the Disha recovery network.
    Recovery,
}

/// Per-node injection interface: the packet currently streaming from the
/// source queue into the router.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InjState {
    pub active: Option<PacketId>,
    pub sent: u16,
    pub assign: Assign,
    pub routed_at: u64,
}

impl InjState {
    fn idle() -> Self {
        InjState {
            active: None,
            sent: 0,
            assign: Assign::None,
            routed_at: 0,
        }
    }
}

/// An in-progress Disha recovery: the token holder and its drain path.
#[derive(Debug, Clone)]
pub(crate) struct RecoveryJob {
    pub packet: PacketId,
    /// Dimension-order path from the transition router (inclusive) to the
    /// destination (inclusive). The backing vector is recycled through
    /// `Network::path_scratch` so steady-state recoveries never allocate.
    pub path: Vec<NodeId>,
    /// Input VC (global index) whose flits transition into the deadlock
    /// network, until the tail has passed.
    pub src_vc: usize,
    /// Whether the tail has left `src_vc` (no more flits will transition).
    pub tail_in: bool,
}

/// The simulated wormhole network: all router state, flat for speed.
///
/// All per-cycle queues live in flat structure-of-arrays arenas allocated
/// once at construction ([`crate::ring`]), and routing decisions come from
/// tables precomputed at construction ([`RouteTables`]), so the steady-state
/// cycle pipeline performs **zero heap allocations** — a counting test
/// allocator enforces this (`tests/zero_alloc.rs`), and DESIGN.md
/// ("Simulator memory layout") documents the invariants.
///
/// Drive it with [`Network::cycle`]; read results with
/// [`Network::drain_deliveries`] and [`Network::counters`].
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    torus: Torus,
    /// Network ports per router (`2n`).
    d: usize,
    /// VCs per physical channel.
    v: usize,
    depth: usize,
    packet_len: u16,
    /// Longest possible recovery drain path (torus diameter + 1), the
    /// capacity floor kept on `path_scratch`.
    pub(crate) max_path: usize,

    /// Edge buffers of every input VC, one flat SoA arena indexed by
    /// `(node * d + port) * v + vc` (ring `r` holds VC `r`'s flits).
    pub(crate) vc_bufs: FlitRings,
    /// Routing assignment of the packet at the front of each input VC.
    pub(crate) vc_assign: Vec<Assign>,
    /// Cycle each VC's current assignment was made (headers move one cycle
    /// later: the paper's 1-cycle routing delay).
    pub(crate) vc_routed_at: Vec<u64>,
    /// Consecutive cycles each VC's front header has been ready but
    /// unrouted (drives Disha's timeout detection).
    pub(crate) vc_blocked: Vec<u64>,
    /// Whether each VC currently has an entry in the recovery token queue.
    pub(crate) vc_queued: Vec<bool>,
    /// Output VC allocation flags, same indexing as the VC arrays (an
    /// output VC of node `u` is the upstream side of a neighbor's input VC).
    pub(crate) out_alloc: Vec<bool>,
    pub(crate) inj: Vec<InjState>,
    /// Per-node source queues of waiting packet ids (ring `node`).
    pub(crate) source_q: IdRing,
    pub(crate) packets: PacketStore,
    /// Whether each packet ever took an escape VC (sticky escape).
    pub(crate) escaped: Vec<bool>,

    /// Per-router Disha deadlock buffers (ring `node`, depth [`DL_DEPTH`];
    /// recovery mode only).
    pub(crate) dl_bufs: FlitRings,
    pub(crate) recovery: Option<RecoveryJob>,
    /// Recycled backing storage for [`RecoveryJob::path`], kept at capacity
    /// `max_path` so granting the token never allocates in steady state.
    pub(crate) path_scratch: Vec<NodeId>,

    /// Precomputed next-hop / productive-port / downstream-index tables.
    pub(crate) tables: RouteTables,

    /// Demand-slotted round-robin cursor of each router's routing arbiter.
    pub(crate) route_rr: Vec<usize>,
    /// Round-robin cursor per output channel (network ports + delivery).
    pub(crate) out_rr: Vec<usize>,

    pub(crate) now: u64,
    pub(crate) counters: Counters,
    /// Incrementally maintained count of completely full input VC buffers.
    pub(crate) full_buffers: u32,
    /// Active-VC worklist: bit `f` of `vc_busy[node]` is set iff input VC
    /// `f = port * v + vc` of `node` holds at least one flit. The route,
    /// switch and starvation stages iterate set bits instead of scanning
    /// every VC, so an idle router costs one integer test per cycle.
    /// (Config validation caps feeders at 64, so a `u64` always fits.)
    pub(crate) vc_busy: Vec<u64>,
    /// Delivered-packet records awaiting [`Network::drain_deliveries`]; a
    /// consumer draining every gather period bounds this at O(period).
    pub(crate) deliveries: DeliveryRing,
    /// Scratch: per-node injection allowance for the current cycle.
    allow: Vec<bool>,
    /// FIFO of suspected-deadlocked input VCs awaiting the recovery token
    /// (single ring; `vc_queued` caps it at one entry per VC).
    pub(crate) token_queue: IdRing,
    /// Cycle of the most recent flit delivery (watchdog aid).
    pub(crate) last_delivery_at: u64,
    /// Cycle any flit last moved anywhere — normal hops, injections,
    /// deliveries or recovery-network steps (drives livelock detection).
    pub(crate) last_progress_at: u64,
    /// Scheduled link/hotspot faults (`None` = fault-free network; the hot
    /// path is untouched until a non-quiet plan is installed).
    faults: Option<FaultPlan>,
}

impl Network {
    /// Builds an empty network from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration error, if any.
    pub fn new(cfg: NetConfig) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let torus = cfg.torus().expect("validated");
        let nodes = torus.node_count();
        let d = torus.channels_per_node();
        let v = cfg.vcs;
        let n_vcs = nodes * d * v;
        let max_path = torus.dimensions() * (cfg.radix / 2) + 1;
        let tables = RouteTables::build(&torus, v);
        Ok(Network {
            torus,
            d,
            v,
            depth: cfg.buf_depth,
            packet_len: cfg.packet_len as u16,
            max_path,
            vc_bufs: FlitRings::new(n_vcs, cfg.buf_depth),
            vc_assign: vec![Assign::None; n_vcs],
            vc_routed_at: vec![0; n_vcs],
            vc_blocked: vec![0; n_vcs],
            vc_queued: vec![false; n_vcs],
            out_alloc: vec![false; n_vcs],
            inj: vec![InjState::idle(); nodes],
            source_q: IdRing::new(nodes, cfg.source_queue_cap),
            packets: PacketStore::new(),
            escaped: Vec::new(),
            dl_bufs: FlitRings::new(nodes, DL_DEPTH),
            recovery: None,
            path_scratch: Vec::with_capacity(max_path),
            tables,
            route_rr: vec![0; nodes],
            out_rr: vec![0; nodes * (d + 1)],
            now: 0,
            counters: Counters::default(),
            full_buffers: 0,
            vc_busy: vec![0; nodes],
            deliveries: DeliveryRing::default(),
            allow: vec![true; nodes],
            token_queue: IdRing::new(1, n_vcs),
            last_delivery_at: 0,
            last_progress_at: 0,
            faults: None,
            cfg,
        })
    }

    /// Installs the data-network portion of a fault plan: scheduled link
    /// stalls and node hotspots. A plan with no network faults leaves the
    /// fault-free fast path untouched.
    ///
    /// # Errors
    ///
    /// Returns the plan's first constraint violation against this network's
    /// shape (node range, port range, empty windows, fault rates).
    pub fn install_faults(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate(self.torus.node_count(), self.d)?;
        self.faults = (!plan.net_is_quiet()).then_some(plan);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read-side API (used by congestion controllers and experiments)
    // ------------------------------------------------------------------

    /// The network configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The underlying torus.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The current cycle (number of completed [`Network::cycle`] calls).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Network-wide count of *completely full* input VC buffers — the
    /// congestion metric the paper's side-band distributes.
    #[must_use]
    pub fn full_buffer_count(&self) -> u32 {
        self.full_buffers
    }

    /// Total number of VC buffers (the denominator for threshold
    /// percentages; 3072 for the paper's network).
    #[must_use]
    pub fn total_vc_buffers(&self) -> u32 {
        self.vc_assign.len() as u32
    }

    /// Cumulative flits delivered since the start of the simulation.
    #[must_use]
    pub fn delivered_flits_cum(&self) -> u64 {
        self.counters.delivered_flits
    }

    /// Whether the output VC `(dim, dir, vc)` of `node` is currently
    /// allocated to a packet (used by the ALO baseline's "free VC" test).
    #[must_use]
    pub fn output_vc_allocated(&self, node: NodeId, dim: usize, dir: Dir, vc: usize) -> bool {
        self.out_alloc[self.vc_idx(node, port_of(dim, dir), vc)]
    }

    /// Number of packets waiting in `node`'s source queue.
    #[must_use]
    pub fn source_queue_len(&self, node: NodeId) -> usize {
        self.source_q.len(node)
    }

    /// Number of packets generated but not yet fully delivered.
    #[must_use]
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// Takes the records of packets delivered since the last drain.
    ///
    /// Draining regularly (the simulation driver drains every cycle) bounds
    /// the undrained backlog — and thus this queue's memory — at the
    /// between-drain high-water mark rather than the whole run's deliveries.
    pub fn drain_deliveries(&mut self) -> DeliveryDrain<'_> {
        self.deliveries.drain()
    }

    /// Whether the network has had traffic in flight but delivered nothing
    /// for at least `window` cycles — a watchdog for tests (a correctly
    /// functioning configuration always makes progress).
    #[must_use]
    pub fn progress_stalled(&self, window: u64) -> bool {
        self.packets.live() > 0 && self.now.saturating_sub(self.last_delivery_at) >= window
    }

    /// Cycle any flit of any packet last moved — a normal hop, an
    /// injection, a delivery or a recovery-network step. The livelock
    /// watchdog's progress marker.
    #[must_use]
    pub fn last_progress_at(&self) -> u64 {
        self.last_progress_at
    }

    /// Cycle of the most recent flit delivery.
    #[must_use]
    pub fn last_delivery_at(&self) -> u64 {
        self.last_delivery_at
    }

    /// Whether the network is wedged: traffic is in flight but *no flit has
    /// moved anywhere* — not even through the recovery network — for at
    /// least `window` cycles. A correctly configured network always keeps
    /// some flit moving, so this only trips on genuine livelock (e.g. every
    /// delivery channel stalled by a permanent hotspot fault).
    #[must_use]
    pub fn livelocked(&self, window: u64) -> bool {
        self.packets.live() > 0 && self.now.saturating_sub(self.last_progress_at) >= window
    }

    /// Number of suspected-deadlocked VCs waiting for the recovery token.
    #[must_use]
    pub fn token_queue_len(&self) -> usize {
        self.token_queue.len(0)
    }

    /// Whether a Disha recovery drain is currently holding the token.
    #[must_use]
    pub fn recovery_active(&self) -> bool {
        self.recovery.is_some()
    }

    // ------------------------------------------------------------------
    // Index helpers
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn vc_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        (node * self.d + port) * self.v + vc
    }

    /// The downstream input VC fed by output VC `(port, vc)` of `node`
    /// (precomputed; see [`RouteTables`]).
    #[inline]
    pub(crate) fn downstream_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        self.tables.downstream(self.vc_idx(node, port, vc))
    }

    #[inline]
    fn feeders_per_node(&self) -> usize {
        self.d * self.v + 1 // input VCs + injection interface
    }

    /// Marks input VC `idx` (global index) non-empty in the worklist. Call
    /// after pushing a flit into its buffer.
    #[inline]
    pub(crate) fn note_vc_filled(&mut self, idx: usize) {
        let fpn = self.d * self.v;
        self.vc_busy[idx / fpn] |= 1u64 << (idx % fpn);
    }

    /// Clears input VC `idx` from the worklist if its buffer is now empty.
    /// Call after popping a flit from it.
    #[inline]
    pub(crate) fn note_vc_popped(&mut self, idx: usize) {
        let empty = self.vc_bufs.is_empty(idx);
        let fpn = self.d * self.v;
        self.vc_busy[idx / fpn] &= !(u64::from(empty) << (idx % fpn));
    }

    /// Debug-only audit that the worklist agrees with the buffers exactly.
    #[cfg(debug_assertions)]
    fn debug_check_worklist(&self) {
        let fpn = self.d * self.v;
        for (node, &mask) in self.vc_busy.iter().enumerate() {
            for f in 0..fpn {
                let busy = !self.vc_bufs.is_empty(node * fpn + f);
                debug_assert_eq!(
                    mask >> f & 1 == 1,
                    busy,
                    "worklist out of sync at node {node} feeder {f}"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // The cycle pipeline
    // ------------------------------------------------------------------

    /// Advances the network by one cycle.
    ///
    /// `source(now, node)` is polled once per node and returns the
    /// destination of a newly generated packet, if any; `ctl` is the
    /// congestion-control policy (use [`crate::NoControl`] for the paper's
    /// `Base`).
    pub fn cycle(
        &mut self,
        source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>,
        ctl: &mut dyn CongestionControl,
    ) {
        let now = self.now;
        self.generate(now, source);
        ctl.on_cycle(now, self);
        self.decide_injection(now, ctl);
        self.route_stage(now);
        if let DeadlockMode::Recovery { timeout } = self.cfg.deadlock {
            self.detect_starved_heads(now, timeout);
            self.recovery_stage(now);
        }
        self.switch_stage(now);
        #[cfg(debug_assertions)]
        self.debug_check_worklist();
        self.now = now + 1;
    }

    /// Runs `cycles` cycles (convenience wrapper over [`Network::cycle`]).
    pub fn run(
        &mut self,
        cycles: u64,
        source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>,
        ctl: &mut dyn CongestionControl,
    ) {
        for _ in 0..cycles {
            self.cycle(source, ctl);
        }
    }

    fn generate(&mut self, now: u64, source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>) {
        let nodes = self.torus.node_count();
        for node in 0..nodes {
            let Some(dst) = source(now, node) else {
                continue;
            };
            assert!(
                dst < nodes,
                "traffic source produced destination {dst} out of range"
            );
            if self.source_q.is_full(node) {
                self.counters.refused_generations += 1;
                continue;
            }
            let id = self.packets.alloc(PacketInfo {
                src: node,
                dst,
                generated_at: now,
                injected_at: u64::MAX,
                len: self.packet_len,
                delivered_flits: 0,
                last_move: now,
            });
            if self.escaped.len() <= id as usize {
                self.escaped.resize(id as usize + 1, false);
            }
            self.escaped[id as usize] = false;
            self.source_q.push_back(node, id);
            self.counters.generated_packets += 1;
        }
    }

    fn decide_injection(&mut self, now: u64, ctl: &mut dyn CongestionControl) {
        let nodes = self.torus.node_count();
        for node in 0..nodes {
            // Only consult the gate when a new packet could actually start.
            let waiting = self.inj[node].active.is_none() && !self.source_q.is_empty(node);
            self.allow[node] = if waiting {
                let dst = self.packets.get(self.source_q.front(node)).dst;
                let ok = ctl.allow_injection(now, node, dst, self);
                self.counters.throttled_injections += u64::from(!ok);
                ok
            } else {
                false
            };
        }
    }

    /// Routing + VC allocation: each router's central arbiter routes at most
    /// one header per cycle, demand-slotted round-robin over requesters.
    fn route_stage(&mut self, now: u64) {
        let nodes = self.torus.node_count();
        let fpn = self.feeders_per_node();
        let inj_feeder = self.d * self.v;
        let timeout = match self.cfg.deadlock {
            DeadlockMode::Recovery { timeout } => timeout,
            DeadlockMode::Avoidance => u64::MAX,
        };
        let mut requests: [u16; 64] = [0; 64];
        for node in 0..nodes {
            // A router with no waiting flits and no admitted injection has
            // nothing to arbitrate.
            if self.vc_busy[node] == 0 && !self.allow[node] {
                continue;
            }
            // Gather routing requests from occupied input VCs (ascending
            // feeder order, same as a full scan).
            let mut nreq = 0usize;
            let base = self.vc_idx(node, 0, 0);
            let mut mask = self.vc_busy[node];
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let idx = base + f;
                // Unrouted headers request routing; suspected (token-queued)
                // headers keep requesting too — only capturing the token
                // commits a packet to the recovery path, so a transiently
                // congested packet resumes normal routing when a channel
                // frees. Truly deadlocked packets never see a free channel.
                if matches!(self.vc_assign[idx], Assign::None | Assign::AwaitToken)
                    && self.vc_bufs.front_idx(idx) == 0
                    && self.vc_bufs.front_ready_at(idx) <= now
                {
                    requests[nreq] = f as u16;
                    nreq += 1;
                }
            }
            if self.allow[node] {
                requests[nreq] = inj_feeder as u16;
                nreq += 1;
            }
            if nreq == 0 {
                continue;
            }
            // Demand-slotted RR: pick the first requester at or after the
            // cursor position.
            let cursor = self.route_rr[node] % fpn;
            let winner = *requests[..nreq]
                .iter()
                .find(|&&f| usize::from(f) >= cursor)
                .unwrap_or(&requests[0]);
            let winner = usize::from(winner);
            self.route_rr[node] = winner + 1;

            // Attempt allocation for the winner.
            let routed = self.try_route(now, node, winner, inj_feeder);

            // Blocked-cycle accounting for every input-VC requester that did
            // not end up routed this cycle (drives Disha detection).
            for &f in &requests[..nreq] {
                let f = usize::from(f);
                if f == inj_feeder {
                    continue; // queued packets hold no resources: not deadlockable
                }
                let idx = base + f;
                if routed && f == winner {
                    self.vc_blocked[idx] = 0;
                } else if self.vc_assign[idx] == Assign::None {
                    self.vc_blocked[idx] += 1;
                    // Disha suspicion: the header has starved for `timeout`
                    // cycles AND no flit of the whole worm has moved for
                    // `timeout` cycles (transient contention keeps body
                    // flits crawling and does not trip this). A suspected
                    // packet queues for the recovery token but keeps
                    // retrying normal routing until the token is captured.
                    if self.vc_blocked[idx] >= timeout {
                        let pid = self.vc_bufs.front_packet(idx);
                        if now.saturating_sub(self.packets.get(pid).last_move) >= timeout {
                            self.vc_assign[idx] = Assign::AwaitToken;
                            self.vc_blocked[idx] = 0;
                            if !self.vc_queued[idx] {
                                self.vc_queued[idx] = true;
                                self.token_queue.push_back(0, idx as u32);
                            }
                            self.counters.recovery_timeouts += 1;
                        }
                    }
                }
            }
        }
    }

    /// Detects deadlocked worms whose header is *routed* but has been
    /// credit-starved at the front of its buffer for `timeout` cycles with
    /// the whole worm inactive. (The routing stage only watches unrouted
    /// headers; a cycle can also form among headers that already hold an
    /// output VC and wait forever for buffer space.) Such a header has sent
    /// nothing on its allocated VC yet — the header is still here — so the
    /// allocation is released and the worm committed to the token queue.
    fn detect_starved_heads(&mut self, now: u64, timeout: u64) {
        // Cheap gating: only sweep when the sweep could matter (every
        // `timeout` cycles).
        if timeout == 0 || !now.is_multiple_of(timeout) {
            return;
        }
        let fpn = self.d * self.v;
        for node in 0..self.torus.node_count() {
            let mut mask = self.vc_busy[node];
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.check_starved_head(now, timeout, node * fpn + f);
            }
        }
    }

    /// One VC's starved-head check (see [`Self::detect_starved_heads`]).
    fn check_starved_head(&mut self, now: u64, timeout: u64, idx: usize) {
        let Assign::Out { port, vc: ovc } = self.vc_assign[idx] else {
            return;
        };
        if self.vc_bufs.is_empty(idx) {
            return;
        }
        if self.vc_bufs.front_idx(idx) != 0 || self.vc_bufs.front_ready_at(idx) > now {
            return;
        }
        let pid = self.vc_bufs.front_packet(idx);
        if now.saturating_sub(self.packets.get(pid).last_move) < timeout {
            return;
        }
        let node = idx / (self.d * self.v);
        let oidx = self.vc_idx(node, usize::from(port), usize::from(ovc));
        debug_assert!(self.out_alloc[oidx]);
        self.out_alloc[oidx] = false;
        self.vc_assign[idx] = Assign::AwaitToken;
        self.vc_blocked[idx] = 0;
        if !self.vc_queued[idx] {
            self.vc_queued[idx] = true;
            self.token_queue.push_back(0, idx as u32);
        }
        self.counters.recovery_timeouts += 1;
    }

    /// Routes the winning feeder of `node`'s arbiter; returns whether an
    /// assignment was made.
    fn try_route(&mut self, now: u64, node: NodeId, feeder: usize, inj_feeder: usize) -> bool {
        let (pid, is_inj) = if feeder == inj_feeder {
            (self.source_q.front(node), true)
        } else {
            let idx = self.vc_idx(node, 0, 0) + feeder;
            (self.vc_bufs.front_packet(idx), false)
        };
        let dst = self.packets.get(pid).dst;
        let assign = if dst == node {
            Some(Assign::Delivery)
        } else {
            self.choose_output(node, dst, pid)
        };
        let Some(assign) = assign else { return false };
        if let Assign::Out { port, vc } = assign {
            let oidx = self.vc_idx(node, usize::from(port), usize::from(vc));
            debug_assert!(!self.out_alloc[oidx], "allocating an owned VC");
            self.out_alloc[oidx] = true;
            if usize::from(vc) < self.cfg.escape_vcs() {
                self.escaped[pid as usize] = true;
                self.counters.escape_allocations += 1;
            }
        }
        if is_inj {
            let id = self.source_q.pop_front(node);
            debug_assert_eq!(id, pid);
            self.inj[node] = InjState {
                active: Some(id),
                sent: 0,
                assign,
                routed_at: now,
            };
        } else {
            let idx = self.vc_idx(node, 0, 0) + feeder;
            self.vc_assign[idx] = assign;
            self.vc_routed_at[idx] = now;
            self.vc_blocked[idx] = 0;
        }
        true
    }

    /// Switch + link traversal: each output channel (network ports and the
    /// delivery channel) moves at most one flit per cycle, round-robin over
    /// the input VCs assigned to it.
    fn switch_stage(&mut self, now: u64) {
        let nodes = self.torus.node_count();
        let inj_feeder = self.d * self.v;
        let nports = self.d + 1; // network ports + delivery
                                 // Per-port candidate buckets, hoisted out of the node loop: zeroing
                                 // ~2 KiB per node per cycle dominated idle-router cost. Only
                                 // `counts` needs resetting; stale `buckets` entries are never read.
        let mut buckets: [[u16; 64]; 17] = [[0; 64]; 17];
        let mut counts = [0usize; 17];
        debug_assert!(nports <= 17 && self.feeders_per_node() <= 64);
        for node in 0..nodes {
            if self.vc_busy[node] == 0 && self.inj[node].active.is_none() {
                continue; // nothing buffered, nothing injecting
            }
            // Bucket ready feeders by output port.
            counts[..nports].fill(0);
            let base = self.vc_idx(node, 0, 0);
            let mut mask = self.vc_busy[node];
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let idx = base + f;
                let assign = self.vc_assign[idx];
                let port = match assign {
                    Assign::Out { port, .. } => usize::from(port),
                    Assign::Delivery => self.d,
                    Assign::None | Assign::AwaitToken | Assign::Recovery => continue,
                };
                if self.vc_bufs.front_ready_at(idx) > now
                    || (self.vc_bufs.front_idx(idx) == 0 && self.vc_routed_at[idx] >= now)
                {
                    continue;
                }
                if let Assign::Out { port, vc: ovc } = assign {
                    let didx = self.downstream_idx(node, usize::from(port), usize::from(ovc));
                    if self.vc_bufs.len(didx) >= self.depth {
                        continue; // no credit
                    }
                }
                buckets[port][counts[port]] = f as u16;
                counts[port] += 1;
            }
            // Injection feeder.
            let inj = self.inj[node];
            if let Some(pid) = inj.active {
                let port = match inj.assign {
                    Assign::Out { port, .. } => Some(usize::from(port)),
                    Assign::Delivery => Some(self.d),
                    _ => None,
                };
                if let Some(port) = port {
                    let header_wait = inj.sent == 0 && inj.routed_at >= now;
                    let credit_ok = match inj.assign {
                        Assign::Out { port, vc } => {
                            let didx =
                                self.downstream_idx(node, usize::from(port), usize::from(vc));
                            self.vc_bufs.len(didx) < self.depth
                        }
                        _ => true,
                    };
                    if !header_wait && credit_ok && inj.sent < self.packets.get(pid).len {
                        buckets[port][counts[port]] = inj_feeder as u16;
                        counts[port] += 1;
                    }
                }
            }
            // One flit per output channel, RR over its candidates.
            for port in 0..nports {
                if counts[port] == 0 {
                    continue;
                }
                // A faulted output moves nothing this cycle: a stalled link
                // (network port) or a hot, non-consuming node (delivery
                // port). Stall-cycles count only when a flit was ready.
                if let Some(plan) = &self.faults {
                    if port == self.d {
                        if plan.delivery_down(node, now) {
                            self.counters.hotspot_stall_cycles += 1;
                            continue;
                        }
                    } else if plan.link_down(node, port, now) {
                        self.counters.link_stall_cycles += 1;
                        continue;
                    }
                }
                let cands = &buckets[port][..counts[port]];
                let cursor = self.out_rr[node * nports + port] % self.feeders_per_node();
                let pick = *cands
                    .iter()
                    .find(|&&f| usize::from(f) >= cursor)
                    .unwrap_or(&cands[0]);
                self.out_rr[node * nports + port] = usize::from(pick) + 1;
                self.move_flit(now, node, usize::from(pick), inj_feeder);
            }
        }
    }

    /// Moves one flit from feeder `f` of `node` along its assignment.
    fn move_flit(&mut self, now: u64, node: NodeId, f: usize, inj_feeder: usize) {
        let (flit, assign, is_tail) = if f == inj_feeder {
            let inj = &mut self.inj[node];
            let pid = inj.active.expect("injection feeder has active packet");
            let idx = inj.sent;
            inj.sent += 1;
            let len = self.packets.get(pid).len;
            let is_tail = inj.sent == len;
            if idx == 0 {
                self.packets.get_mut(pid).injected_at = now;
                self.counters.injected_packets += 1;
            }
            let assign = inj.assign;
            if is_tail {
                self.inj[node] = InjState::idle();
            }
            (
                Flit {
                    packet: pid,
                    idx,
                    ready_at: now,
                },
                assign,
                is_tail,
            )
        } else {
            let idx = self.vc_idx(node, 0, 0) + f;
            let was_full = self.vc_bufs.len(idx) >= self.depth;
            let flit = self.vc_bufs.pop_front(idx);
            self.full_buffers -= u32::from(was_full);
            let assign = self.vc_assign[idx];
            let is_tail = flit.idx + 1 == self.packets.get(flit.packet).len;
            if is_tail {
                self.vc_assign[idx] = Assign::None;
            }
            self.note_vc_popped(idx);
            (flit, assign, is_tail)
        };

        self.packets.get_mut(flit.packet).last_move = now;
        self.last_progress_at = now;
        match assign {
            Assign::Out { port, vc } => {
                let oidx = self.vc_idx(node, usize::from(port), usize::from(vc));
                let didx = self.tables.downstream(oidx);
                if is_tail {
                    debug_assert!(self.out_alloc[oidx]);
                    self.out_alloc[oidx] = false;
                }
                self.vc_bufs.push_back(
                    didx,
                    Flit {
                        ready_at: now + self.cfg.hop_latency,
                        ..flit
                    },
                );
                let now_full = self.vc_bufs.len(didx) >= self.depth;
                self.full_buffers += u32::from(now_full);
                self.note_vc_filled(didx);
            }
            Assign::Delivery => self.deliver_flit(now, flit, false),
            Assign::None | Assign::AwaitToken | Assign::Recovery => {
                unreachable!("move_flit called on unassigned feeder")
            }
        }
    }

    /// Whether a fault plan currently stalls `node`'s delivery channel
    /// (consulted by both the switch stage and the recovery drain: a hot,
    /// non-consuming node cannot consume recovery flits either).
    #[inline]
    pub(crate) fn delivery_stalled(&self, node: NodeId, now: u64) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|plan| plan.delivery_down(node, now))
    }

    /// Consumes a flit at its destination's delivery channel.
    pub(crate) fn deliver_flit(&mut self, now: u64, flit: Flit, via_recovery: bool) {
        self.counters.delivered_flits += 1;
        self.last_delivery_at = now;
        self.last_progress_at = now;
        let len = {
            let p = self.packets.get_mut(flit.packet);
            p.delivered_flits += 1;
            p.len
        };
        if flit.idx + 1 == len {
            let p = *self.packets.get(flit.packet);
            debug_assert_eq!(p.delivered_flits, len, "flits delivered out of order");
            self.deliveries.push(DeliveredRecord {
                src: p.src,
                dst: p.dst,
                generated_at: p.generated_at,
                injected_at: p.injected_at,
                delivered_at: now,
                len,
                recovered: via_recovery,
            });
            self.counters.delivered_packets += 1;
            self.counters.recovered_packets += u64::from(via_recovery);
            self.packets.release(flit.packet);
        }
    }
}

/// Output/input port index of `(dim, dir)`: `2*dim` for `Plus`, `2*dim + 1`
/// for `Minus`.
#[inline]
#[must_use]
pub(crate) fn port_of(dim: usize, dir: Dir) -> usize {
    dim * 2 + usize::from(dir == Dir::Minus)
}

/// Inverse of [`port_of`].
#[inline]
#[must_use]
pub(crate) fn dim_dir_of(port: usize) -> (usize, Dir) {
    (
        port / 2,
        if port.is_multiple_of(2) {
            Dir::Plus
        } else {
            Dir::Minus
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_mapping_round_trips() {
        for dim in 0..4 {
            for dir in Dir::BOTH {
                let p = port_of(dim, dir);
                assert_eq!(dim_dir_of(p), (dim, dir));
            }
        }
        assert_eq!(port_of(0, Dir::Plus), 0);
        assert_eq!(port_of(1, Dir::Minus), 3);
    }
}
