use crate::activity::NodeSet;
use crate::config::{DeadlockMode, NetConfig};
use crate::control::CongestionControl;
use crate::counters::Counters;
use crate::packet::{DeliveredRecord, Flit, PacketId, PacketInfo, PacketStore};
use crate::ring::{DeliveryDrain, DeliveryRing, FlitRings, IdRing};
use crate::routing::RouteTables;
use crate::shard::{
    ApplyCtx, AtomicBits, Job, Pass, PhaseStats, RacySlice, RouteOp, ShardPlan, ShardStage,
    SharedSlice, SwitchOp, WorkerPool,
};
use crate::wheel::TimerWheel;
use faults::{FaultPlan, FaultPlanError};
use kncube::{Dir, NodeId, Torus};

/// Capacity of each per-router Disha deadlock buffer, in flits. Two slots
/// allow the recovery path to stream at full rate despite the 2-cycle hop
/// pipeline.
pub(crate) const DL_DEPTH: usize = 2;

/// Where the packet currently at the front of an input VC (or of the
/// injection interface) is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Assign {
    /// Not yet routed.
    None,
    /// Assigned an output virtual channel on a network port.
    Out { port: u8, vc: u8 },
    /// Headed for the local delivery channel.
    Delivery,
    /// Suspected deadlocked: committed to recovery, waiting for the token.
    AwaitToken,
    /// Draining through the Disha recovery network.
    Recovery,
}

/// Per-node injection interface: the packet currently streaming from the
/// source queue into the router.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InjState {
    pub active: Option<PacketId>,
    pub sent: u16,
    pub assign: Assign,
    pub routed_at: u64,
}

impl InjState {
    pub(crate) fn idle() -> Self {
        InjState {
            active: None,
            sent: 0,
            assign: Assign::None,
            routed_at: 0,
        }
    }
}

/// An in-progress Disha recovery: the token holder and its drain path.
#[derive(Debug, Clone)]
pub(crate) struct RecoveryJob {
    pub packet: PacketId,
    /// Dimension-order path from the transition router (inclusive) to the
    /// destination (inclusive). The backing vector is recycled through
    /// `Network::path_scratch` so steady-state recoveries never allocate.
    pub path: Vec<NodeId>,
    /// Input VC (global index) whose flits transition into the deadlock
    /// network, until the tail has passed.
    pub src_vc: usize,
    /// Whether the tail has left `src_vc` (no more flits will transition).
    pub tail_in: bool,
}

/// The simulated wormhole network: all router state, flat for speed.
///
/// All per-cycle queues live in flat structure-of-arrays arenas allocated
/// once at construction ([`crate::ring`]), and routing decisions come from
/// tables precomputed at construction ([`RouteTables`]), so the steady-state
/// cycle pipeline performs **zero heap allocations** — a counting test
/// allocator enforces this (`tests/zero_alloc.rs`), and DESIGN.md
/// ("Simulator memory layout") documents the invariants.
///
/// Drive it with [`Network::cycle`]; read results with
/// [`Network::drain_deliveries`] and [`Network::counters`].
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    torus: Torus,
    /// Network ports per router (`2n`).
    d: usize,
    /// VCs per physical channel.
    v: usize,
    depth: usize,
    packet_len: u16,
    /// Longest possible recovery drain path (torus diameter + 1), the
    /// capacity floor kept on `path_scratch`.
    pub(crate) max_path: usize,

    /// Edge buffers of every input VC, one flat SoA arena indexed by
    /// `(node * d + port) * v + vc` (ring `r` holds VC `r`'s flits).
    pub(crate) vc_bufs: FlitRings,
    /// Routing assignment of the packet at the front of each input VC.
    pub(crate) vc_assign: Vec<Assign>,
    /// Cycle each VC's current assignment was made (headers move one cycle
    /// later: the paper's 1-cycle routing delay).
    pub(crate) vc_routed_at: Vec<u64>,
    /// Consecutive cycles each VC's front header has been ready but
    /// unrouted (drives Disha's timeout detection).
    pub(crate) vc_blocked: Vec<u64>,
    /// Whether each VC currently has an entry in the recovery token queue.
    pub(crate) vc_queued: Vec<bool>,
    /// Output VC allocation flags, same indexing as the VC arrays (an
    /// output VC of node `u` is the upstream side of a neighbor's input VC).
    pub(crate) out_alloc: Vec<bool>,
    pub(crate) inj: Vec<InjState>,
    /// Per-node source queues of waiting packet ids (ring `node`).
    pub(crate) source_q: IdRing,
    pub(crate) packets: PacketStore,
    /// Whether each packet ever took an escape VC (sticky escape).
    pub(crate) escaped: Vec<bool>,

    /// Per-router Disha deadlock buffers (ring `node`, depth [`DL_DEPTH`];
    /// recovery mode only).
    pub(crate) dl_bufs: FlitRings,
    pub(crate) recovery: Option<RecoveryJob>,
    /// Recycled backing storage for [`RecoveryJob::path`], kept at capacity
    /// `max_path` so granting the token never allocates in steady state.
    pub(crate) path_scratch: Vec<NodeId>,

    /// Precomputed next-hop / productive-port / downstream-index tables.
    pub(crate) tables: RouteTables,

    /// Demand-slotted round-robin cursor of each router's routing arbiter.
    pub(crate) route_rr: Vec<usize>,
    /// Round-robin cursor per output channel (network ports + delivery).
    pub(crate) out_rr: Vec<usize>,

    pub(crate) now: u64,
    pub(crate) counters: Counters,
    /// Incrementally maintained count of completely full input VC buffers.
    pub(crate) full_buffers: u32,
    /// Active-VC worklist: bit `f` of `vc_busy[node]` is set iff input VC
    /// `f = port * v + vc` of `node` holds at least one flit. The route,
    /// switch and starvation stages iterate set bits instead of scanning
    /// every VC, so an idle router costs one integer test per cycle.
    /// (Config validation caps feeders at 64, so a `u64` always fits.)
    pub(crate) vc_busy: Vec<u64>,
    /// Assignment bit-planes, complementary per-node masks over input-VC
    /// feeders (the injection feeder is tracked separately in `inj`):
    /// bit `f` of `vc_unrouted[node]` iff `vc_assign` is `None`/`AwaitToken`
    /// (a routing requester), of `vc_switchable[node]` iff
    /// `Out`/`Delivery` (a switch candidate). `Recovery` is in neither.
    /// Maintained solely by [`Network::set_assign`].
    pub(crate) vc_unrouted: Vec<u64>,
    /// See [`Network::vc_unrouted`].
    pub(crate) vc_switchable: Vec<u64>,
    /// Occupancy bit-planes: bit `f` of `vc_full[node]` iff input VC
    /// `node*d*v + f` is completely full. `full_buffers` (the side-band's
    /// census input) is the popcount sum of these planes, maintained
    /// incrementally; [`Network::full_buffers_at`] popcounts one node.
    pub(crate) vc_full: Vec<u64>,
    /// Node-level activity summaries (top level of the worklist
    /// hierarchy): nodes with any busy input VC...
    pub(crate) busy_nodes: NodeSet,
    /// ...nodes with an active injection...
    pub(crate) inj_nodes: NodeSet,
    /// ...and nodes with a non-empty source queue. All three are derived
    /// state, rebuilt on restore.
    pub(crate) srcq_nodes: NodeSet,
    /// Scratch: nodes whose injection was admitted this cycle (rewritten
    /// by `decide_injection` every cycle, never serialized).
    allow_nodes: NodeSet,
    /// Starvation-deadline timer wheel (disabled in avoidance mode).
    pub(crate) wheel: TimerWheel,
    /// Test-only: route the starvation stage through the reference full
    /// scan instead of the timer wheel (differential testing).
    #[cfg(test)]
    pub(crate) starvation_reference_scan: bool,
    /// Delivered-packet records awaiting [`Network::drain_deliveries`]; a
    /// consumer draining every gather period bounds this at O(period).
    pub(crate) deliveries: DeliveryRing,
    /// FIFO of suspected-deadlocked input VCs awaiting the recovery token
    /// (single ring; `vc_queued` caps it at one entry per VC).
    pub(crate) token_queue: IdRing,
    /// Cycle of the most recent flit delivery (watchdog aid).
    pub(crate) last_delivery_at: u64,
    /// Cycle any flit last moved anywhere — normal hops, injections,
    /// deliveries or recovery-network steps (drives livelock detection).
    pub(crate) last_progress_at: u64,
    /// Scheduled link/hotspot faults (`None` = fault-free network; the hot
    /// path is untouched until a non-quiet plan is installed).
    faults: Option<FaultPlan>,
    /// Opt-in decide/apply/barrier wall-clock split ([`PhaseStats`];
    /// `None` = off, the default — the cycle pipeline then pays one branch
    /// per phase). Runtime-only instrumentation, never serialized.
    phase_stats: Option<Box<PhaseStats>>,
    /// Shard partition + per-shard decision mailboxes for parallel
    /// stepping ([`crate::shard`]). Runtime-only configuration: never
    /// serialized, never fingerprinted — a checkpoint taken at S shards
    /// restores at any S′ by construction.
    pub(crate) plan: ShardPlan,
}

impl Network {
    /// Builds an empty network from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration error, if any.
    pub fn new(cfg: NetConfig) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let torus = cfg.torus().expect("validated");
        let nodes = torus.node_count();
        let d = torus.channels_per_node();
        let v = cfg.vcs;
        let n_vcs = nodes * d * v;
        let max_path = torus.dimensions() * (cfg.radix / 2) + 1;
        let tables = RouteTables::build(&torus, v);
        let wheel = match cfg.deadlock {
            DeadlockMode::Recovery { timeout } => TimerWheel::new(n_vcs, timeout, cfg.hop_latency),
            DeadlockMode::Avoidance => TimerWheel::disabled(),
        };
        // All VCs start unassigned: every input-VC feeder bit is "unrouted".
        let all_feeders = (1u64 << (d * v)) - 1;
        Ok(Network {
            torus,
            d,
            v,
            depth: cfg.buf_depth,
            packet_len: cfg.packet_len as u16,
            max_path,
            vc_bufs: FlitRings::new(n_vcs, cfg.buf_depth),
            vc_assign: vec![Assign::None; n_vcs],
            vc_routed_at: vec![0; n_vcs],
            vc_blocked: vec![0; n_vcs],
            vc_queued: vec![false; n_vcs],
            out_alloc: vec![false; n_vcs],
            inj: vec![InjState::idle(); nodes],
            source_q: IdRing::new(nodes, cfg.source_queue_cap),
            packets: PacketStore::new(),
            escaped: Vec::new(),
            dl_bufs: FlitRings::new(nodes, DL_DEPTH),
            recovery: None,
            path_scratch: Vec::with_capacity(max_path),
            tables,
            route_rr: vec![0; nodes],
            out_rr: vec![0; nodes * (d + 1)],
            now: 0,
            counters: Counters::default(),
            full_buffers: 0,
            vc_busy: vec![0; nodes],
            vc_unrouted: vec![all_feeders; nodes],
            vc_switchable: vec![0; nodes],
            vc_full: vec![0; nodes],
            busy_nodes: NodeSet::new(nodes),
            inj_nodes: NodeSet::new(nodes),
            srcq_nodes: NodeSet::new(nodes),
            allow_nodes: NodeSet::new(nodes),
            wheel,
            #[cfg(test)]
            starvation_reference_scan: false,
            deliveries: DeliveryRing::default(),
            token_queue: IdRing::new(1, n_vcs),
            last_delivery_at: 0,
            last_progress_at: 0,
            faults: None,
            phase_stats: None,
            plan: ShardPlan::new(1, nodes, d * v, d + 1),
            cfg,
        })
    }

    /// Re-partitions the network into `shards` contiguous node ranges for
    /// parallel stepping (clamped to `[1, nodes]`). Results are
    /// bit-identical for every shard count: the parallel decide phases
    /// read only pre-phase state and the barrier applies staged decisions
    /// in canonical ascending-node order regardless of the partition. The
    /// partition is runtime-only configuration — never serialized, so a
    /// checkpoint moves freely between shard counts. Call between cycles.
    pub fn set_shards(&mut self, shards: usize) {
        let nodes = self.torus.node_count();
        let mut plan = ShardPlan::new(shards, nodes, self.d * self.v, self.d + 1);
        plan.rebuild_census(&self.vc_full);
        if plan.shards() > 1 {
            plan.pool = Some(WorkerPool::new(plan.shards()));
        }
        // Replacing the plan drops any previous pool, which shuts down and
        // joins its workers — no worker thread ever outlives the partition
        // (or the network) it was spawned for.
        self.plan = plan;
    }

    /// The current shard count (1 unless [`Network::set_shards`] raised it).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Enables (with fresh zeroed totals) or disables the per-phase
    /// wall-clock split. Informational instrumentation for benchmarks —
    /// it never affects simulation results.
    pub fn set_phase_stats(&mut self, enabled: bool) {
        self.phase_stats = enabled.then(|| Box::new(PhaseStats::default()));
    }

    /// The accumulated phase split, if enabled.
    #[must_use]
    pub fn phase_stats(&self) -> Option<PhaseStats> {
        self.phase_stats.as_deref().copied()
    }

    /// Installs the data-network portion of a fault plan: scheduled link
    /// stalls and node hotspots. A plan with no network faults leaves the
    /// fault-free fast path untouched.
    ///
    /// # Errors
    ///
    /// Returns the plan's first constraint violation against this network's
    /// shape (node range, port range, empty windows, fault rates).
    pub fn install_faults(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate(self.torus.node_count(), self.d)?;
        self.faults = (!plan.net_is_quiet()).then_some(plan);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read-side API (used by congestion controllers and experiments)
    // ------------------------------------------------------------------

    /// The network configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The underlying torus.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The current cycle (number of completed [`Network::cycle`] calls).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Network-wide count of *completely full* input VC buffers — the
    /// congestion metric the paper's side-band distributes. Maintained as
    /// the running popcount of the per-node occupancy bit-planes
    /// ([`Network::full_buffer_planes`]), so reading it is O(1).
    #[must_use]
    pub fn full_buffer_count(&self) -> u32 {
        self.full_buffers
    }

    /// Count of completely full input VC buffers at `node` — the per-router
    /// quantized census a side-band gather tree sums. One popcount.
    #[must_use]
    pub fn full_buffers_at(&self, node: NodeId) -> u32 {
        self.vc_full[node].count_ones()
    }

    /// Per-node full-buffer occupancy bit-planes: bit `port*vcs + vc` of
    /// word `node` is set iff that input VC buffer is completely full.
    /// `full_buffer_count()` equals the popcount sum over these words.
    #[must_use]
    pub fn full_buffer_planes(&self) -> &[u64] {
        &self.vc_full
    }

    /// Whether the network holds no work at all: no live packets (hence no
    /// buffered flits, active injections or queued sources), no pending
    /// recovery suspects and no active recovery drain. A quiescent network
    /// stepped with a silent source and a passive controller is a no-op
    /// except for `now` advancing — the precondition
    /// [`Network::fast_forward`] exploits.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.packets.live() == 0 && self.token_queue.is_empty(0) && self.recovery.is_none()
    }

    /// Jumps `now` forward to `to` without simulating the intervening
    /// cycles. Callers must ensure the skip is observationally identical to
    /// stepping: the network is [`Network::quiescent`], every skipped
    /// source poll would have produced nothing (and had no side effects),
    /// and the controller needed no `on_cycle` call in the window. Stale
    /// timer-wheel bits from before the jump are lazily discarded by later
    /// fires (their deadlines are in the past).
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past or the network is not quiescent.
    pub fn fast_forward(&mut self, to: u64) {
        assert!(to >= self.now, "fast_forward into the past");
        assert!(self.quiescent(), "fast_forward on a non-quiescent network");
        self.now = to;
    }

    /// Total number of VC buffers (the denominator for threshold
    /// percentages; 3072 for the paper's network).
    #[must_use]
    pub fn total_vc_buffers(&self) -> u32 {
        self.vc_assign.len() as u32
    }

    /// Cumulative flits delivered since the start of the simulation.
    #[must_use]
    pub fn delivered_flits_cum(&self) -> u64 {
        self.counters.delivered_flits
    }

    /// Whether the output VC `(dim, dir, vc)` of `node` is currently
    /// allocated to a packet (used by the ALO baseline's "free VC" test).
    #[must_use]
    pub fn output_vc_allocated(&self, node: NodeId, dim: usize, dir: Dir, vc: usize) -> bool {
        self.out_alloc[self.vc_idx(node, port_of(dim, dir), vc)]
    }

    /// Number of packets waiting in `node`'s source queue.
    #[must_use]
    pub fn source_queue_len(&self, node: NodeId) -> usize {
        self.source_q.len(node)
    }

    /// Number of packets generated but not yet fully delivered.
    #[must_use]
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// Takes the records of packets delivered since the last drain.
    ///
    /// Draining regularly (the simulation driver drains every cycle) bounds
    /// the undrained backlog — and thus this queue's memory — at the
    /// between-drain high-water mark rather than the whole run's deliveries.
    pub fn drain_deliveries(&mut self) -> DeliveryDrain<'_> {
        self.deliveries.drain()
    }

    /// Whether the network has had traffic in flight but delivered nothing
    /// for at least `window` cycles — a watchdog for tests (a correctly
    /// functioning configuration always makes progress).
    #[must_use]
    pub fn progress_stalled(&self, window: u64) -> bool {
        self.packets.live() > 0 && self.now.saturating_sub(self.last_delivery_at) >= window
    }

    /// Cycle any flit of any packet last moved — a normal hop, an
    /// injection, a delivery or a recovery-network step. The livelock
    /// watchdog's progress marker.
    #[must_use]
    pub fn last_progress_at(&self) -> u64 {
        self.last_progress_at
    }

    /// Cycle of the most recent flit delivery.
    #[must_use]
    pub fn last_delivery_at(&self) -> u64 {
        self.last_delivery_at
    }

    /// Whether the network is wedged: traffic is in flight but *no flit has
    /// moved anywhere* — not even through the recovery network — for at
    /// least `window` cycles. A correctly configured network always keeps
    /// some flit moving, so this only trips on genuine livelock (e.g. every
    /// delivery channel stalled by a permanent hotspot fault).
    #[must_use]
    pub fn livelocked(&self, window: u64) -> bool {
        self.packets.live() > 0 && self.now.saturating_sub(self.last_progress_at) >= window
    }

    /// Number of suspected-deadlocked VCs waiting for the recovery token.
    #[must_use]
    pub fn token_queue_len(&self) -> usize {
        self.token_queue.len(0)
    }

    /// Whether a Disha recovery drain is currently holding the token.
    #[must_use]
    pub fn recovery_active(&self) -> bool {
        self.recovery.is_some()
    }

    // ------------------------------------------------------------------
    // Index helpers
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn vc_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        (node * self.d + port) * self.v + vc
    }

    /// The downstream input VC fed by output VC `(port, vc)` of `node`
    /// (precomputed; see [`RouteTables`]).
    #[inline]
    pub(crate) fn downstream_idx(&self, node: NodeId, port: usize, vc: usize) -> usize {
        self.tables.downstream(self.vc_idx(node, port, vc))
    }

    #[inline]
    fn feeders_per_node(&self) -> usize {
        self.d * self.v + 1 // input VCs + injection interface
    }

    /// Marks input VC `idx` (global index) non-empty in the worklist (both
    /// levels) and updates its full-buffer occupancy bit. Call after
    /// pushing a flit into its buffer.
    #[inline]
    pub(crate) fn note_vc_filled(&mut self, idx: usize) {
        let fpn = self.d * self.v;
        let (node, bit) = (idx / fpn, 1u64 << (idx % fpn));
        self.vc_busy[node] |= bit;
        self.busy_nodes.insert(node);
        let full = u64::from(self.vc_bufs.len(idx) >= self.depth);
        self.vc_full[node] |= full << (idx % fpn);
        self.full_buffers += full as u32;
        self.plan.full_count[self.plan.node_shard[node] as usize] += full as u32;
    }

    /// Clears input VC `idx` from the worklists if its buffer is now empty
    /// and updates its full-buffer occupancy bit. Call after popping a
    /// flit from it.
    #[inline]
    pub(crate) fn note_vc_popped(&mut self, idx: usize) {
        let empty = self.vc_bufs.is_empty(idx);
        let fpn = self.d * self.v;
        let (node, f) = (idx / fpn, idx % fpn);
        self.vc_busy[node] &= !(u64::from(empty) << f);
        if self.vc_busy[node] == 0 {
            self.busy_nodes.remove(node);
        }
        // A pop always leaves the buffer below capacity: clear the
        // occupancy bit and debit the census by what it previously held.
        let was_full = self.vc_full[node] >> f & 1;
        self.vc_full[node] &= !(1u64 << f);
        self.full_buffers -= was_full as u32;
        self.plan.full_count[self.plan.node_shard[node] as usize] -= was_full as u32;
    }

    /// Sets `vc_assign[idx]` while keeping the assignment bit-planes
    /// (`vc_unrouted`/`vc_switchable`) in sync. Every assignment write in
    /// the pipeline goes through here.
    #[inline]
    pub(crate) fn set_assign(&mut self, idx: usize, a: Assign) {
        self.vc_assign[idx] = a;
        let fpn = self.d * self.v;
        let (node, bit) = (idx / fpn, 1u64 << (idx % fpn));
        match a {
            Assign::None | Assign::AwaitToken => {
                self.vc_unrouted[node] |= bit;
                self.vc_switchable[node] &= !bit;
            }
            Assign::Out { .. } | Assign::Delivery => {
                self.vc_unrouted[node] &= !bit;
                self.vc_switchable[node] |= bit;
            }
            Assign::Recovery => {
                self.vc_unrouted[node] &= !bit;
                self.vc_switchable[node] &= !bit;
            }
        }
    }

    /// Rebuilds every derived structure — the node summaries, the
    /// assignment and occupancy bit-planes — from the authoritative state
    /// they summarize. Called after a checkpoint restore, which serializes
    /// only the ground truth (buffers, assignments, queues).
    pub(crate) fn rebuild_derived(&mut self) {
        let fpn = self.d * self.v;
        self.busy_nodes.clear();
        self.inj_nodes.clear();
        self.srcq_nodes.clear();
        for node in 0..self.vc_busy.len() {
            if self.vc_busy[node] != 0 {
                self.busy_nodes.insert(node);
            }
            if self.inj[node].active.is_some() {
                self.inj_nodes.insert(node);
            }
            if !self.source_q.is_empty(node) {
                self.srcq_nodes.insert(node);
            }
            let (mut unrouted, mut switchable, mut full) = (0u64, 0u64, 0u64);
            for f in 0..fpn {
                let idx = node * fpn + f;
                match self.vc_assign[idx] {
                    Assign::None | Assign::AwaitToken => unrouted |= 1u64 << f,
                    Assign::Out { .. } | Assign::Delivery => switchable |= 1u64 << f,
                    Assign::Recovery => {}
                }
                full |= u64::from(self.vc_bufs.len(idx) >= self.depth) << f;
            }
            self.vc_unrouted[node] = unrouted;
            self.vc_switchable[node] = switchable;
            self.vc_full[node] = full;
        }
        self.plan.rebuild_census(&self.vc_full);
    }

    /// Debug-only audit that every derived structure — both worklist
    /// levels, the occupancy and assignment bit-planes, and the census —
    /// agrees with the ground truth exactly.
    #[cfg(debug_assertions)]
    fn debug_check_worklist(&self) {
        let fpn = self.d * self.v;
        let mut census = 0u32;
        for (node, &mask) in self.vc_busy.iter().enumerate() {
            for f in 0..fpn {
                let idx = node * fpn + f;
                let busy = !self.vc_bufs.is_empty(idx);
                debug_assert_eq!(
                    mask >> f & 1 == 1,
                    busy,
                    "worklist out of sync at node {node} feeder {f}"
                );
                debug_assert_eq!(
                    self.vc_full[node] >> f & 1 == 1,
                    self.vc_bufs.len(idx) >= self.depth,
                    "occupancy plane out of sync at node {node} feeder {f}"
                );
                let (unrouted, switchable) = match self.vc_assign[idx] {
                    Assign::None | Assign::AwaitToken => (true, false),
                    Assign::Out { .. } | Assign::Delivery => (false, true),
                    Assign::Recovery => (false, false),
                };
                debug_assert_eq!(
                    self.vc_unrouted[node] >> f & 1 == 1,
                    unrouted,
                    "unrouted plane out of sync at node {node} feeder {f}"
                );
                debug_assert_eq!(
                    self.vc_switchable[node] >> f & 1 == 1,
                    switchable,
                    "switchable plane out of sync at node {node} feeder {f}"
                );
            }
            census += self.vc_full[node].count_ones();
            debug_assert_eq!(
                self.busy_nodes.contains(node),
                mask != 0,
                "busy summary out of sync at node {node}"
            );
            debug_assert_eq!(
                self.inj_nodes.contains(node),
                self.inj[node].active.is_some(),
                "injection summary out of sync at node {node}"
            );
            debug_assert_eq!(
                self.srcq_nodes.contains(node),
                !self.source_q.is_empty(node),
                "source-queue summary out of sync at node {node}"
            );
        }
        debug_assert_eq!(census, self.full_buffers, "census out of sync");
        for s in 0..self.plan.shards() {
            let range = &self.vc_full[self.plan.bounds[s]..self.plan.bounds[s + 1]];
            debug_assert_eq!(
                range.iter().map(|w| w.count_ones()).sum::<u32>(),
                self.plan.full_count[s],
                "shard {s} census out of sync"
            );
            let stage = &self.plan.stages[s];
            debug_assert_eq!(
                stage.staged_total, stage.applied_total,
                "shard {s} mailbox out of sync"
            );
        }
    }

    // ------------------------------------------------------------------
    // The cycle pipeline
    // ------------------------------------------------------------------

    /// Advances the network by one cycle.
    ///
    /// `source(now, node)` is polled once per node and returns the
    /// destination of a newly generated packet, if any; `ctl` is the
    /// congestion-control policy (use [`crate::NoControl`] for the paper's
    /// `Base`).
    pub fn cycle(
        &mut self,
        source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>,
        ctl: &mut dyn CongestionControl,
    ) {
        let now = self.now;
        self.generate(now, source);
        ctl.on_cycle(now, self);
        self.decide_injection(now, ctl);
        self.route_phase(now);
        if let DeadlockMode::Recovery { timeout } = self.cfg.deadlock {
            self.starvation_dispatch(now, timeout);
            self.recovery_stage(now);
        }
        self.switch_phase(now);
        #[cfg(debug_assertions)]
        self.debug_check_worklist();
        self.now = now + 1;
    }

    /// Runs `cycles` cycles (convenience wrapper over [`Network::cycle`]).
    pub fn run(
        &mut self,
        cycles: u64,
        source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>,
        ctl: &mut dyn CongestionControl,
    ) {
        for _ in 0..cycles {
            self.cycle(source, ctl);
        }
    }

    fn generate(&mut self, now: u64, source: &mut dyn FnMut(u64, NodeId) -> Option<NodeId>) {
        let nodes = self.torus.node_count();
        for node in 0..nodes {
            let Some(dst) = source(now, node) else {
                continue;
            };
            assert!(
                dst < nodes,
                "traffic source produced destination {dst} out of range"
            );
            if self.source_q.is_full(node) {
                self.counters.refused_generations += 1;
                continue;
            }
            let id = self.packets.alloc(PacketInfo {
                src: node,
                dst,
                generated_at: now,
                injected_at: u64::MAX,
                len: self.packet_len,
                delivered_flits: 0,
                last_move: now,
            });
            if self.escaped.len() <= id as usize {
                self.escaped.resize(id as usize + 1, false);
            }
            self.escaped[id as usize] = false;
            self.source_q.push_back(node, id);
            self.srcq_nodes.insert(node);
            self.counters.generated_packets += 1;
        }
    }

    fn decide_injection(&mut self, now: u64, ctl: &mut dyn CongestionControl) {
        self.allow_nodes.clear();
        // Only consult the gate where a new packet could actually start: a
        // non-empty source queue behind an idle injection interface.
        for w in 0..self.srcq_nodes.word_count() {
            let mut word = self.srcq_nodes.word(w) & !self.inj_nodes.word(w);
            while word != 0 {
                let node = (w << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                self.counters.stage_inject_visits += 1;
                let dst = self.packets.get(self.source_q.front(node)).dst;
                let ok = ctl.allow_injection(now, node, dst, self);
                self.counters.throttled_injections += u64::from(!ok);
                if ok {
                    self.allow_nodes.insert(node);
                }
            }
        }
    }

    /// Routing + VC allocation: each router's central arbiter routes at
    /// most one header per cycle, demand-slotted round-robin over
    /// requesters. Runs as a parallel decide over the shard partition
    /// followed by a sequential apply barrier (see [`crate::shard`]); with
    /// one shard the decide runs inline on the caller's thread — the same
    /// staged code path, so every shard count computes the same function.
    fn route_phase(&mut self, now: u64) {
        if self.plan.shards() == 1 {
            let mut stages = std::mem::take(&mut self.plan.stages);
            let t0 = self.phase_stats.as_ref().map(|_| std::time::Instant::now());
            self.route_decide(
                now,
                self.plan.bounds[0],
                self.plan.bounds[1],
                &mut stages[0],
            );
            let t1 = t0.map(|_| std::time::Instant::now());
            self.apply_route_ops(now, &mut stages[0]);
            if let (Some(t0), Some(t1)) = (t0, t1) {
                let st = self.phase_stats.as_mut().expect("timed implies enabled");
                st.decide_ns += (t1 - t0).as_nanos() as u64;
                st.apply_ns += t1.elapsed().as_nanos() as u64;
            }
            self.plan.stages = stages;
        } else if !self.idle_route() {
            self.parallel_phase(now, Pass::Route);
        }
    }

    /// Whether no router has anything to arbitrate (skips the thread
    /// fan-out on idle cycles; one OR per 64 nodes).
    fn idle_route(&self) -> bool {
        (0..self.busy_nodes.word_count())
            .all(|w| (self.busy_nodes.word(w) | self.allow_nodes.word(w)) == 0)
    }

    /// See [`Network::idle_route`], for the switch phase.
    fn idle_switch(&self) -> bool {
        (0..self.busy_nodes.word_count())
            .all(|w| (self.busy_nodes.word(w) | self.inj_nodes.word(w)) == 0)
    }

    /// The route stage's read-only decide: arbitrates every router in
    /// `lo..hi` over *pre-phase* state and stages the decisions. Safe to
    /// run concurrently with other shards' decides: every input it reads
    /// (`out_alloc` claims, `route_rr`, `vc_blocked`, buffer fronts,
    /// `escaped`) is written only by the staged ops of the node that owns
    /// it, and those writes are deferred to the barrier — so the decision
    /// for each node is exactly the sequential reference's.
    pub(crate) fn route_decide(&self, now: u64, lo: usize, hi: usize, stage: &mut ShardStage) {
        let fpn = self.feeders_per_node();
        let inj_feeder = self.d * self.v;
        let timeout = match self.cfg.deadlock {
            DeadlockMode::Recovery { timeout } => timeout,
            DeadlockMode::Avoidance => u64::MAX,
        };
        // With one shard nothing is classified (`plan.stages` is taken out
        // during a parallel pass, so the shard count comes from `bounds`).
        let split = self.plan.bounds.len() > 2;
        let staged_before = stage.route_ops.len();
        let tail_before = stage.route_tail.len();
        let mut requests: [u16; 64] = [0; 64];
        // Only routers with buffered flits or an admitted injection can
        // have anything to arbitrate.
        for w in (lo >> 6)..hi.div_ceil(64) {
            let mut nword =
                (self.busy_nodes.word(w) | self.allow_nodes.word(w)) & range_word_mask(w, lo, hi);
            while nword != 0 {
                let node = (w << 6) | nword.trailing_zeros() as usize;
                nword &= nword - 1;
                // Requesters are busy VCs still awaiting an assignment; the
                // bit-plane intersection prunes already-routed worms
                // without touching their per-VC state.
                let cand = self.vc_busy[node] & self.vc_unrouted[node];
                let allow = self.allow_nodes.contains(node);
                if cand == 0 && !allow {
                    continue;
                }
                stage.route_visits += 1;
                // Gather routing requests from occupied input VCs
                // (ascending feeder order, same as a full scan).
                let mut nreq = 0usize;
                let base = self.vc_idx(node, 0, 0);
                let mut mask = cand;
                while mask != 0 {
                    let f = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let idx = base + f;
                    // Unrouted headers request routing; suspected
                    // (token-queued) headers keep requesting too — only
                    // capturing the token commits a packet to the recovery
                    // path, so a transiently congested packet resumes
                    // normal routing when a channel frees. Truly
                    // deadlocked packets never see a free channel.
                    if self.vc_bufs.front_idx(idx) == 0 && self.vc_bufs.front_ready_at(idx) <= now {
                        requests[nreq] = f as u16;
                        nreq += 1;
                    }
                }
                if allow {
                    requests[nreq] = inj_feeder as u16;
                    nreq += 1;
                }
                if nreq == 0 {
                    continue;
                }
                // Demand-slotted RR: pick the first requester at or after
                // the cursor position.
                let cursor = self.route_rr[node] % fpn;
                let winner = *requests[..nreq]
                    .iter()
                    .find(|&&f| usize::from(f) >= cursor)
                    .unwrap_or(&requests[0]);
                let winner = usize::from(winner);
                stage.route_ops.push(RouteOp::Rr {
                    node: node as u32,
                    cursor: (winner + 1) as u8,
                });

                // Routing decision for the winner.
                let pid = if winner == inj_feeder {
                    self.source_q.front(node)
                } else {
                    self.vc_bufs.front_packet(base + winner)
                };
                let dst = self.packets.get(pid).dst;
                let assign = if dst == node {
                    Some(Assign::Delivery)
                } else {
                    self.choose_output(node, dst, pid)
                };
                let routed = assign.is_some();
                if let Some(assign) = assign {
                    stage.route_ops.push(RouteOp::Win {
                        node: node as u32,
                        feeder: winner as u8,
                        assign,
                    });
                }

                // Blocked-cycle accounting for every input-VC requester
                // that did not end up routed this cycle (drives Disha
                // detection).
                for &f in &requests[..nreq] {
                    let f = usize::from(f);
                    if f == inj_feeder {
                        continue; // queued packets hold no resources: not deadlockable
                    }
                    let idx = base + f;
                    if routed && f == winner {
                        // The winner's blocked-counter reset is part of
                        // the `Win` apply.
                    } else if self.vc_assign[idx] == Assign::None {
                        // Disha suspicion: the header has starved for
                        // `timeout` cycles AND no flit of the whole worm
                        // has moved for `timeout` cycles (transient
                        // contention keeps body flits crawling and does
                        // not trip this). A suspected packet queues for
                        // the recovery token but keeps retrying normal
                        // routing until the token is captured.
                        if self.vc_blocked[idx] + 1 >= timeout {
                            let pid = self.vc_bufs.front_packet(idx);
                            if now.saturating_sub(self.packets.get(pid).last_move) >= timeout {
                                // Token-queue commits are globally
                                // FIFO-ordered: a boundary op when sharded.
                                let op = RouteOp::Suspect { idx: idx as u32 };
                                if split {
                                    stage.route_tail.push(op);
                                } else {
                                    stage.route_ops.push(op);
                                }
                                continue;
                            }
                        }
                        stage.route_ops.push(RouteOp::Blocked { idx: idx as u32 });
                    }
                }
            }
        }
        stage.staged_total += (stage.route_ops.len() - staged_before) as u64
            + (stage.route_tail.len() - tail_before) as u64;
    }

    /// Applies one shard's staged route ops in staging (ascending-node)
    /// order, and folds its counter deltas into the global counters.
    fn apply_route_ops(&mut self, now: u64, stage: &mut ShardStage) {
        let inj_feeder = self.d * self.v;
        self.counters.stage_route_visits += stage.route_visits;
        stage.route_visits = 0;
        stage.applied_total += stage.route_ops.len() as u64;
        for i in 0..stage.route_ops.len() {
            match stage.route_ops[i] {
                RouteOp::Rr { node, cursor } => {
                    self.route_rr[node as usize] = usize::from(cursor);
                }
                RouteOp::Win {
                    node,
                    feeder,
                    assign,
                } => {
                    self.apply_route(now, node as usize, usize::from(feeder), assign, inj_feeder);
                }
                RouteOp::Blocked { idx } => self.vc_blocked[idx as usize] += 1,
                RouteOp::Suspect { idx } => self.commit_suspect(idx as usize),
            }
        }
        stage.route_ops.clear();
    }

    /// Commits a suspected-deadlocked VC to the recovery token queue (the
    /// apply of a staged [`RouteOp::Suspect`]; shared between the inline
    /// single-shard apply and the sharded barrier's sequential tail).
    fn commit_suspect(&mut self, idx: usize) {
        self.set_assign(idx, Assign::AwaitToken);
        self.vc_blocked[idx] = 0;
        if !self.vc_queued[idx] {
            self.vc_queued[idx] = true;
            self.token_queue.push_back(0, idx as u32);
        }
        self.counters.recovery_timeouts += 1;
    }

    /// Starved-head detection: timer wheel in production; tests may switch
    /// a network to the reference full scan for differential checking.
    #[cfg(not(test))]
    #[inline]
    fn starvation_dispatch(&mut self, now: u64, timeout: u64) {
        self.starvation_stage(now, timeout);
    }

    /// See the `#[cfg(not(test))]` twin.
    #[cfg(test)]
    fn starvation_dispatch(&mut self, now: u64, timeout: u64) {
        if self.starvation_reference_scan {
            self.detect_starved_heads_scan(now, timeout);
        } else {
            self.starvation_stage(now, timeout);
        }
    }

    /// Detects deadlocked worms whose header is *routed* but has been
    /// credit-starved at the front of its buffer for `timeout` cycles with
    /// the whole worm inactive. (The routing stage only watches unrouted
    /// headers; a cycle can also form among headers that already hold an
    /// output VC and wait forever for buffer space.) Such a header has sent
    /// nothing on its allocated VC yet — the header is still here — so the
    /// allocation is released and the worm committed to the token queue.
    ///
    /// Fires the due bucket of the deadline timer wheel ([`TimerWheel`])
    /// instead of scanning every busy VC. Enrollment happens where the
    /// only trip-enabling transition happens — [`Self::apply_route`]
    /// assigning an output VC — and a due entry that no longer satisfies
    /// the predicate is either dropped (header gone: any successor
    /// re-enrolls through routing) or re-parked at the earliest cycle the
    /// predicate could next hold. `tests/` prove this wheel matches the
    /// reference scan ([`Self::detect_starved_heads_scan`])
    /// decision-for-decision under random traffic.
    fn starvation_stage(&mut self, now: u64, timeout: u64) {
        if !now.is_multiple_of(timeout) {
            return;
        }
        let slot = self.wheel.slot_of(now);
        for w in 0..self.wheel.word_count() {
            let mut word = self.wheel.slot_word(slot, w);
            if word == 0 {
                continue;
            }
            // Ascending bit order == ascending VC index == the reference
            // scan's order, so recovery-token FIFO order is preserved.
            let mut keep = 0u64;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                let idx = (w << 6) | b;
                let d = self.wheel.deadline(idx);
                if d == now {
                    self.wheel.clear_deadline(idx);
                    self.counters.stage_starvation_checks += 1;
                    self.recheck_starved_head(now, timeout, idx);
                } else if d > now && self.wheel.slot_of(d) == slot {
                    // Live entry parked one wheel revolution ahead.
                    keep |= 1u64 << b;
                }
                // Anything else is a stale tag: drop the bit.
            }
            self.wheel.set_slot_word(slot, w, keep);
        }
    }

    /// Evaluates one due wheel entry against the starvation predicate:
    /// trip (commit to the token queue), drop (the enrolled header is
    /// gone), or re-park at the next cycle the predicate could hold.
    fn recheck_starved_head(&mut self, now: u64, timeout: u64, idx: usize) {
        let Assign::Out { port, vc: ovc } = self.vc_assign[idx] else {
            return; // header delivered/recovered/demoted: re-enrolls via apply_route
        };
        if self.vc_bufs.is_empty(idx) || self.vc_bufs.front_idx(idx) != 0 {
            return; // header already departed on its output VC
        }
        let ready = self.vc_bufs.front_ready_at(idx);
        let pid = self.vc_bufs.front_packet(idx);
        let last_move = self.packets.get(pid).last_move;
        if ready <= now && now.saturating_sub(last_move) >= timeout {
            let node = idx / (self.d * self.v);
            let oidx = self.vc_idx(node, usize::from(port), usize::from(ovc));
            debug_assert!(self.out_alloc[oidx]);
            self.out_alloc[oidx] = false;
            self.set_assign(idx, Assign::AwaitToken);
            self.vc_blocked[idx] = 0;
            if !self.vc_queued[idx] {
                self.vc_queued[idx] = true;
                self.token_queue.push_back(0, idx as u32);
            }
            self.counters.recovery_timeouts += 1;
        } else {
            // The worm progressed (or the header is in flight): the
            // predicate cannot hold before both the staleness window
            // re-elapses and the header is ready. Both bounds land within
            // the wheel's horizon (see `TimerWheel::new`).
            let d = (last_move + timeout)
                .next_multiple_of(timeout)
                .max(ready.next_multiple_of(timeout));
            self.wheel.schedule(idx, d);
        }
    }

    /// The reference full-scan implementation the timer wheel replaced,
    /// kept verbatim for differential testing: walks every busy VC each
    /// scan cycle and applies the same predicate and actions.
    #[cfg(test)]
    pub(crate) fn detect_starved_heads_scan(&mut self, now: u64, timeout: u64) {
        if timeout == 0 || !now.is_multiple_of(timeout) {
            return;
        }
        let fpn = self.d * self.v;
        for node in 0..self.torus.node_count() {
            let mut mask = self.vc_busy[node];
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.check_starved_head(now, timeout, node * fpn + f);
            }
        }
    }

    /// One VC's starved-head check (reference-scan path only; see
    /// [`Self::detect_starved_heads_scan`]).
    #[cfg(test)]
    fn check_starved_head(&mut self, now: u64, timeout: u64, idx: usize) {
        let Assign::Out { port, vc: ovc } = self.vc_assign[idx] else {
            return;
        };
        if self.vc_bufs.is_empty(idx) {
            return;
        }
        if self.vc_bufs.front_idx(idx) != 0 || self.vc_bufs.front_ready_at(idx) > now {
            return;
        }
        let pid = self.vc_bufs.front_packet(idx);
        if now.saturating_sub(self.packets.get(pid).last_move) < timeout {
            return;
        }
        let node = idx / (self.d * self.v);
        let oidx = self.vc_idx(node, usize::from(port), usize::from(ovc));
        debug_assert!(self.out_alloc[oidx]);
        self.out_alloc[oidx] = false;
        self.set_assign(idx, Assign::AwaitToken);
        self.vc_blocked[idx] = 0;
        if !self.vc_queued[idx] {
            self.vc_queued[idx] = true;
            self.token_queue.push_back(0, idx as u32);
        }
        self.counters.recovery_timeouts += 1;
    }

    /// Performs the allocation tail of a staged routing win: output-VC
    /// claim, escape marking, and the injection start or VC assignment +
    /// timer-wheel enrollment. The decision itself (`assign`) was made by
    /// [`Network::route_decide`] over pre-phase state.
    fn apply_route(
        &mut self,
        now: u64,
        node: NodeId,
        feeder: usize,
        assign: Assign,
        inj_feeder: usize,
    ) {
        let (pid, is_inj) = if feeder == inj_feeder {
            (self.source_q.front(node), true)
        } else {
            let idx = self.vc_idx(node, 0, 0) + feeder;
            (self.vc_bufs.front_packet(idx), false)
        };
        if let Assign::Out { port, vc } = assign {
            let oidx = self.vc_idx(node, usize::from(port), usize::from(vc));
            debug_assert!(!self.out_alloc[oidx], "allocating an owned VC");
            self.out_alloc[oidx] = true;
            if usize::from(vc) < self.cfg.escape_vcs() {
                self.escaped[pid as usize] = true;
                self.counters.escape_allocations += 1;
            }
        }
        if is_inj {
            let id = self.source_q.pop_front(node);
            debug_assert_eq!(id, pid);
            if self.source_q.is_empty(node) {
                self.srcq_nodes.remove(node);
            }
            self.inj_nodes.insert(node);
            self.inj[node] = InjState {
                active: Some(id),
                sent: 0,
                assign,
                routed_at: now,
            };
        } else {
            let idx = self.vc_idx(node, 0, 0) + feeder;
            self.set_assign(idx, assign);
            self.vc_routed_at[idx] = now;
            self.vc_blocked[idx] = 0;
            // An input VC granted an output VC is the only thing the
            // starvation stage can ever trip on: enroll it in the timer
            // wheel at the earliest scan cycle the predicate could hold
            // (the worm must sit motionless for a full timeout first).
            if matches!(assign, Assign::Out { .. }) {
                if let DeadlockMode::Recovery { timeout } = self.cfg.deadlock {
                    let last_move = self.packets.get(pid).last_move;
                    let d = (last_move + timeout)
                        .next_multiple_of(timeout)
                        .max(now.next_multiple_of(timeout));
                    self.wheel.schedule(idx, d);
                }
            }
        }
    }

    /// Switch + link traversal: each output channel (network ports and the
    /// delivery channel) moves at most one flit per cycle, round-robin over
    /// the input VCs assigned to it. Parallel decide over the shard
    /// partition, then a sequential apply barrier moving the flits in
    /// ascending-node order — see [`Network::route_phase`].
    fn switch_phase(&mut self, now: u64) {
        if self.plan.shards() == 1 {
            let mut stages = std::mem::take(&mut self.plan.stages);
            let t0 = self.phase_stats.as_ref().map(|_| std::time::Instant::now());
            self.switch_decide(
                now,
                self.plan.bounds[0],
                self.plan.bounds[1],
                &mut stages[0],
            );
            let t1 = t0.map(|_| std::time::Instant::now());
            self.apply_switch_ops(now, &mut stages[0]);
            if let (Some(t0), Some(t1)) = (t0, t1) {
                let st = self.phase_stats.as_mut().expect("timed implies enabled");
                st.decide_ns += (t1 - t0).as_nanos() as u64;
                st.apply_ns += t1.elapsed().as_nanos() as u64;
            }
            self.plan.stages = stages;
        } else if !self.idle_switch() {
            self.parallel_phase(now, Pass::Switch);
        }
    }

    /// Executes one sharded pass — parallel decide, parallel shard-local
    /// apply, then the sequential boundary tail — through the persistent
    /// worker pool. Per-cycle cost beyond the sequential path is a handful
    /// of atomic ticket operations; no threads are spawned here (see
    /// [`crate::shard::WorkerPool`]).
    fn parallel_phase(&mut self, now: u64, kind: Pass) {
        let mut stages = std::mem::take(&mut self.plan.stages);
        let mut pool = self
            .plan
            .pool
            .take()
            .expect("sharded network has a worker pool");
        let mut stats = self.phase_stats.take();
        let shards = stages.len();
        // Every pointer the participants use — the shared decide reads and
        // the shard-local apply views — derives from this one raw borrow,
        // so none invalidates another; the pool's decide→apply barrier
        // keeps reads and writes of any location apart in time.
        let net: *mut Network = self;
        let job = Job {
            kind,
            net: net.cast_const(),
            // SAFETY: `net` is this exclusive borrow; the views it hands
            // out are used only during `pool.run`, which this thread
            // outwaits.
            ctx: unsafe { (*net).apply_ctx() },
            stages: stages.as_mut_ptr(),
            shards,
            now,
        };
        pool.run(job, stats.as_deref_mut());
        // Sequential barrier tail in ascending shard (= ascending node)
        // order: fold each shard's counter deltas, then apply its boundary
        // ops — which reproduces the reference's global ascending-node
        // order for the FIFO-ordered structures at any shard count.
        let t0 = stats.as_ref().map(|_| std::time::Instant::now());
        for (s, stage) in stages.iter_mut().enumerate() {
            match kind {
                Pass::Route => self.fold_route_stage(stage),
                Pass::Switch => self.fold_switch_stage(now, s, stage),
            }
        }
        if let (Some(st), Some(t0)) = (stats.as_deref_mut(), t0) {
            st.apply_ns += t0.elapsed().as_nanos() as u64;
        }
        self.phase_stats = stats;
        self.plan.stages = stages;
        self.plan.pool = Some(pool);
    }

    /// Builds the raw apply views over this network's state (valid until
    /// any of the underlying storage moves or reallocates — i.e. for the
    /// current pass only; `generate` may grow `packets`/`escaped` between
    /// cycles, so the context is rebuilt per dispatch).
    fn apply_ctx(&mut self) -> ApplyCtx {
        let recovery_timeout = match self.cfg.deadlock {
            DeadlockMode::Recovery { timeout } => timeout,
            DeadlockMode::Avoidance => 0,
        };
        ApplyCtx {
            d: self.d,
            v: self.v,
            fpn: self.d * self.v,
            nports: self.d + 1,
            depth: self.depth,
            escape_vcs: self.cfg.escape_vcs(),
            hop_latency: self.cfg.hop_latency,
            recovery_timeout,
            route_rr: RacySlice::new(&mut self.route_rr),
            out_rr: RacySlice::new(&mut self.out_rr),
            vc_assign: RacySlice::new(&mut self.vc_assign),
            vc_routed_at: RacySlice::new(&mut self.vc_routed_at),
            vc_blocked: RacySlice::new(&mut self.vc_blocked),
            out_alloc: RacySlice::new(&mut self.out_alloc),
            inj: RacySlice::new(&mut self.inj),
            escaped: RacySlice::new(&mut self.escaped),
            vc_busy: RacySlice::new(&mut self.vc_busy),
            vc_unrouted: RacySlice::new(&mut self.vc_unrouted),
            vc_switchable: RacySlice::new(&mut self.vc_switchable),
            vc_full: RacySlice::new(&mut self.vc_full),
            busy_nodes: AtomicBits::new(self.busy_nodes.words_mut()),
            inj_nodes: AtomicBits::new(self.inj_nodes.words_mut()),
            srcq_nodes: AtomicBits::new(self.srcq_nodes.words_mut()),
            vc_bufs: self.vc_bufs.view(),
            source_q: self.source_q.view(),
            packets: self.packets.view(),
            wheel: self.wheel.view(),
            downstream: SharedSlice::new(self.tables.downstream_raw()),
        }
    }

    /// Folds one shard's route-pass results after the parallel barrier:
    /// counter deltas, then the boundary ops (recovery suspects, globally
    /// FIFO-ordered through the token queue).
    fn fold_route_stage(&mut self, stage: &mut ShardStage) {
        self.counters.stage_route_visits += stage.route_visits;
        self.counters.escape_allocations += stage.escape_allocs;
        stage.route_visits = 0;
        stage.escape_allocs = 0;
        stage.applied_total += stage.route_tail.len() as u64;
        for i in 0..stage.route_tail.len() {
            let RouteOp::Suspect { idx } = stage.route_tail[i] else {
                unreachable!("route boundary ops are suspects")
            };
            self.commit_suspect(idx as usize);
        }
        stage.route_tail.clear();
    }

    /// Folds one shard's switch-pass results after the parallel barrier:
    /// counter and census deltas, then the boundary ops (deliveries and
    /// cross-shard handoffs) through the ordinary sequential move path.
    fn fold_switch_stage(&mut self, now: u64, s: usize, stage: &mut ShardStage) {
        let inj_feeder = self.d * self.v;
        let nports = self.d + 1;
        self.counters.stage_switch_visits += stage.switch_visits;
        self.counters.hotspot_stall_cycles += stage.hotspot_stalls;
        self.counters.link_stall_cycles += stage.link_stalls;
        self.counters.injected_packets += stage.injected;
        stage.switch_visits = 0;
        stage.hotspot_stalls = 0;
        stage.link_stalls = 0;
        stage.injected = 0;
        self.full_buffers = self.full_buffers.wrapping_add_signed(stage.full_delta);
        self.plan.full_count[s] = self.plan.full_count[s].wrapping_add_signed(stage.full_delta);
        stage.full_delta = 0;
        if stage.progressed {
            self.last_progress_at = now;
            stage.progressed = false;
        }
        stage.applied_total += stage.switch_tail.len() as u64;
        for i in 0..stage.switch_tail.len() {
            let SwitchOp { node, port, pick } = stage.switch_tail[i];
            let (node, port, pick) = (node as usize, usize::from(port), usize::from(pick));
            self.out_rr[node * nports + port] = pick + 1;
            self.move_flit(now, node, pick, inj_feeder);
        }
        stage.switch_tail.clear();
    }

    /// The switch stage's read-only decide over `lo..hi`. Every per-port
    /// arbitration input (candidate masks, assignments, `out_rr` cursors,
    /// fronts) is node-local; the one cross-node read — downstream buffer
    /// occupancy for the credit check — uses *pre-phase* occupancy, i.e.
    /// credit freed by a pop this same cycle becomes usable next cycle
    /// (credit return takes a cycle). That makes the decision a pure
    /// function of pre-phase state, identical for every shard count, and
    /// keeps the apply overflow-free: each downstream VC has exactly one
    /// upstream owner moving at most one flit per cycle, so a buffer seen
    /// below capacity pre-phase still has room at apply time.
    pub(crate) fn switch_decide(&self, now: u64, lo: usize, hi: usize, stage: &mut ShardStage) {
        let inj_feeder = self.d * self.v;
        let split = self.plan.bounds.len() > 2; // see route_decide
        let nports = self.d + 1; // network ports + delivery
                                 // Per-port candidate buckets, hoisted out of the node loop: zeroing
                                 // ~2 KiB per node per cycle dominated idle-router cost. Only
                                 // `counts` needs resetting; stale `buckets` entries are never read.
        let mut buckets: [[u16; 64]; 17] = [[0; 64]; 17];
        let mut counts = [0usize; 17];
        debug_assert!(nports <= 17 && self.feeders_per_node() <= 64);
        let staged_before = stage.switch_ops.len();
        let tail_before = stage.switch_tail.len();
        // Only routers with buffered flits or an active injection can move
        // anything. Routers made busy mid-phase by a downstream push are
        // not visited: the pushed flit is not ready before
        // `now + hop_latency` and its VC is unrouted, so a visit would do
        // nothing.
        for w in (lo >> 6)..hi.div_ceil(64) {
            let mut nword =
                (self.busy_nodes.word(w) | self.inj_nodes.word(w)) & range_word_mask(w, lo, hi);
            while nword != 0 {
                let node = (w << 6) | nword.trailing_zeros() as usize;
                nword &= nword - 1;
                stage.switch_visits += 1;
                // Bucket ready feeders by output port. The bit-plane
                // intersection prunes unrouted and recovering worms before
                // any per-VC state is touched.
                counts[..nports].fill(0);
                let base = self.vc_idx(node, 0, 0);
                let mut mask = self.vc_busy[node] & self.vc_switchable[node];
                while mask != 0 {
                    let f = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let idx = base + f;
                    let assign = self.vc_assign[idx];
                    let port = match assign {
                        Assign::Out { port, .. } => usize::from(port),
                        Assign::Delivery => self.d,
                        Assign::None | Assign::AwaitToken | Assign::Recovery => continue,
                    };
                    if self.vc_bufs.front_ready_at(idx) > now
                        || (self.vc_bufs.front_idx(idx) == 0 && self.vc_routed_at[idx] >= now)
                    {
                        continue;
                    }
                    if let Assign::Out { port, vc: ovc } = assign {
                        let didx = self.downstream_idx(node, usize::from(port), usize::from(ovc));
                        if self.vc_bufs.len(didx) >= self.depth {
                            continue; // no credit
                        }
                    }
                    buckets[port][counts[port]] = f as u16;
                    counts[port] += 1;
                }
                // Injection feeder.
                let inj = self.inj[node];
                if let Some(pid) = inj.active {
                    let port = match inj.assign {
                        Assign::Out { port, .. } => Some(usize::from(port)),
                        Assign::Delivery => Some(self.d),
                        _ => None,
                    };
                    if let Some(port) = port {
                        let header_wait = inj.sent == 0 && inj.routed_at >= now;
                        let credit_ok = match inj.assign {
                            Assign::Out { port, vc } => {
                                let didx =
                                    self.downstream_idx(node, usize::from(port), usize::from(vc));
                                self.vc_bufs.len(didx) < self.depth
                            }
                            _ => true,
                        };
                        if !header_wait && credit_ok && inj.sent < self.packets.get(pid).len {
                            buckets[port][counts[port]] = inj_feeder as u16;
                            counts[port] += 1;
                        }
                    }
                }
                // One flit per output channel, RR over its candidates.
                for port in 0..nports {
                    if counts[port] == 0 {
                        continue;
                    }
                    // A faulted output moves nothing this cycle: a stalled
                    // link (network port) or a hot, non-consuming node
                    // (delivery port). Stall-cycles count only when a flit
                    // was ready.
                    if let Some(plan) = &self.faults {
                        if port == self.d {
                            if plan.delivery_down(node, now) {
                                stage.hotspot_stalls += 1;
                                continue;
                            }
                        } else if plan.link_down(node, port, now) {
                            stage.link_stalls += 1;
                            continue;
                        }
                    }
                    let cands = &buckets[port][..counts[port]];
                    let cursor = self.out_rr[node * nports + port] % self.feeders_per_node();
                    let pick = *cands
                        .iter()
                        .find(|&&f| usize::from(f) >= cursor)
                        .unwrap_or(&cands[0]);
                    let op = SwitchOp {
                        node: node as u32,
                        port: port as u8,
                        pick: pick as u8,
                    };
                    // Classify the move: a hop whose downstream VC lies in
                    // this shard's own node range is applied in the
                    // parallel phase; deliveries (globally FIFO-ordered
                    // records and packet releases) and cross-shard
                    // handoffs defer to the sequential tail.
                    if split && !self.switch_op_is_local(&op, lo, hi, inj_feeder) {
                        stage.switch_tail.push(op);
                    } else {
                        stage.switch_ops.push(op);
                    }
                }
            }
        }
        stage.staged_total += (stage.switch_ops.len() - staged_before) as u64
            + (stage.switch_tail.len() - tail_before) as u64;
    }

    /// Whether a staged switch move writes only state of nodes in
    /// `lo..hi` — i.e. it is an `Out` hop whose downstream input VC
    /// belongs to a node of the staging shard. (The source node is in
    /// range by construction; delivery moves touch the global delivery
    /// ring and packet store, so they are never local.)
    fn switch_op_is_local(&self, op: &SwitchOp, lo: usize, hi: usize, inj_feeder: usize) -> bool {
        let (node, pick) = (op.node as usize, usize::from(op.pick));
        let assign = if pick == inj_feeder {
            self.inj[node].assign
        } else {
            self.vc_assign[self.vc_idx(node, 0, 0) + pick]
        };
        match assign {
            Assign::Out { port, vc } => {
                let didx = self.downstream_idx(node, usize::from(port), usize::from(vc));
                (lo..hi).contains(&(didx / (self.d * self.v)))
            }
            Assign::Delivery => false,
            Assign::None | Assign::AwaitToken | Assign::Recovery => {
                unreachable!("staged move from unassigned feeder")
            }
        }
    }

    /// Applies one shard's staged switch ops in staging order: bumps the
    /// output channel's round-robin cursor and moves the flit.
    fn apply_switch_ops(&mut self, now: u64, stage: &mut ShardStage) {
        let inj_feeder = self.d * self.v;
        let nports = self.d + 1;
        self.counters.stage_switch_visits += stage.switch_visits;
        self.counters.hotspot_stall_cycles += stage.hotspot_stalls;
        self.counters.link_stall_cycles += stage.link_stalls;
        stage.switch_visits = 0;
        stage.hotspot_stalls = 0;
        stage.link_stalls = 0;
        stage.applied_total += stage.switch_ops.len() as u64;
        for i in 0..stage.switch_ops.len() {
            let SwitchOp { node, port, pick } = stage.switch_ops[i];
            let (node, port, pick) = (node as usize, usize::from(port), usize::from(pick));
            self.out_rr[node * nports + port] = pick + 1;
            self.move_flit(now, node, pick, inj_feeder);
        }
        stage.switch_ops.clear();
    }

    /// Moves one flit from feeder `f` of `node` along its assignment.
    fn move_flit(&mut self, now: u64, node: NodeId, f: usize, inj_feeder: usize) {
        let (flit, assign, is_tail) = if f == inj_feeder {
            let inj = &mut self.inj[node];
            let pid = inj.active.expect("injection feeder has active packet");
            let idx = inj.sent;
            inj.sent += 1;
            let len = self.packets.get(pid).len;
            let is_tail = inj.sent == len;
            if idx == 0 {
                self.packets.get_mut(pid).injected_at = now;
                self.counters.injected_packets += 1;
            }
            let assign = inj.assign;
            if is_tail {
                self.inj[node] = InjState::idle();
                self.inj_nodes.remove(node);
            }
            (
                Flit {
                    packet: pid,
                    idx,
                    ready_at: now,
                },
                assign,
                is_tail,
            )
        } else {
            let idx = self.vc_idx(node, 0, 0) + f;
            let flit = self.vc_bufs.pop_front(idx);
            let assign = self.vc_assign[idx];
            let is_tail = flit.idx + 1 == self.packets.get(flit.packet).len;
            if is_tail {
                self.set_assign(idx, Assign::None);
            }
            self.note_vc_popped(idx);
            (flit, assign, is_tail)
        };

        self.packets.get_mut(flit.packet).last_move = now;
        self.last_progress_at = now;
        match assign {
            Assign::Out { port, vc } => {
                let oidx = self.vc_idx(node, usize::from(port), usize::from(vc));
                let didx = self.tables.downstream(oidx);
                if is_tail {
                    debug_assert!(self.out_alloc[oidx]);
                    self.out_alloc[oidx] = false;
                }
                self.vc_bufs.push_back(
                    didx,
                    Flit {
                        ready_at: now + self.cfg.hop_latency,
                        ..flit
                    },
                );
                self.note_vc_filled(didx);
            }
            Assign::Delivery => self.deliver_flit(now, flit, false),
            Assign::None | Assign::AwaitToken | Assign::Recovery => {
                unreachable!("move_flit called on unassigned feeder")
            }
        }
    }

    /// Whether a fault plan currently stalls `node`'s delivery channel
    /// (consulted by both the switch stage and the recovery drain: a hot,
    /// non-consuming node cannot consume recovery flits either).
    #[inline]
    pub(crate) fn delivery_stalled(&self, node: NodeId, now: u64) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|plan| plan.delivery_down(node, now))
    }

    /// Consumes a flit at its destination's delivery channel.
    pub(crate) fn deliver_flit(&mut self, now: u64, flit: Flit, via_recovery: bool) {
        self.counters.delivered_flits += 1;
        self.last_delivery_at = now;
        self.last_progress_at = now;
        let len = {
            let p = self.packets.get_mut(flit.packet);
            p.delivered_flits += 1;
            p.len
        };
        if flit.idx + 1 == len {
            let p = *self.packets.get(flit.packet);
            debug_assert_eq!(p.delivered_flits, len, "flits delivered out of order");
            self.deliveries.push(DeliveredRecord {
                src: p.src,
                dst: p.dst,
                generated_at: p.generated_at,
                injected_at: p.injected_at,
                delivered_at: now,
                len,
                recovered: via_recovery,
            });
            self.counters.delivered_packets += 1;
            self.counters.recovered_packets += u64::from(via_recovery);
            self.packets.release(flit.packet);
        }
    }
}

/// Mask selecting the bits of bitset word `w` whose node indices fall in
/// `lo..hi`. Shard ranges are not word-aligned, so the decide phases trim
/// the first and last word of their range with this.
#[inline]
#[must_use]
fn range_word_mask(w: usize, lo: usize, hi: usize) -> u64 {
    let lo_mask = if w == lo >> 6 { !0u64 << (lo & 63) } else { !0 };
    let hi_mask = if w == hi >> 6 && hi & 63 != 0 {
        (1u64 << (hi & 63)) - 1
    } else {
        !0
    };
    lo_mask & hi_mask
}

/// Output/input port index of `(dim, dir)`: `2*dim` for `Plus`, `2*dim + 1`
/// for `Minus`.
#[inline]
#[must_use]
pub(crate) fn port_of(dim: usize, dir: Dir) -> usize {
    dim * 2 + usize::from(dir == Dir::Minus)
}

/// Inverse of [`port_of`].
#[inline]
#[must_use]
pub(crate) fn dim_dir_of(port: usize) -> (usize, Dir) {
    (
        port / 2,
        if port.is_multiple_of(2) {
            Dir::Plus
        } else {
            Dir::Minus
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::NoControl;

    /// Stepping under saturating random traffic must produce bit-identical
    /// state for every shard count: the decide phases are pure functions
    /// of pre-phase state and the barrier applies in ascending-node order
    /// regardless of the partition.
    #[test]
    fn stepping_is_bit_identical_across_shard_counts() {
        let cfg = NetConfig {
            radix: 4,
            dimensions: 3,
            ..NetConfig::small(DeadlockMode::Recovery { timeout: 8 })
        };
        let run = |shards: usize| {
            let mut net = Network::new(cfg.clone()).unwrap();
            net.set_shards(shards);
            assert_eq!(net.shards(), shards);
            let nodes = net.torus().node_count();
            let mut src = move |now: u64, node: usize| {
                let mut x = (now + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (node as u64) << 17;
                x ^= x >> 29;
                (x % 100 < 55).then(|| (x >> 32) as usize % nodes)
            };
            net.run(1_200, &mut src, &mut NoControl);
            let mut enc = checkpoint::Enc::new();
            net.save_state(&mut enc);
            let delivered = net.counters().delivered_packets;
            (enc.into_vec(), delivered)
        };
        let (base, delivered) = run(1);
        assert!(delivered > 0, "vacuous: nothing was delivered");
        for shards in [2usize, 3, 4, 7, 8] {
            assert_eq!(run(shards).0, base, "shards={shards} diverged from 1");
        }
    }

    #[test]
    fn range_word_mask_trims_unaligned_edges() {
        assert_eq!(range_word_mask(0, 0, 64), !0);
        assert_eq!(range_word_mask(0, 3, 64), !0u64 << 3);
        assert_eq!(range_word_mask(0, 0, 16), (1u64 << 16) - 1);
        assert_eq!(range_word_mask(1, 70, 130), !0u64 << 6);
        assert_eq!(range_word_mask(2, 70, 130), (1u64 << 2) - 1);
        assert_eq!(range_word_mask(1, 0, 128), !0);
    }

    #[test]
    fn port_mapping_round_trips() {
        for dim in 0..4 {
            for dir in Dir::BOTH {
                let p = port_of(dim, dir);
                assert_eq!(dim_dir_of(p), (dim, dir));
            }
        }
        assert_eq!(port_of(0, Dir::Plus), 0);
        assert_eq!(port_of(1, Dir::Minus), 3);
    }
}
