//! The invariant audit layer: full-scan ground truth vs. incremental state.
//!
//! PRs 4–5 layered derived state over the authoritative simulator state —
//! activity bitsets and node summaries, assignment and occupancy
//! bit-planes, a running full-buffer census, a starvation timer wheel and
//! a quiescence predicate — all maintained incrementally on the hot path.
//! [`Network::audit`] recomputes every one of those structures by full
//! scan and diffs the result against the incremental copy, and layers
//! conservation ledgers on top: every generated packet is accounted for
//! (delivered or live), every emitted flit is somewhere (buffered in a VC,
//! in a deadlock buffer, or delivered), every output-VC allocation has
//! exactly one owner, and the token queue and recovery drain hold only
//! what their mirror flags say they hold.
//!
//! The audit is read-only and allocation-heavy by design: it runs off the
//! hot path (every N cycles behind `STCC_AUDIT`, and at checkpoint/restore
//! boundaries), where clarity beats cost. A violation is reported, not
//! asserted, so callers — the chaos harness above all — can fail loudly
//! with a minimized repro instead of a bare panic.

use crate::network::{Assign, Network};
use core::fmt;

/// Which invariant a violation broke. One variant per independently
/// falsifiable invariant, so corruption tests can assert the auditor
/// reports *exactly* the structure they desynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// `vc_busy` worklist bit vs. actual buffer emptiness.
    WorklistBit,
    /// `vc_full` occupancy bit vs. actual buffer fill.
    OccupancyBit,
    /// `vc_unrouted` plane vs. the actual assignment.
    UnroutedBit,
    /// `vc_switchable` plane vs. the actual assignment.
    SwitchableBit,
    /// `busy_nodes` summary vs. the per-node worklist word.
    BusySummary,
    /// `inj_nodes` summary vs. the injection interfaces.
    InjSummary,
    /// `srcq_nodes` summary vs. the source queues.
    SrcqSummary,
    /// Running census `full_buffers` vs. the popcount of the planes.
    Census,
    /// Generated ≠ delivered + live packets.
    PacketLedger,
    /// Injected ≠ delivered + live-and-injected packets.
    InjectionLedger,
    /// Per-packet flit conservation: emitted ≠ buffered + delivered.
    FlitLedger,
    /// Source-queue membership vs. packet state.
    SourceQueueLedger,
    /// Output-VC allocation flags vs. their actual owners.
    OutAllocOwnership,
    /// A wheel deadline that is not a multiple of the timeout.
    WheelDeadline,
    /// An enrolled deadline whose bucket bit is missing.
    WheelBucket,
    /// Token-queue contents vs. the `vc_queued` mirror flags.
    TokenQueue,
    /// Recovery job/drain-buffer consistency.
    Recovery,
    /// Incremental quiescence predicate vs. a full scan.
    Quiescence,
    /// Per-shard decision mailbox conservation: cumulative staged ≠
    /// applied, or ops left in a buffer between cycles.
    MailboxConservation,
    /// Shard partition not a disjoint ascending cover of the node range.
    ShardPartition,
    /// A per-shard census word inconsistent with the global occupancy
    /// bitset over that shard's node range.
    ShardCensus,
}

impl AuditKind {
    /// Short stable label (used in reports and repro lines).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::WorklistBit => "worklist-bit",
            AuditKind::OccupancyBit => "occupancy-bit",
            AuditKind::UnroutedBit => "unrouted-bit",
            AuditKind::SwitchableBit => "switchable-bit",
            AuditKind::BusySummary => "busy-summary",
            AuditKind::InjSummary => "inj-summary",
            AuditKind::SrcqSummary => "srcq-summary",
            AuditKind::Census => "census",
            AuditKind::PacketLedger => "packet-ledger",
            AuditKind::InjectionLedger => "injection-ledger",
            AuditKind::FlitLedger => "flit-ledger",
            AuditKind::SourceQueueLedger => "source-queue-ledger",
            AuditKind::OutAllocOwnership => "out-alloc-ownership",
            AuditKind::WheelDeadline => "wheel-deadline",
            AuditKind::WheelBucket => "wheel-bucket",
            AuditKind::TokenQueue => "token-queue",
            AuditKind::Recovery => "recovery",
            AuditKind::Quiescence => "quiescence",
            AuditKind::MailboxConservation => "mailbox-conservation",
            AuditKind::ShardPartition => "shard-partition",
            AuditKind::ShardCensus => "shard-census",
        }
    }
}

/// One broken invariant, with enough detail to localize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub kind: AuditKind,
    /// Human-readable locus: node/VC/packet indices and the two values
    /// that disagree.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.label(), self.detail)
    }
}

/// The result of one full audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The cycle the audit ran at.
    pub cycle: u64,
    /// Every violation found, in scan order. Empty means clean.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the audit found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean at cycle {}", self.cycle);
        }
        write!(
            f,
            "audit found {} violation(s) at cycle {}:",
            self.violations.len(),
            self.cycle
        )?;
        const SHOWN: usize = 16;
        for v in self.violations.iter().take(SHOWN) {
            write!(f, "\n  {v}")?;
        }
        if self.violations.len() > SHOWN {
            write!(f, "\n  ... and {} more", self.violations.len() - SHOWN)?;
        }
        Ok(())
    }
}

impl Network {
    /// Audits every incremental structure and conservation ledger against
    /// a full scan of the authoritative state. Read-only; call between
    /// cycles (or at a checkpoint/restore boundary) so the state is at a
    /// stage-consistent point.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let mut v: Vec<AuditViolation> = Vec::new();
        self.audit_worklists(&mut v);
        self.audit_ledgers(&mut v);
        self.audit_out_alloc(&mut v);
        self.audit_wheel(&mut v);
        self.audit_token_queue(&mut v);
        self.audit_recovery(&mut v);
        self.audit_quiescence(&mut v);
        self.audit_shards(&mut v);
        AuditReport {
            cycle: self.now,
            violations: v,
        }
    }

    /// Worklist bits, assignment/occupancy bit-planes, node summaries and
    /// the census — the release-mode twin of `debug_check_worklist`.
    fn audit_worklists(&self, v: &mut Vec<AuditViolation>) {
        let fpn = self.torus().channels_per_node() * self.config().vcs;
        let depth = self.config().buf_depth;
        let mut census = 0u32;
        for (node, &mask) in self.vc_busy.iter().enumerate() {
            for f in 0..fpn {
                let idx = node * fpn + f;
                let busy = !self.vc_bufs.is_empty(idx);
                if (mask >> f & 1 == 1) != busy {
                    v.push(AuditViolation {
                        kind: AuditKind::WorklistBit,
                        detail: format!(
                            "node {node} feeder {f}: worklist bit {} but buffer has {} flit(s)",
                            mask >> f & 1,
                            self.vc_bufs.len(idx)
                        ),
                    });
                }
                let full = self.vc_bufs.len(idx) >= depth;
                if (self.vc_full[node] >> f & 1 == 1) != full {
                    v.push(AuditViolation {
                        kind: AuditKind::OccupancyBit,
                        detail: format!(
                            "node {node} feeder {f}: occupancy bit {} but len {} of depth {depth}",
                            self.vc_full[node] >> f & 1,
                            self.vc_bufs.len(idx)
                        ),
                    });
                }
                let (unrouted, switchable) = match self.vc_assign[idx] {
                    Assign::None | Assign::AwaitToken => (true, false),
                    Assign::Out { .. } | Assign::Delivery => (false, true),
                    Assign::Recovery => (false, false),
                };
                if (self.vc_unrouted[node] >> f & 1 == 1) != unrouted {
                    v.push(AuditViolation {
                        kind: AuditKind::UnroutedBit,
                        detail: format!(
                            "node {node} feeder {f}: unrouted bit {} but assignment {:?}",
                            self.vc_unrouted[node] >> f & 1,
                            self.vc_assign[idx]
                        ),
                    });
                }
                if (self.vc_switchable[node] >> f & 1 == 1) != switchable {
                    v.push(AuditViolation {
                        kind: AuditKind::SwitchableBit,
                        detail: format!(
                            "node {node} feeder {f}: switchable bit {} but assignment {:?}",
                            self.vc_switchable[node] >> f & 1,
                            self.vc_assign[idx]
                        ),
                    });
                }
            }
            census += self.vc_full[node].count_ones();
            if self.busy_nodes.contains(node) != (mask != 0) {
                v.push(AuditViolation {
                    kind: AuditKind::BusySummary,
                    detail: format!(
                        "node {node}: summary {} but worklist word {mask:#x}",
                        self.busy_nodes.contains(node)
                    ),
                });
            }
            if self.inj_nodes.contains(node) != self.inj[node].active.is_some() {
                v.push(AuditViolation {
                    kind: AuditKind::InjSummary,
                    detail: format!(
                        "node {node}: summary {} but injection {:?}",
                        self.inj_nodes.contains(node),
                        self.inj[node].active
                    ),
                });
            }
            if self.srcq_nodes.contains(node) == self.source_q.is_empty(node) {
                v.push(AuditViolation {
                    kind: AuditKind::SrcqSummary,
                    detail: format!(
                        "node {node}: summary {} but source queue holds {} packet(s)",
                        self.srcq_nodes.contains(node),
                        self.source_q.len(node)
                    ),
                });
            }
        }
        if census != self.full_buffers {
            v.push(AuditViolation {
                kind: AuditKind::Census,
                detail: format!(
                    "running census {} but occupancy planes popcount to {census}",
                    self.full_buffers
                ),
            });
        }
    }

    /// Conservation ledgers: packets, injections, per-packet flits and
    /// source-queue membership, cross-checked against a full scan of every
    /// buffer, queue and injection interface.
    fn audit_ledgers(&self, v: &mut Vec<AuditViolation>) {
        let slots = self.packets.slot_count();
        let nodes = self.torus().node_count();
        let n_vcs = self.vc_assign.len();

        // Slot liveness from the free list (the ground truth `live()`
        // summarizes). An out-of-range free id is itself ledger corruption.
        let mut live = vec![true; slots];
        for &id in self.packets.free_ids() {
            match live.get_mut(id as usize) {
                Some(l) => *l = false,
                None => v.push(AuditViolation {
                    kind: AuditKind::PacketLedger,
                    detail: format!("free list holds out-of-range packet id {id} (slots {slots})"),
                }),
            }
        }
        let live_count = live.iter().filter(|&&l| l).count() as u64;

        // Where every buffered flit lives, per packet.
        let mut buffered = vec![0u32; slots];
        for idx in 0..n_vcs {
            for i in 0..self.vc_bufs.len(idx) {
                let f = self.vc_bufs.get(idx, i);
                let pid = f.packet as usize;
                if pid >= slots || !live[pid] {
                    v.push(AuditViolation {
                        kind: AuditKind::FlitLedger,
                        detail: format!("VC {idx} buffers flit {} of dead packet {pid}", f.idx),
                    });
                } else {
                    buffered[pid] += 1;
                }
            }
        }
        for node in 0..nodes {
            for i in 0..self.dl_bufs.len(node) {
                let f = self.dl_bufs.get(node, i);
                let pid = f.packet as usize;
                if pid >= slots || !live[pid] {
                    v.push(AuditViolation {
                        kind: AuditKind::FlitLedger,
                        detail: format!(
                            "deadlock buffer {node} holds flit {} of dead packet {pid}",
                            f.idx
                        ),
                    });
                } else {
                    buffered[pid] += 1;
                }
            }
        }

        // Which packet each injection interface is streaming.
        let mut inj_node = vec![None::<usize>; slots];
        for (node, inj) in self.inj.iter().enumerate() {
            let Some(pid) = inj.active else { continue };
            let pid = pid as usize;
            if pid >= slots || !live[pid] {
                v.push(AuditViolation {
                    kind: AuditKind::FlitLedger,
                    detail: format!("node {node} is injecting dead packet {pid}"),
                });
                continue;
            }
            if let Some(other) = inj_node[pid] {
                v.push(AuditViolation {
                    kind: AuditKind::FlitLedger,
                    detail: format!("packet {pid} is injecting at both node {other} and {node}"),
                });
            }
            inj_node[pid] = Some(node);
        }

        // Source-queue occurrences per packet.
        let mut queued = vec![0u32; slots];
        for node in 0..nodes {
            for i in 0..self.source_q.len(node) {
                let pid = self.source_q.get(node, i) as usize;
                if pid >= slots || !live[pid] {
                    v.push(AuditViolation {
                        kind: AuditKind::SourceQueueLedger,
                        detail: format!("node {node} queues dead packet {pid}"),
                    });
                    continue;
                }
                if self.packets.get(pid as u32).src != node {
                    v.push(AuditViolation {
                        kind: AuditKind::SourceQueueLedger,
                        detail: format!(
                            "packet {pid} queued at node {node} but its source is {}",
                            self.packets.get(pid as u32).src
                        ),
                    });
                }
                queued[pid] += 1;
            }
        }

        // Per-packet flit conservation: every flit the network has taken in
        // is buffered somewhere or delivered, no more and no less.
        let mut injected_live = 0u64;
        for (pid, &alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            let p = self.packets.get(pid as u32);
            if p.injected_at != u64::MAX {
                injected_live += 1;
            }
            let emitted = if let Some(node) = inj_node[pid] {
                // Streaming in: `sent` flits are in the network so far. The
                // first flit's move is what stamps `injected_at`.
                let inj = &self.inj[node];
                if (inj.sent > 0) != (p.injected_at != u64::MAX) {
                    v.push(AuditViolation {
                        kind: AuditKind::FlitLedger,
                        detail: format!(
                            "packet {pid}: {} flits sent but injected_at {:?}",
                            inj.sent,
                            (p.injected_at != u64::MAX).then_some(p.injected_at)
                        ),
                    });
                }
                u32::from(inj.sent)
            } else if p.injected_at == u64::MAX {
                0 // Still waiting in a source queue.
            } else {
                u32::from(p.len) // Fully inside the network.
            };
            let expect_queued = u32::from(inj_node[pid].is_none() && p.injected_at == u64::MAX);
            if queued[pid] != expect_queued {
                v.push(AuditViolation {
                    kind: AuditKind::SourceQueueLedger,
                    detail: format!(
                        "packet {pid}: {} source-queue entries, expected {expect_queued}",
                        queued[pid]
                    ),
                });
            }
            if p.delivered_flits >= p.len {
                v.push(AuditViolation {
                    kind: AuditKind::FlitLedger,
                    detail: format!(
                        "live packet {pid} already delivered {}/{} flits",
                        p.delivered_flits, p.len
                    ),
                });
            }
            let present = buffered[pid] + u32::from(p.delivered_flits);
            if emitted != present {
                v.push(AuditViolation {
                    kind: AuditKind::FlitLedger,
                    detail: format!(
                        "packet {pid}: emitted {emitted} flits but {} buffered + {} delivered",
                        buffered[pid], p.delivered_flits
                    ),
                });
            }
        }

        let c = &self.counters;
        if c.generated_packets != c.delivered_packets + live_count {
            v.push(AuditViolation {
                kind: AuditKind::PacketLedger,
                detail: format!(
                    "generated {} != delivered {} + live {live_count}",
                    c.generated_packets, c.delivered_packets
                ),
            });
        }
        if c.injected_packets != c.delivered_packets + injected_live {
            v.push(AuditViolation {
                kind: AuditKind::InjectionLedger,
                detail: format!(
                    "injected {} != delivered {} + live-injected {injected_live}",
                    c.injected_packets, c.delivered_packets
                ),
            });
        }
    }

    /// Every output-VC allocation flag has exactly one owner: an input VC
    /// or injection interface with a matching `Out` assignment.
    fn audit_out_alloc(&self, v: &mut Vec<AuditViolation>) {
        let d = self.torus().channels_per_node();
        let vpc = self.config().vcs;
        let fpn = d * vpc;
        let n_vcs = self.vc_assign.len();
        let mut owners = vec![0u32; n_vcs];
        let mut claim =
            |v: &mut Vec<AuditViolation>, node: usize, port: u8, vc: u8, who: String| {
                let (port, vc) = (usize::from(port), usize::from(vc));
                if port >= d || vc >= vpc {
                    v.push(AuditViolation {
                        kind: AuditKind::OutAllocOwnership,
                        detail: format!("{who} assigned impossible output (port {port}, vc {vc})"),
                    });
                    return;
                }
                owners[(node * d + port) * vpc + vc] += 1;
            };
        for (idx, a) in self.vc_assign.iter().enumerate() {
            if let Assign::Out { port, vc } = *a {
                claim(v, idx / fpn, port, vc, format!("input VC {idx}"));
            }
        }
        for (node, inj) in self.inj.iter().enumerate() {
            if inj.active.is_some() {
                if let Assign::Out { port, vc } = inj.assign {
                    claim(v, node, port, vc, format!("injector {node}"));
                }
            }
        }
        for (oidx, &n) in owners.iter().enumerate() {
            if n > 1 {
                v.push(AuditViolation {
                    kind: AuditKind::OutAllocOwnership,
                    detail: format!("output VC {oidx} claimed by {n} worms"),
                });
            }
            if self.out_alloc[oidx] != (n == 1) {
                v.push(AuditViolation {
                    kind: AuditKind::OutAllocOwnership,
                    detail: format!(
                        "output VC {oidx}: alloc flag {} but {n} owner(s)",
                        self.out_alloc[oidx]
                    ),
                });
            }
        }
    }

    /// Wheel enrollment: every non-stale deadline is a multiple of the
    /// timeout and its bucket bit is set. (The converse — a set bucket bit
    /// without a deadline — is legal: fired and re-parked entries go stale
    /// in place and are lazily discarded.)
    fn audit_wheel(&self, v: &mut Vec<AuditViolation>) {
        if self.wheel.len() == 0 {
            return; // Avoidance mode: no wheel.
        }
        let timeout = self.wheel.timeout();
        for idx in 0..self.wheel.len() {
            let dl = self.wheel.deadline(idx);
            if dl == u64::MAX {
                continue;
            }
            if timeout == 0 || !dl.is_multiple_of(timeout) {
                v.push(AuditViolation {
                    kind: AuditKind::WheelDeadline,
                    detail: format!(
                        "VC {idx}: deadline {dl} is not a multiple of timeout {timeout}"
                    ),
                });
                continue;
            }
            let slot = self.wheel.slot_of(dl);
            if self.wheel.slot_word(slot, idx >> 6) >> (idx & 63) & 1 != 1 {
                v.push(AuditViolation {
                    kind: AuditKind::WheelBucket,
                    detail: format!("VC {idx}: deadline {dl} enrolled but slot {slot} bit clear"),
                });
            }
        }
    }

    /// Token-queue contents vs. the `vc_queued` mirror: each queued VC
    /// appears exactly once, everything else not at all.
    fn audit_token_queue(&self, v: &mut Vec<AuditViolation>) {
        let n_vcs = self.vc_assign.len();
        let mut seen = vec![0u32; n_vcs];
        for i in 0..self.token_queue.len(0) {
            let idx = self.token_queue.get(0, i) as usize;
            match seen.get_mut(idx) {
                Some(s) => *s += 1,
                None => v.push(AuditViolation {
                    kind: AuditKind::TokenQueue,
                    detail: format!("token queue holds out-of-range VC {idx}"),
                }),
            }
        }
        for (idx, &n) in seen.iter().enumerate() {
            let expect = u32::from(self.vc_queued[idx]);
            if n != expect {
                v.push(AuditViolation {
                    kind: AuditKind::TokenQueue,
                    detail: format!("VC {idx}: {n} token-queue entries but vc_queued {expect}"),
                });
            }
        }
    }

    /// Recovery-drain consistency: the job's packet is live, its source VC
    /// is the only `Recovery` assignment until the tail transitions, and
    /// the deadlock buffers hold only that packet's flits, only on its
    /// drain path (and nothing at all between recoveries).
    fn audit_recovery(&self, v: &mut Vec<AuditViolation>) {
        let nodes = self.torus().node_count();
        let recovery_vcs: Vec<usize> = (0..self.vc_assign.len())
            .filter(|&i| matches!(self.vc_assign[i], Assign::Recovery))
            .collect();
        match &self.recovery {
            None => {
                if !recovery_vcs.is_empty() {
                    v.push(AuditViolation {
                        kind: AuditKind::Recovery,
                        detail: format!(
                            "no recovery in progress but VCs {recovery_vcs:?} assigned"
                        ),
                    });
                }
                for node in 0..nodes {
                    if !self.dl_bufs.is_empty(node) {
                        v.push(AuditViolation {
                            kind: AuditKind::Recovery,
                            detail: format!(
                                "no recovery in progress but deadlock buffer {node} holds {} flit(s)",
                                self.dl_bufs.len(node)
                            ),
                        });
                    }
                }
            }
            Some(job) => {
                let slots = self.packets.slot_count();
                let pid = job.packet as usize;
                let dead = pid >= slots || self.packets.free_ids().contains(&job.packet);
                if dead {
                    v.push(AuditViolation {
                        kind: AuditKind::Recovery,
                        detail: format!("recovery job drains dead packet {pid}"),
                    });
                }
                let expect: &[usize] = if job.tail_in { &[] } else { &[job.src_vc] };
                if recovery_vcs != expect {
                    v.push(AuditViolation {
                        kind: AuditKind::Recovery,
                        detail: format!(
                            "recovery assignments {recovery_vcs:?}, expected {expect:?} \
                             (tail_in {})",
                            job.tail_in
                        ),
                    });
                }
                for node in 0..nodes {
                    if self.dl_bufs.is_empty(node) {
                        continue;
                    }
                    if !job.path.contains(&node) {
                        v.push(AuditViolation {
                            kind: AuditKind::Recovery,
                            detail: format!("deadlock buffer {node} is off the drain path"),
                        });
                    }
                    for i in 0..self.dl_bufs.len(node) {
                        let f = self.dl_bufs.get(node, i);
                        if f.packet != job.packet {
                            v.push(AuditViolation {
                                kind: AuditKind::Recovery,
                                detail: format!(
                                    "deadlock buffer {node} holds flit of packet {} during \
                                     recovery of {pid}",
                                    f.packet
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Shard-plan invariants: the partition is a disjoint ascending cover
    /// of the node range with a consistent node→shard map, every decision
    /// mailbox conserved its ops (cumulative staged = applied, both the
    /// local and the boundary-tail buffers empty between cycles), and the
    /// per-shard census words agree with
    /// the global occupancy bitset and sum to the global census.
    fn audit_shards(&self, v: &mut Vec<AuditViolation>) {
        let nodes = self.torus().node_count();
        let shards = self.plan.shards();
        if self.plan.bounds.len() != shards + 1
            || self.plan.bounds.first() != Some(&0)
            || self.plan.bounds.last() != Some(&nodes)
            || self.plan.full_count.len() != shards
            || self.plan.node_shard.len() != nodes
        {
            v.push(AuditViolation {
                kind: AuditKind::ShardPartition,
                detail: format!(
                    "plan shape broken: {} stage(s), bounds {:?}, {} census word(s) over {nodes} nodes",
                    shards,
                    self.plan.bounds,
                    self.plan.full_count.len()
                ),
            });
            return; // Everything below indexes through the plan's shape.
        }
        for s in 0..shards {
            let (lo, hi) = (self.plan.bounds[s], self.plan.bounds[s + 1]);
            if lo >= hi {
                v.push(AuditViolation {
                    kind: AuditKind::ShardPartition,
                    detail: format!("shard {s} range {lo}..{hi} is empty or descending"),
                });
                continue;
            }
            for node in lo..hi {
                if self.plan.node_shard[node] as usize != s {
                    v.push(AuditViolation {
                        kind: AuditKind::ShardPartition,
                        detail: format!(
                            "node {node} in range of shard {s} but mapped to shard {}",
                            self.plan.node_shard[node]
                        ),
                    });
                }
            }
            let stage = &self.plan.stages[s];
            if stage.staged_total != stage.applied_total
                || !stage.route_ops.is_empty()
                || !stage.switch_ops.is_empty()
                || !stage.route_tail.is_empty()
                || !stage.switch_tail.is_empty()
            {
                v.push(AuditViolation {
                    kind: AuditKind::MailboxConservation,
                    detail: format!(
                        "shard {s}: staged {} vs applied {}, {} route + {} switch local \
                         op(s) and {} route + {} switch boundary op(s) left in the mailbox",
                        stage.staged_total,
                        stage.applied_total,
                        stage.route_ops.len(),
                        stage.switch_ops.len(),
                        stage.route_tail.len(),
                        stage.switch_tail.len()
                    ),
                });
            }
            let popcount: u32 = self.vc_full[lo..hi].iter().map(|w| w.count_ones()).sum();
            if popcount != self.plan.full_count[s] {
                v.push(AuditViolation {
                    kind: AuditKind::ShardCensus,
                    detail: format!(
                        "shard {s}: census word {} but occupancy planes popcount to {popcount}",
                        self.plan.full_count[s]
                    ),
                });
            }
        }
        // No separate sum check: per-shard equality with the occupancy
        // planes plus the `Census` invariant (global popcount vs. the
        // running census) already pin the shard words' sum to
        // `full_buffers`, and keeping each poke to one kind preserves the
        // corruption tests' exactness.
    }

    /// The O(1) quiescence predicate vs. a full scan of every buffer,
    /// queue and interface.
    fn audit_quiescence(&self, v: &mut Vec<AuditViolation>) {
        let nodes = self.torus().node_count();
        let scan = self.packets.live() == 0
            && (0..self.vc_assign.len()).all(|i| self.vc_bufs.is_empty(i))
            && (0..nodes).all(|n| {
                self.dl_bufs.is_empty(n)
                    && self.inj[n].active.is_none()
                    && self.source_q.is_empty(n)
            })
            && self.token_queue.is_empty(0)
            && self.recovery.is_none();
        if scan != self.quiescent() {
            v.push(AuditViolation {
                kind: AuditKind::Quiescence,
                detail: format!(
                    "quiescent() says {} but a full scan says {scan}",
                    self.quiescent()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeadlockMode, NetConfig};
    use crate::control::NoControl;
    use std::collections::BTreeSet;

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn drive(net: &mut Network, seed: u64, load: u64, cycles: u64) {
        let nodes = net.torus().node_count();
        let mut src = move |now: u64, node: usize| {
            let r = mix(seed ^ mix(now) ^ mix(node as u64).rotate_left(17));
            (r % 100 < load).then(|| {
                let dst = (r >> 32) as usize % nodes;
                if dst == node {
                    (dst + 1) % nodes
                } else {
                    dst
                }
            })
        };
        for _ in 0..cycles {
            net.cycle(&mut src, &mut NoControl);
        }
    }

    /// A saturated 16-node recovery network with the starvation machinery
    /// and token queue demonstrably hot — the state every corruption test
    /// pokes at.
    fn hot_net() -> Network {
        let cfg = NetConfig {
            radix: 4,
            dimensions: 2,
            ..NetConfig::small(DeadlockMode::Recovery { timeout: 8 })
        };
        let mut net = Network::new(cfg).unwrap();
        drive(&mut net, 1, 60, 1_500);
        let report = net.audit();
        assert!(report.is_clean(), "hot_net is not clean: {report}");
        assert!(net.packets.live() > 0, "hot_net drained: nothing to poke");
        net
    }

    fn kinds(net: &Network) -> BTreeSet<&'static str> {
        net.audit()
            .violations
            .iter()
            .map(|v| v.kind.label())
            .collect()
    }

    fn assert_exactly(net: &Network, kind: AuditKind) {
        let found = kinds(net);
        let expect: BTreeSet<&'static str> = [kind.label()].into();
        assert_eq!(found, expect, "expected exactly one violation kind");
    }

    #[test]
    fn clean_under_saturating_recovery_traffic() {
        let mut net = hot_net();
        // Audit repeatedly while the network keeps running hot.
        for _ in 0..10 {
            drive(&mut net, 2, 60, 100);
            let report = net.audit();
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn clean_under_avoidance_traffic_and_after_drain() {
        let cfg = NetConfig {
            radix: 4,
            dimensions: 2,
            ..NetConfig::small(DeadlockMode::Avoidance)
        };
        let mut net = Network::new(cfg).unwrap();
        drive(&mut net, 3, 30, 1_000);
        let report = net.audit();
        assert!(report.is_clean(), "{report}");
        // Drain completely; the audit must agree with quiescence.
        drive(&mut net, 3, 0, 20_000);
        let report = net.audit();
        assert!(report.is_clean(), "{report}");
        assert!(net.quiescent(), "avoidance net failed to drain");
    }

    #[test]
    fn detects_census_drift() {
        let mut net = hot_net();
        net.full_buffers += 1;
        assert_exactly(&net, AuditKind::Census);
    }

    #[test]
    fn detects_cleared_worklist_bit() {
        let mut net = hot_net();
        // Clear one bit on a node with at least two busy VCs, so the
        // node-level summary stays truthful and only the bit is wrong.
        let (node, f) = (0..net.vc_busy.len())
            .find(|&n| net.vc_busy[n].count_ones() >= 2)
            .map(|n| (n, net.vc_busy[n].trailing_zeros() as usize))
            .expect("no node with two busy VCs in a saturated net");
        net.vc_busy[node] &= !(1u64 << f);
        assert_exactly(&net, AuditKind::WorklistBit);
    }

    #[test]
    fn detects_phantom_token_queue_flag() {
        let mut net = hot_net();
        let idx = (0..net.vc_queued.len())
            .find(|&i| !net.vc_queued[i])
            .expect("every VC queued");
        net.vc_queued[idx] = true;
        assert_exactly(&net, AuditKind::TokenQueue);
    }

    #[test]
    fn detects_missing_wheel_bucket_bit() {
        let mut net = hot_net();
        let idx = (0..net.wheel.len())
            .find(|&i| net.wheel.deadline(i) != u64::MAX)
            .expect("no enrolled wheel entry in a saturated recovery net");
        let slot = net.wheel.slot_of(net.wheel.deadline(idx));
        net.wheel.set_slot_word(slot, idx >> 6, 0);
        assert_exactly(&net, AuditKind::WheelBucket);
    }

    #[test]
    fn detects_misaligned_wheel_deadline() {
        let mut net = hot_net();
        // Timeout is 8; deadline 9 is not a multiple. The raw poke skips
        // `schedule`'s debug assertion and bucket insertion on purpose.
        net.wheel.set_deadline_raw(0, 9);
        assert_exactly(&net, AuditKind::WheelDeadline);
    }

    #[test]
    fn detects_packet_ledger_drift() {
        let mut net = hot_net();
        net.counters.generated_packets += 1;
        assert_exactly(&net, AuditKind::PacketLedger);
    }

    #[test]
    fn detects_injection_ledger_drift() {
        let mut net = hot_net();
        net.counters.injected_packets += 1;
        assert_exactly(&net, AuditKind::InjectionLedger);
    }

    #[test]
    fn detects_phantom_out_alloc() {
        let mut net = hot_net();
        let oidx = (0..net.out_alloc.len())
            .find(|&i| !net.out_alloc[i])
            .expect("every output VC allocated");
        net.out_alloc[oidx] = true;
        assert_exactly(&net, AuditKind::OutAllocOwnership);
    }

    #[test]
    fn clean_when_sharded() {
        let mut net = hot_net();
        for shards in [2usize, 3, 4] {
            net.set_shards(shards);
            let report = net.audit();
            assert!(report.is_clean(), "shards={shards}: {report}");
            drive(&mut net, 4, 60, 64);
            let report = net.audit();
            assert!(report.is_clean(), "shards={shards} after traffic: {report}");
        }
    }

    #[test]
    fn detects_mailbox_drift() {
        let mut net = hot_net();
        net.set_shards(2);
        net.plan.stages[0].staged_total += 1;
        assert_exactly(&net, AuditKind::MailboxConservation);
    }

    #[test]
    fn detects_leftover_boundary_op() {
        let mut net = hot_net();
        net.set_shards(2);
        // A boundary op stranded in a tail buffer — the sequential fold
        // missed it — must trip the same conservation audit as a local one.
        net.plan.stages[1]
            .route_tail
            .push(crate::shard::RouteOp::Suspect { idx: 0 });
        assert_exactly(&net, AuditKind::MailboxConservation);
    }

    #[test]
    fn detects_shard_partition_break() {
        let mut net = hot_net();
        net.set_shards(2);
        // Remap one node to the wrong shard: the partition invariant
        // breaks while the ranges (and thus the census words) stay intact.
        net.plan.node_shard[0] = 1;
        assert_exactly(&net, AuditKind::ShardPartition);
    }

    #[test]
    fn detects_shard_census_drift() {
        let mut net = hot_net();
        net.set_shards(2);
        // Desync one shard's census word. The global census still matches
        // the occupancy planes, so this must fire `ShardCensus` — not
        // `Census`.
        net.plan.full_count[0] += 1;
        assert_exactly(&net, AuditKind::ShardCensus);
    }

    #[test]
    fn report_display_is_readable() {
        let report = AuditReport {
            cycle: 7,
            violations: vec![AuditViolation {
                kind: AuditKind::Census,
                detail: "running census 3 but occupancy planes popcount to 2".into(),
            }],
        };
        let s = report.to_string();
        assert!(s.contains("cycle 7"), "{s}");
        assert!(s.contains("[census]"), "{s}");
        assert!(AuditReport {
            cycle: 0,
            violations: vec![]
        }
        .is_clean());
    }
}
