//! Differential test: the timer-wheel starvation stage must match the
//! reference full scan decision-for-decision.
//!
//! Two networks with identical configuration are driven by identical
//! traffic; one runs the production [`TimerWheel`](crate::wheel::TimerWheel)
//! path, the other is switched to the kept-verbatim reference scan
//! (`Network::detect_starved_heads_scan`) via the test-only
//! `starvation_reference_scan` flag. After every cycle, all state that any
//! future cycle can observe must be equal — assignments, token-queue order,
//! output allocations, buffers, counters. Only two things are allowed to
//! differ: the wheel's own bookkeeping (the scan network enrolls through
//! `try_route` but never drains, so its deadlines go stale) and the
//! `stage_starvation_checks` counter (the scan path doesn't count wheel
//! evaluations).
//!
//! The default test drives one seed hot enough to trip Disha suspicions
//! (asserted non-vacuous); the `slow-proptests` feature widens the sweep
//! over seeds, loads and timeouts.

use crate::config::{DeadlockMode, NetConfig};
use crate::control::NoControl;
use crate::counters::Counters;
use crate::network::Network;
use faults::{FaultPlan, LinkFault, SidebandFaults};

/// SplitMix64: a pure hash of (seed, now, node) so both networks see the
/// exact same traffic without sharing closure state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Bernoulli source at `load`% per node-cycle, uniform destinations.
fn source(seed: u64, nodes: usize, load: u64) -> impl FnMut(u64, usize) -> Option<usize> {
    move |now, node| {
        let r = mix(seed ^ mix(now) ^ mix(node as u64).rotate_left(17));
        (r % 100 < load).then(|| {
            let dst = (r >> 32) as usize % nodes;
            if dst == node {
                (dst + 1) % nodes
            } else {
                dst
            }
        })
    }
}

/// Asserts every future-observable field of the two networks is equal.
/// Excluded by design: wheel bookkeeping and `stage_starvation_checks`.
fn assert_observably_equal(wheel: &Network, scan: &Network, cycle: u64) {
    let mut cw = *wheel.counters();
    let mut cs = *scan.counters();
    cw.stage_starvation_checks = 0;
    cs.stage_starvation_checks = 0;
    assert_eq!(cw, cs, "counters diverged at cycle {cycle}");
    assert_eq!(wheel.now, scan.now, "clock diverged at cycle {cycle}");
    assert_eq!(
        wheel.full_buffers, scan.full_buffers,
        "census diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.vc_assign, scan.vc_assign,
        "assignments diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.vc_routed_at, scan.vc_routed_at,
        "routing timestamps diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.vc_blocked, scan.vc_blocked,
        "blocked counters diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.vc_queued, scan.vc_queued,
        "token-queue membership diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.out_alloc, scan.out_alloc,
        "output allocations diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.vc_busy, scan.vc_busy,
        "busy masks diverged at cycle {cycle}"
    );
    let tokens = |n: &Network| -> Vec<u32> {
        (0..n.token_queue.len(0))
            .map(|i| n.token_queue.get(0, i))
            .collect()
    };
    assert_eq!(
        tokens(wheel),
        tokens(scan),
        "token FIFO order diverged at cycle {cycle}"
    );
    assert_eq!(
        wheel.recovery.is_some(),
        scan.recovery.is_some(),
        "recovery activity diverged at cycle {cycle}"
    );
    if let (Some(a), Some(b)) = (&wheel.recovery, &scan.recovery) {
        assert_eq!(
            (a.packet, &a.path, a.src_vc, a.tail_in),
            (b.packet, &b.path, b.src_vc, b.tail_in),
            "recovery job diverged at cycle {cycle}"
        );
    }
}

/// Drives a wheel/scan pair for `cycles` under the given traffic (and an
/// optional fault plan installed identically on both networks) and returns
/// the wheel network's counters (for non-vacuity checks).
fn drive_pair_with(
    seed: u64,
    load: u64,
    timeout: u64,
    cycles: u64,
    plan: Option<FaultPlan>,
) -> Counters {
    let cfg = NetConfig {
        radix: 4,
        dimensions: 2,
        ..NetConfig::small(DeadlockMode::Recovery { timeout })
    };
    let nodes = 16;
    let mut wheel_net = Network::new(cfg.clone()).unwrap();
    let mut scan_net = Network::new(cfg).unwrap();
    if let Some(plan) = plan {
        wheel_net.install_faults(plan.clone()).unwrap();
        scan_net.install_faults(plan).unwrap();
    }
    scan_net.starvation_reference_scan = true;
    let mut src_w = source(seed, nodes, load);
    let mut src_s = source(seed, nodes, load);
    for c in 0..cycles {
        wheel_net.cycle(&mut src_w, &mut NoControl);
        scan_net.cycle(&mut src_s, &mut NoControl);
        assert_observably_equal(&wheel_net, &scan_net, c);
    }
    // Both must also report the same deliveries, in the same order.
    let dw: Vec<_> = wheel_net.drain_deliveries().collect();
    let ds: Vec<_> = scan_net.drain_deliveries().collect();
    assert_eq!(dw, ds, "delivery records diverged");
    *wheel_net.counters()
}

/// Drives a fault-free wheel/scan pair and returns the number of Disha
/// suspicions (for non-vacuity checks).
fn drive_pair(seed: u64, load: u64, timeout: u64, cycles: u64) -> u64 {
    drive_pair_with(seed, load, timeout, cycles, None).recovery_timeouts
}

/// A PR-1 fault storm for the 16-node pair: a handful of scheduled link
/// stalls plus side-band loss/corruption. The side-band faults are inert
/// here (`Network` has no side-band) but exercise the plan plumbing the
/// chaos harness also drives.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        sideband: SidebandFaults {
            loss_rate: 0.3,
            ..SidebandFaults::none()
        },
        links: (0..4)
            .map(|i| LinkFault {
                node: i * 4 + 1,
                port: i % 4,
                start: 200 + 300 * i as u64,
                end: 1_400 + 300 * i as u64,
            })
            .collect(),
        hotspots: Vec::new(),
    }
}

#[test]
fn wheel_matches_reference_scan_under_saturating_traffic() {
    // 60% per-node load on a 16-node recovery network deadlocks reliably;
    // the run must exercise the starvation machinery to prove anything.
    let suspicions = drive_pair(1, 60, 8, 4_000);
    assert!(suspicions > 0, "test is vacuous: no Disha suspicions fired");
}

#[test]
fn wheel_matches_reference_scan_at_light_load() {
    // Light load rarely (often never) trips starvation — the interesting
    // property here is that wheel entries going stale and re-parking cause
    // no observable drift.
    drive_pair(2, 8, 8, 4_000);
}

#[test]
fn wheel_matches_reference_scan_under_fault_storm() {
    // Link stalls perturb exactly the timing the starvation machinery
    // watches (ready-but-stuck headers), so equality under a storm is the
    // strongest form of the differential property. Loud enough traffic
    // that both suspicions and stalls demonstrably fire.
    let c = drive_pair_with(5, 60, 8, 4_000, Some(storm_plan(5)));
    assert!(
        c.link_stall_cycles > 0,
        "test is vacuous: no link stalls fired"
    );
    assert!(
        c.recovery_timeouts > 0,
        "test is vacuous: no Disha suspicions fired"
    );
}

/// Wider sweep: seeds × loads × timeouts (including a timeout that is not
/// a power of two and one shorter than the hop latency bound matters for).
#[test]
#[cfg_attr(not(feature = "slow-proptests"), ignore = "enable slow-proptests")]
fn wheel_matches_reference_scan_property_sweep() {
    let mut total_suspicions = 0;
    for seed in 0..6u64 {
        for &(load, timeout) in &[(60, 8), (45, 5), (80, 3), (30, 16)] {
            total_suspicions += drive_pair(seed, load, timeout, 3_000);
        }
    }
    assert!(
        total_suspicions > 0,
        "sweep is vacuous: no suspicions fired"
    );
}
