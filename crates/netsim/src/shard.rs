//! Intra-simulation sharding: the shard plan, per-shard op staging, and
//! the persistent worker pool that executes the parallel phases.
//!
//! One [`crate::Network`] is stepped across a fixed set of *shards* —
//! contiguous node ranges — with a deterministic per-cycle barrier. The
//! route and switch stages each split into phases:
//!
//! 1. **Decide** (parallel): every shard scans its own node range of the
//!    *pre-phase* network state through a shared `&Network` borrow and
//!    stages its decisions as typed ops into its own [`ShardStage`]
//!    buffer. Nothing is mutated, so workers never race. Each op is
//!    classified at staging time as **local** (every write target lands
//!    inside the staging shard's own node range) or **boundary** (it
//!    touches another shard, or globally FIFO-ordered structures like the
//!    recovery token queue or the delivery ring).
//! 2. **Apply, local** (parallel): each shard applies its own local ops
//!    through a raw [`ApplyCtx`] view — shard-disjoint arrays with plain
//!    writes, word-shared bitsets with atomic bit ops. Local ops of
//!    different shards touch disjoint state (or commute exactly — see the
//!    safety notes on [`ApplyCtx`]), so the result is independent of
//!    execution order and bit-identical to the sequential reference.
//! 3. **Apply, boundary tail** (sequential): the caller's thread applies
//!    the boundary ops in canonical order — ascending shard, and within a
//!    shard in staging (ascending node) order — and folds the per-shard
//!    counter deltas. Because shards are contiguous ascending ranges, the
//!    tail reproduces the reference's global ascending-node order for the
//!    globally ordered structures, for *any* shard count.
//!
//! The phases are executed by a [`WorkerPool`] of `S - 1` long-lived
//! threads plus the caller's thread, rendezvousing through an epoch-style
//! ticket barrier (atomics + park/unpark, no mutex, no per-cycle thread
//! spawns). Shards are *claimed*, not assigned: any participant may
//! execute any shard's decide or local apply, because the result depends
//! only on the shard id. On a single-core host the workers park and the
//! caller claims every ticket inline, so the barrier degenerates to a
//! handful of uncontended atomic operations per phase — which is what
//! keeps `--shards 2` within a few percent of `--shards 1` there.
//!
//! The plan is runtime-only configuration: it is never serialized and
//! never enters a checkpoint fingerprint, so a snapshot taken at S shards
//! restores at any S′ by construction. The op buffers are preallocated at
//! their per-cycle worst case, keeping the steady-state cycle pipeline
//! allocation-free (see `tests/zero_alloc.rs`).

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::network::{Assign, InjState, Network};
use crate::packet::{Flit, PacketsView};
use crate::ring::{FlitRingsView, IdRingView};
use crate::wheel::TimerWheelView;

/// One staged routing-stage decision. Ops are applied in staging order,
/// which per node is: the arbiter cursor update, the winner's allocation
/// (if it routed), then blocked-cycle accounting per losing requester —
/// the exact write order of the sequential reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RouteOp {
    /// Demand-slotted round-robin cursor update of `node`'s arbiter.
    Rr { node: u32, cursor: u8 },
    /// The arbiter's winning feeder routed: perform the allocation tail
    /// (output-VC claim, escape marking, injection start or VC
    /// assignment + wheel enrollment).
    Win {
        node: u32,
        feeder: u8,
        assign: Assign,
    },
    /// A losing (or unroutable) requester accrues one blocked cycle.
    Blocked { idx: u32 },
    /// A requester tripped Disha's suspicion predicate: commit it to the
    /// recovery token queue. Always a boundary op (the token queue is a
    /// single global FIFO).
    Suspect { idx: u32 },
}

/// One staged switch-stage decision: output channel `port` of `node`
/// moves one flit from feeder `pick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SwitchOp {
    pub node: u32,
    pub port: u8,
    pub pick: u8,
}

/// Per-shard staging buffer: the mailbox decisions travel through between
/// the parallel decide phase and the (parallel local + sequential
/// boundary) apply. With one shard nothing is classified: every op goes
/// into the main vectors and is applied inline in staging order.
#[derive(Debug, Default)]
pub(crate) struct ShardStage {
    /// Local ops staged by this shard's route decide, in node order.
    pub route_ops: Vec<RouteOp>,
    /// Boundary route ops (recovery suspects), applied in the sequential
    /// tail in staging order.
    pub route_tail: Vec<RouteOp>,
    /// Local ops staged by this shard's switch decide, in (node, port)
    /// order: moves whose downstream VC lies in this shard's own range.
    pub switch_ops: Vec<SwitchOp>,
    /// Boundary switch ops: deliveries (global delivery-ring FIFO and
    /// packet release order) and cross-shard flit handoffs.
    pub switch_tail: Vec<SwitchOp>,
    /// Routers this shard's route decide visited (counter delta, folded
    /// into [`crate::counters::Counters`] at the barrier).
    pub route_visits: u64,
    /// Routers this shard's switch decide visited.
    pub switch_visits: u64,
    /// Ready flits stalled on faulted links / hot delivery channels this
    /// cycle (counter deltas).
    pub link_stalls: u64,
    pub hotspot_stalls: u64,
    /// Parallel-apply deltas, folded sequentially at the barrier: escape
    /// allocations and injected packets (counter sums), the net change to
    /// the full-buffer census (a local op's census change always lands in
    /// its own shard, so one delta serves both the global count and the
    /// per-shard census), and whether any flit moved (advances
    /// `last_progress_at`).
    pub escape_allocs: u64,
    pub injected: u64,
    pub full_delta: i32,
    pub progressed: bool,
    /// Cumulative ops ever staged into / applied from this buffer
    /// (local + boundary). The audit's mailbox-conservation invariant:
    /// between cycles the two are equal and all four op vectors are
    /// empty — every staged decision was applied, none invented.
    pub staged_total: u64,
    pub applied_total: u64,
}

impl ShardStage {
    fn with_capacity(route_cap: usize, switch_cap: usize) -> Self {
        ShardStage {
            route_ops: Vec::with_capacity(route_cap),
            route_tail: Vec::with_capacity(route_cap),
            switch_ops: Vec::with_capacity(switch_cap),
            switch_tail: Vec::with_capacity(switch_cap),
            ..ShardStage::default()
        }
    }
}

/// The shard partition of one network: contiguous node ranges, the
/// node→shard map, the per-shard full-buffer census, the per-shard op
/// buffers and (when sharded) the persistent worker pool. Runtime-only:
/// never serialized, never fingerprinted.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Shard `s` owns nodes `bounds[s]..bounds[s + 1]`. Ascending,
    /// `bounds[0] == 0`, last element == node count, every range
    /// non-empty.
    pub bounds: Vec<usize>,
    /// Which shard owns each node (inverse of `bounds`).
    pub node_shard: Vec<u32>,
    /// Per-shard count of completely full input VC buffers. Maintained
    /// incrementally alongside the global census; the network-wide
    /// `full_buffers` equals the fixed-order sum over shards.
    pub full_count: Vec<u32>,
    /// Per-shard decision mailboxes.
    pub stages: Vec<ShardStage>,
    /// Persistent workers executing the parallel phases (`None` with one
    /// shard). Attached by `Network::set_shards`; dropping the plan joins
    /// the workers, so no thread outlives the network.
    pub pool: Option<WorkerPool>,
}

impl ShardPlan {
    /// Builds a plan with `shards` contiguous, near-equal node ranges.
    /// The effective shard count is clamped to `[1, nodes]`; ranges use
    /// the `s * nodes / shards` split so every shard is non-empty and
    /// sizes differ by at most one node (ranges are *not* word-aligned —
    /// workers mask bitset words at range edges).
    ///
    /// `fpn` is input-VC feeders per node (`d * v`), `nports` output
    /// channels per node (`d + 1`); both size the worst-case per-cycle op
    /// capacity: a router stages at most `fpn + 2` route ops (cursor +
    /// winner + one blocked entry per input feeder) and `nports` switch
    /// ops (one flit per output channel). No worker pool is attached
    /// here — `Network::set_shards` does that, so plan construction in
    /// tests stays thread-free.
    pub fn new(shards: usize, nodes: usize, fpn: usize, nports: usize) -> Self {
        let shards = shards.clamp(1, nodes.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        for s in 0..=shards {
            bounds.push(s * nodes / shards);
        }
        let mut node_shard = vec![0u32; nodes];
        for s in 0..shards {
            for owner in &mut node_shard[bounds[s]..bounds[s + 1]] {
                *owner = s as u32;
            }
        }
        let stages = (0..shards)
            .map(|s| {
                let span = bounds[s + 1] - bounds[s];
                ShardStage::with_capacity(span * (fpn + 2), span * nports)
            })
            .collect();
        ShardPlan {
            bounds,
            node_shard,
            full_count: vec![0; shards],
            stages,
            pool: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.stages.len()
    }

    /// Recomputes the per-shard census from the occupancy bit-planes
    /// (after a restore or a re-partition).
    pub fn rebuild_census(&mut self, vc_full: &[u64]) {
        for (s, count) in self.full_count.iter_mut().enumerate() {
            *count = vc_full[self.bounds[s]..self.bounds[s + 1]]
                .iter()
                .map(|w| w.count_ones())
                .sum();
        }
    }
}

// ---------------------------------------------------------------------
// Raw apply views
// ---------------------------------------------------------------------

/// Raw shared-mutable slice for the parallel shard-local apply. All
/// accesses are `unsafe`: the caller asserts that index `i` belongs to
/// state its shard owns exclusively during the apply phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RacySlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: sound under ApplyCtx's shard-ownership discipline.
unsafe impl<T> Send for RacySlice<T> {}
unsafe impl<T> Sync for RacySlice<T> {}

impl<T: Copy> RacySlice<T> {
    pub(crate) fn new(s: &mut [T]) -> Self {
        RacySlice {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }
}

/// Raw read-only slice (the precomputed downstream table; immutable for
/// the lifetime of the network, so shared reads are always sound).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedSlice<T> {
    ptr: *const T,
    len: usize,
}

// SAFETY: read-only over immutable data.
unsafe impl<T> Send for SharedSlice<T> {}
unsafe impl<T> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    pub(crate) fn new(s: &[T]) -> Self {
        SharedSlice {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }
}

/// Atomic bit view over a node bitset ([`crate::activity::NodeSet`]).
/// One word packs 64 nodes and shard boundaries are not word-aligned, so
/// summary-bit updates from adjacent shards can share a word: they go
/// through atomic RMWs, which commute bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AtomicBits {
    ptr: *mut u64,
    words: usize,
}

// SAFETY: all accesses are atomic RMWs.
unsafe impl Send for AtomicBits {}
unsafe impl Sync for AtomicBits {}

impl AtomicBits {
    pub(crate) fn new(words: &mut [u64]) -> Self {
        AtomicBits {
            ptr: words.as_mut_ptr(),
            words: words.len(),
        }
    }

    #[inline]
    unsafe fn word(&self, w: usize) -> &AtomicU64 {
        debug_assert!(w < self.words);
        AtomicU64::from_ptr(self.ptr.add(w))
    }

    #[inline]
    pub(crate) unsafe fn insert(&self, node: usize) {
        self.word(node >> 6)
            .fetch_or(1u64 << (node & 63), Ordering::Relaxed);
    }

    #[inline]
    pub(crate) unsafe fn remove(&self, node: usize) {
        self.word(node >> 6)
            .fetch_and(!(1u64 << (node & 63)), Ordering::Relaxed);
    }
}

/// Raw decomposition of one `&mut Network` for the parallel shard-local
/// apply, built by `Network::apply_ctx` just before a dispatch.
///
/// # Safety discipline (who may write what)
///
/// * **Shard-disjoint state** — everything indexed by node or by input/
///   output VC (`route_rr`, `out_rr`, `vc_assign`, `vc_routed_at`,
///   `vc_blocked`, `out_alloc`, `inj`, the per-node `vc_*` bit-plane
///   words, the flit/source rings, wheel deadlines): local ops only ever
///   touch entries of their own shard's node range (that is the
///   *definition* of a local op), so plain reads/writes through
///   [`RacySlice`] never race.
/// * **Word-shared summaries** (`busy_nodes`, `inj_nodes`, `srcq_nodes`,
///   wheel bucket words): updated with atomic bit RMWs ([`AtomicBits`],
///   [`TimerWheelView`]), which commute.
/// * **`escaped[pid]`** — at most one routing win per packet per cycle:
///   unique-writer byte store.
/// * **`packets`** — see [`PacketsView`] for the field-level rules.
/// * **Global scalars** (counters, `full_buffers`, the per-shard census,
///   `last_progress_at`) are *not* in the view: local applies accumulate
///   deltas in their own [`ShardStage`], folded sequentially after the
///   barrier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ApplyCtx {
    pub d: usize,
    pub v: usize,
    /// Input-VC feeders per node (`d * v`); the injection feeder's index.
    pub fpn: usize,
    /// Output channels per node (`d + 1`).
    pub nports: usize,
    pub depth: usize,
    pub escape_vcs: usize,
    pub hop_latency: u64,
    /// Disha detection timeout; 0 in avoidance mode (no wheel).
    pub recovery_timeout: u64,
    pub route_rr: RacySlice<usize>,
    pub out_rr: RacySlice<usize>,
    pub vc_assign: RacySlice<Assign>,
    pub vc_routed_at: RacySlice<u64>,
    pub vc_blocked: RacySlice<u64>,
    pub out_alloc: RacySlice<bool>,
    pub inj: RacySlice<InjState>,
    pub escaped: RacySlice<bool>,
    pub vc_busy: RacySlice<u64>,
    pub vc_unrouted: RacySlice<u64>,
    pub vc_switchable: RacySlice<u64>,
    pub vc_full: RacySlice<u64>,
    pub busy_nodes: AtomicBits,
    pub inj_nodes: AtomicBits,
    pub srcq_nodes: AtomicBits,
    pub vc_bufs: FlitRingsView,
    pub source_q: IdRingView,
    pub packets: PacketsView,
    pub wheel: TimerWheelView,
    pub downstream: SharedSlice<u32>,
}

impl ApplyCtx {
    /// Mirror of `Network::set_assign` over the raw view (plain writes:
    /// the bit-plane words are per-node and shard-owned).
    #[inline]
    unsafe fn set_assign_local(&self, idx: usize, a: Assign) {
        self.vc_assign.set(idx, a);
        let (node, bit) = (idx / self.fpn, 1u64 << (idx % self.fpn));
        let (unrouted, switchable) = (self.vc_unrouted, self.vc_switchable);
        match a {
            Assign::None | Assign::AwaitToken => {
                unrouted.set(node, unrouted.get(node) | bit);
                switchable.set(node, switchable.get(node) & !bit);
            }
            Assign::Out { .. } | Assign::Delivery => {
                unrouted.set(node, unrouted.get(node) & !bit);
                switchable.set(node, switchable.get(node) | bit);
            }
            Assign::Recovery => {
                unrouted.set(node, unrouted.get(node) & !bit);
                switchable.set(node, switchable.get(node) & !bit);
            }
        }
    }

    /// Mirror of `Network::note_vc_filled`; census changes become stage
    /// deltas (the pushed-into VC is in the stage's own shard — that is
    /// what made the op local).
    #[inline]
    unsafe fn note_vc_filled_local(&self, idx: usize, stage: &mut ShardStage) {
        let (node, f) = (idx / self.fpn, idx % self.fpn);
        self.vc_busy.set(node, self.vc_busy.get(node) | 1u64 << f);
        self.busy_nodes.insert(node);
        let full = u64::from(self.vc_bufs.len(idx) >= self.depth);
        self.vc_full.set(node, self.vc_full.get(node) | full << f);
        stage.full_delta += full as i32;
    }

    /// Mirror of `Network::note_vc_popped`.
    #[inline]
    unsafe fn note_vc_popped_local(&self, idx: usize, stage: &mut ShardStage) {
        let empty = self.vc_bufs.len(idx) == 0;
        let (node, f) = (idx / self.fpn, idx % self.fpn);
        let busy = self.vc_busy.get(node) & !(u64::from(empty) << f);
        self.vc_busy.set(node, busy);
        if busy == 0 {
            self.busy_nodes.remove(node);
        }
        let was_full = self.vc_full.get(node) >> f & 1;
        self.vc_full
            .set(node, self.vc_full.get(node) & !(1u64 << f));
        stage.full_delta -= was_full as i32;
    }

    /// Applies one shard's local route ops (mirror of the sequential
    /// `Network::apply_route_ops`, minus the boundary `Suspect` arm).
    ///
    /// # Safety
    ///
    /// Caller holds the unique apply ticket for this shard; every op in
    /// `stage.route_ops` writes only shard-owned state (see the struct
    /// docs).
    pub(crate) unsafe fn apply_route_ops_local(&self, now: u64, stage: &mut ShardStage) {
        stage.applied_total += stage.route_ops.len() as u64;
        for i in 0..stage.route_ops.len() {
            match stage.route_ops[i] {
                RouteOp::Rr { node, cursor } => {
                    self.route_rr.set(node as usize, usize::from(cursor));
                }
                RouteOp::Win {
                    node,
                    feeder,
                    assign,
                } => {
                    self.apply_route_win_local(
                        now,
                        node as usize,
                        usize::from(feeder),
                        assign,
                        stage,
                    );
                }
                RouteOp::Blocked { idx } => {
                    let idx = idx as usize;
                    self.vc_blocked.set(idx, self.vc_blocked.get(idx) + 1);
                }
                RouteOp::Suspect { .. } => unreachable!("suspects are boundary ops"),
            }
        }
        stage.route_ops.clear();
    }

    /// Mirror of `Network::apply_route` over the raw view.
    unsafe fn apply_route_win_local(
        &self,
        now: u64,
        node: usize,
        feeder: usize,
        assign: Assign,
        stage: &mut ShardStage,
    ) {
        let base = node * self.fpn;
        let (pid, is_inj) = if feeder == self.fpn {
            (self.source_q.front(node), true)
        } else {
            (self.vc_bufs.front_packet(base + feeder), false)
        };
        if let Assign::Out { port, vc } = assign {
            let oidx = (node * self.d + usize::from(port)) * self.v + usize::from(vc);
            debug_assert!(!self.out_alloc.get(oidx), "allocating an owned VC");
            self.out_alloc.set(oidx, true);
            if usize::from(vc) < self.escape_vcs {
                self.escaped.set(pid as usize, true);
                stage.escape_allocs += 1;
            }
        }
        if is_inj {
            let id = self.source_q.pop_front(node);
            debug_assert_eq!(id, pid);
            if self.source_q.is_empty(node) {
                self.srcq_nodes.remove(node);
            }
            self.inj_nodes.insert(node);
            self.inj.set(
                node,
                InjState {
                    active: Some(id),
                    sent: 0,
                    assign,
                    routed_at: now,
                },
            );
        } else {
            let idx = base + feeder;
            self.set_assign_local(idx, assign);
            self.vc_routed_at.set(idx, now);
            self.vc_blocked.set(idx, 0);
            if matches!(assign, Assign::Out { .. }) && self.recovery_timeout > 0 {
                let timeout = self.recovery_timeout;
                // Safe plain read: no flit moves during the route phase.
                let last_move = self.packets.last_move_plain(pid);
                let d = (last_move + timeout)
                    .next_multiple_of(timeout)
                    .max(now.next_multiple_of(timeout));
                self.wheel.schedule(idx, d);
            }
        }
    }

    /// Applies one shard's local switch ops (mirror of the sequential
    /// `Network::apply_switch_ops`, minus deliveries and cross-shard
    /// handoffs, which are boundary ops).
    ///
    /// # Safety
    ///
    /// Caller holds the unique apply ticket for this shard; every move's
    /// source *and* downstream VC lie in this shard's node range.
    pub(crate) unsafe fn apply_switch_ops_local(&self, now: u64, stage: &mut ShardStage) {
        stage.applied_total += stage.switch_ops.len() as u64;
        for i in 0..stage.switch_ops.len() {
            let SwitchOp { node, port, pick } = stage.switch_ops[i];
            let (node, port, pick) = (node as usize, usize::from(port), usize::from(pick));
            self.out_rr.set(node * self.nports + port, pick + 1);
            self.move_flit_local(now, node, pick, stage);
        }
        stage.switch_ops.clear();
    }

    /// Mirror of `Network::move_flit` for local (same-shard `Out`) moves.
    unsafe fn move_flit_local(&self, now: u64, node: usize, f: usize, stage: &mut ShardStage) {
        let (flit, assign, is_tail) = if f == self.fpn {
            let mut inj = self.inj.get(node);
            let pid = inj.active.expect("injection feeder has active packet");
            let idx = inj.sent;
            inj.sent += 1;
            let is_tail = inj.sent == self.packets.len_of(pid);
            if idx == 0 {
                self.packets.set_injected_at(pid, now);
                stage.injected += 1;
            }
            let assign = inj.assign;
            if is_tail {
                self.inj.set(node, InjState::idle());
                self.inj_nodes.remove(node);
            } else {
                self.inj.set(node, inj);
            }
            (
                Flit {
                    packet: pid,
                    idx,
                    ready_at: now,
                },
                assign,
                is_tail,
            )
        } else {
            let idx = node * self.fpn + f;
            let flit = self.vc_bufs.pop_front(idx);
            let assign = self.vc_assign.get(idx);
            let is_tail = flit.idx + 1 == self.packets.len_of(flit.packet);
            if is_tail {
                self.set_assign_local(idx, Assign::None);
            }
            self.note_vc_popped_local(idx, stage);
            (flit, assign, is_tail)
        };

        self.packets.set_last_move(flit.packet, now);
        stage.progressed = true;
        match assign {
            Assign::Out { port, vc } => {
                let oidx = (node * self.d + usize::from(port)) * self.v + usize::from(vc);
                let didx = self.downstream.get(oidx) as usize;
                if is_tail {
                    debug_assert!(self.out_alloc.get(oidx));
                    self.out_alloc.set(oidx, false);
                }
                self.vc_bufs.push_back(
                    didx,
                    Flit {
                        ready_at: now + self.hop_latency,
                        ..flit
                    },
                );
                self.note_vc_filled_local(didx, stage);
            }
            Assign::Delivery | Assign::None | Assign::AwaitToken | Assign::Recovery => {
                unreachable!("deliveries and cross-shard handoffs are boundary ops")
            }
        }
    }
}

// ---------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------

/// Which per-cycle pass a dispatch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pass {
    Route,
    Switch,
}

/// One dispatched pass: everything a participant needs to claim and
/// execute shard work. Published into the pool's job slot before the
/// tickets open; all pointers are valid for the duration of the pass
/// (the coordinator blocks in `WorkerPool::run` until every ticket is
/// claimed and completed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub kind: Pass,
    pub net: *const Network,
    pub ctx: ApplyCtx,
    pub stages: *mut ShardStage,
    pub shards: usize,
    pub now: u64,
}

/// Wall-clock split of the cycle pipeline's phases, accumulated only
/// when explicitly enabled (`Network::set_phase_stats`) — the hot path
/// pays one branch per phase otherwise. Informational: feeds the bench's
/// `decide/apply/barrier` time-split metrics, never simulation results.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseStats {
    /// Nanoseconds the caller's thread spent in decide work.
    pub decide_ns: u64,
    /// Nanoseconds spent applying (local ops, boundary tails, folds).
    pub apply_ns: u64,
    /// Nanoseconds spent waiting on the ticket barrier for other
    /// participants (zero when the caller claims every ticket itself).
    pub barrier_ns: u64,
}

/// Shared state of one worker pool. The job slot is protected by the
/// ticket protocol, not a lock: participants may read it only between
/// winning a ticket (an `AcqRel` RMW on a counter the coordinator reset
/// with `Release` *after* writing the slot) and bumping the matching
/// done-counter — so every read is ordered after the write it observes,
/// and the coordinator's end-of-pass `Acquire` wait orders all reads
/// before the next overwrite.
struct PoolShared {
    /// Shard count, fixed for the pool's lifetime (the pool is rebuilt on
    /// re-partition).
    shards: usize,
    /// The current pass (see the struct docs for the access protocol).
    job: UnsafeCell<MaybeUninit<Job>>,
    /// Decide tickets: `fetch_add` < `shards` wins that shard's decide.
    decide_next: AtomicUsize,
    /// Decides completed this pass.
    decide_done: AtomicUsize,
    /// Local-apply tickets.
    apply_next: AtomicUsize,
    /// Local applies completed this pass (the coordinator's completion
    /// condition).
    apply_done: AtomicUsize,
    /// Tells workers to exit (checked in the wait loop and before
    /// parking).
    shutdown: AtomicBool,
    /// Per-worker parked flags, so a dispatch can skip the unpark syscall
    /// for workers that are spinning (and, on a single-core host, skip
    /// waking parked workers at all outside rare probes).
    parked: Vec<AtomicBool>,
}

use std::cell::UnsafeCell;

// SAFETY: the job slot's access protocol is documented on the struct;
// everything else is atomic.
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// Iterations a worker spins on the ticket counter before parking.
const SPIN_LIMIT: u32 = 1 << 14;
/// On a single-core host parked workers are not woken per dispatch (the
/// coordinator claims every ticket faster than a futex wake); they are
/// re-probed this often in case the core count was misdetected or grows.
const WAKE_PROBE: u64 = 4096;
/// Spins before a barrier wait starts yielding the CPU (on one core the
/// claiming participant needs the timeslice to finish).
const WAIT_SPINS: u32 = 128;

/// `S - 1` persistent worker threads executing parallel passes for one
/// shard plan, plus the caller's thread as a full participant. See the
/// module docs for the protocol. Dropping the pool shuts the workers
/// down and joins them.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Whether this host has more than one core: if not, parked workers
    /// stay parked (the coordinator inlines all work) except for probes.
    multi: bool,
    dispatches: u64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("multi", &self.multi)
            .field("dispatches", &self.dispatches)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool for `shards` shards (`shards - 1` workers; the
    /// caller's thread is the remaining participant).
    pub(crate) fn new(shards: usize) -> Self {
        debug_assert!(shards > 1);
        let workers = shards - 1;
        let shared = Arc::new(PoolShared {
            shards,
            job: UnsafeCell::new(MaybeUninit::uninit()),
            // Exhausted until the first dispatch opens the tickets.
            decide_next: AtomicUsize::new(shards),
            decide_done: AtomicUsize::new(shards),
            apply_next: AtomicUsize::new(shards),
            apply_done: AtomicUsize::new(shards),
            shutdown: AtomicBool::new(false),
            parked: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stcc-shard-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn shard worker")
            })
            .collect();
        let multi = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        WorkerPool {
            shared,
            handles,
            multi,
            dispatches: 0,
        }
    }

    /// Executes one pass to completion: publishes `job`, opens the
    /// tickets, wakes workers per the host policy, participates from the
    /// caller's thread, and returns once every shard's decide and local
    /// apply have landed. The sequential boundary tail is the caller's
    /// job afterwards.
    pub(crate) fn run(&mut self, job: Job, stats: Option<&mut PhaseStats>) {
        let sh = &*self.shared;
        debug_assert_eq!(job.shards, sh.shards);
        // SAFETY: tickets are exhausted and the previous pass's Acquire
        // wait ordered every reader before now — nobody can touch the
        // slot until the ticket counters below reopen it.
        unsafe { (*sh.job.get()).write(job) };
        sh.apply_done.store(0, Ordering::Relaxed);
        sh.decide_done.store(0, Ordering::Relaxed);
        sh.apply_next.store(0, Ordering::Release);
        sh.decide_next.store(0, Ordering::SeqCst);
        self.dispatches += 1;
        if self.multi || self.dispatches.is_multiple_of(WAKE_PROBE) {
            for (w, h) in self.handles.iter().enumerate() {
                if sh.parked[w].load(Ordering::SeqCst) {
                    h.thread().unpark();
                }
            }
        }
        match stats {
            None => {
                participate(sh);
                wait_count(&sh.apply_done, sh.shards);
            }
            Some(st) => {
                let t0 = std::time::Instant::now();
                decide_claims(sh);
                let t1 = std::time::Instant::now();
                wait_count(&sh.decide_done, sh.shards);
                let t2 = std::time::Instant::now();
                apply_claims(sh);
                let t3 = std::time::Instant::now();
                wait_count(&sh.apply_done, sh.shards);
                let t4 = std::time::Instant::now();
                st.decide_ns += (t1 - t0).as_nanos() as u64;
                st.barrier_ns += ((t2 - t1) + (t4 - t3)).as_nanos() as u64;
                st.apply_ns += (t3 - t2).as_nanos() as u64;
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spin-then-yield wait for a completion counter to reach `target`.
fn wait_count(counter: &AtomicUsize, target: usize) {
    let mut spins = 0u32;
    while counter.load(Ordering::Acquire) < target {
        spins += 1;
        if spins < WAIT_SPINS {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Claims and executes decide tickets until they run out.
fn decide_claims(sh: &PoolShared) {
    loop {
        let t = sh.decide_next.fetch_add(1, Ordering::AcqRel);
        if t >= sh.shards {
            return;
        }
        // SAFETY: the winning RMW above reads from (or after) the
        // coordinator's ticket-opening store, which was released after
        // the job write — see `PoolShared`.
        let job = unsafe { (*sh.job.get()).assume_init() };
        let net = unsafe { &*job.net };
        let (lo, hi) = (net.plan.bounds[t], net.plan.bounds[t + 1]);
        // SAFETY: ticket `t` is won exactly once per pass: exclusive.
        let stage = unsafe { &mut *job.stages.add(t) };
        match job.kind {
            Pass::Route => net.route_decide(job.now, lo, hi, stage),
            Pass::Switch => net.switch_decide(job.now, lo, hi, stage),
        }
        sh.decide_done.fetch_add(1, Ordering::AcqRel);
    }
}

/// Claims and executes local-apply tickets until they run out. A winner
/// first waits for every decide to land — the decide→apply barrier.
/// (The wait sits *inside* the loop so that a straggler from a previous
/// pass that claims into a fresh pass still honors the new pass's
/// barrier.)
fn apply_claims(sh: &PoolShared) {
    loop {
        let t = sh.apply_next.fetch_add(1, Ordering::AcqRel);
        if t >= sh.shards {
            return;
        }
        wait_count(&sh.decide_done, sh.shards);
        // SAFETY: as in `decide_claims`; additionally the barrier above
        // orders this read/`&mut` after the decide writer released it.
        let job = unsafe { (*sh.job.get()).assume_init() };
        let stage = unsafe { &mut *job.stages.add(t) };
        match job.kind {
            Pass::Route => unsafe { job.ctx.apply_route_ops_local(job.now, stage) },
            Pass::Switch => unsafe { job.ctx.apply_switch_ops_local(job.now, stage) },
        }
        sh.apply_done.fetch_add(1, Ordering::AcqRel);
    }
}

/// One full pass from any participant's perspective.
fn participate(sh: &PoolShared) {
    decide_claims(sh);
    apply_claims(sh);
}

/// A worker's life: spin on the ticket counter, participate when a pass
/// opens, park after a quiet spell (announce-then-recheck so a wake is
/// never lost), exit on shutdown.
fn worker_loop(sh: &PoolShared, me: usize) {
    let mut spins: u32 = 0;
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        if sh.decide_next.load(Ordering::SeqCst) < sh.shards {
            spins = 0;
            participate(sh);
            continue;
        }
        spins += 1;
        if spins < SPIN_LIMIT {
            std::hint::spin_loop();
            continue;
        }
        sh.parked[me].store(true, Ordering::SeqCst);
        if sh.decide_next.load(Ordering::SeqCst) >= sh.shards
            && !sh.shutdown.load(Ordering::Acquire)
        {
            std::thread::park();
        }
        sh.parked[me].store(false, Ordering::SeqCst);
        spins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_exactly_once() {
        for nodes in [1usize, 2, 63, 64, 65, 256] {
            for shards in [1usize, 2, 3, 4, 7, 300] {
                let plan = ShardPlan::new(shards, nodes, 8, 5);
                assert_eq!(plan.bounds[0], 0);
                assert_eq!(*plan.bounds.last().unwrap(), nodes);
                assert_eq!(plan.shards(), shards.min(nodes));
                for s in 0..plan.shards() {
                    assert!(
                        plan.bounds[s] < plan.bounds[s + 1],
                        "empty shard {s} of {shards} over {nodes} nodes"
                    );
                }
                for (node, &s) in plan.node_shard.iter().enumerate() {
                    let s = s as usize;
                    assert!((plan.bounds[s]..plan.bounds[s + 1]).contains(&node));
                }
            }
        }
    }

    #[test]
    fn tiny_networks_still_split() {
        // A 64-node network must genuinely split at 4 shards (ranges are
        // not word-aligned), so shard-invariance tests on tiny presets
        // are not vacuous.
        let plan = ShardPlan::new(4, 64, 8, 5);
        assert_eq!(plan.bounds, vec![0, 16, 32, 48, 64]);
    }

    #[test]
    fn census_rebuild_sums_ranges() {
        let mut plan = ShardPlan::new(2, 4, 8, 5);
        plan.rebuild_census(&[0b11, 0b1, 0, 0b111]);
        assert_eq!(plan.full_count, vec![3, 3]);
    }

    #[test]
    fn plan_construction_spawns_no_threads() {
        let plan = ShardPlan::new(8, 64, 8, 5);
        assert!(plan.pool.is_none(), "pool attachment is set_shards' job");
    }

    #[test]
    fn pool_tears_down_cleanly_without_a_dispatch() {
        // Spawn-and-drop must join promptly even if no pass ever ran
        // (workers are parked or spinning on exhausted tickets).
        for _ in 0..3 {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.handles.len(), 3);
            drop(pool);
        }
    }
}
