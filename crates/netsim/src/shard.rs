//! Intra-simulation sharding: the shard plan and per-shard op staging.
//!
//! One [`crate::Network`] is stepped across a fixed set of *shards* —
//! contiguous node ranges — with a deterministic per-cycle barrier. The
//! route and switch stages each split into two phases:
//!
//! 1. **Decide** (parallel): every shard scans its own node range of the
//!    *pre-phase* network state through a shared `&Network` borrow and
//!    stages its decisions as typed ops into its own [`ShardStage`]
//!    buffer. Nothing is mutated, so workers never race.
//! 2. **Apply** (sequential barrier): the staged ops are applied with
//!    full `&mut Network` access in canonical order — ascending shard,
//!    and within a shard in the order they were staged (ascending node).
//!    Because shards are contiguous ascending ranges, this reproduces a
//!    single global ascending-node application order for *any* shard
//!    count, which is what makes results bit-identical at `--shards
//!    1/2/4/…`.
//!
//! The plan is runtime-only configuration: it is never serialized and
//! never enters a checkpoint fingerprint, so a snapshot taken at S shards
//! restores at any S′ by construction. The op buffers are preallocated at
//! their per-cycle worst case, keeping the steady-state cycle pipeline
//! allocation-free (see `tests/zero_alloc.rs`).

use crate::network::Assign;

/// One staged routing-stage decision. Ops are applied in staging order,
/// which per node is: the arbiter cursor update, the winner's allocation
/// (if it routed), then blocked-cycle accounting per losing requester —
/// the exact write order of the sequential reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RouteOp {
    /// Demand-slotted round-robin cursor update of `node`'s arbiter.
    Rr { node: u32, cursor: u8 },
    /// The arbiter's winning feeder routed: perform the allocation tail
    /// (output-VC claim, escape marking, injection start or VC
    /// assignment + wheel enrollment).
    Win {
        node: u32,
        feeder: u8,
        assign: Assign,
    },
    /// A losing (or unroutable) requester accrues one blocked cycle.
    Blocked { idx: u32 },
    /// A requester tripped Disha's suspicion predicate: commit it to the
    /// recovery token queue.
    Suspect { idx: u32 },
}

/// One staged switch-stage decision: output channel `port` of `node`
/// moves one flit from feeder `pick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SwitchOp {
    pub node: u32,
    pub port: u8,
    pub pick: u8,
}

/// Per-shard staging buffer: the mailbox decisions travel through between
/// the parallel decide phase and the sequential apply barrier.
#[derive(Debug, Default)]
pub(crate) struct ShardStage {
    /// Ops staged by this shard's route decide, in node order.
    pub route_ops: Vec<RouteOp>,
    /// Ops staged by this shard's switch decide, in (node, port) order.
    pub switch_ops: Vec<SwitchOp>,
    /// Routers this shard's route decide visited (counter delta, folded
    /// into [`crate::counters::Counters`] at the barrier).
    pub route_visits: u64,
    /// Routers this shard's switch decide visited.
    pub switch_visits: u64,
    /// Ready flits stalled on faulted links / hot delivery channels this
    /// cycle (counter deltas).
    pub link_stalls: u64,
    pub hotspot_stalls: u64,
    /// Cumulative ops ever staged into / applied from this buffer. The
    /// audit's mailbox-conservation invariant: between cycles the two are
    /// equal and both op vectors are empty — every staged decision was
    /// applied, none invented.
    pub staged_total: u64,
    pub applied_total: u64,
}

impl ShardStage {
    fn with_capacity(route_cap: usize, switch_cap: usize) -> Self {
        ShardStage {
            route_ops: Vec::with_capacity(route_cap),
            switch_ops: Vec::with_capacity(switch_cap),
            ..ShardStage::default()
        }
    }
}

/// The shard partition of one network: contiguous node ranges, the
/// node→shard map, the per-shard full-buffer census and the per-shard op
/// buffers. Runtime-only: never serialized, never fingerprinted.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Shard `s` owns nodes `bounds[s]..bounds[s + 1]`. Ascending,
    /// `bounds[0] == 0`, last element == node count, every range
    /// non-empty.
    pub bounds: Vec<usize>,
    /// Which shard owns each node (inverse of `bounds`).
    pub node_shard: Vec<u32>,
    /// Per-shard count of completely full input VC buffers. Maintained
    /// incrementally alongside the global census; the network-wide
    /// `full_buffers` equals the fixed-order sum over shards.
    pub full_count: Vec<u32>,
    /// Per-shard decision mailboxes.
    pub stages: Vec<ShardStage>,
}

impl ShardPlan {
    /// Builds a plan with `shards` contiguous, near-equal node ranges.
    /// The effective shard count is clamped to `[1, nodes]`; ranges use
    /// the `s * nodes / shards` split so every shard is non-empty and
    /// sizes differ by at most one node (ranges are *not* word-aligned —
    /// workers mask bitset words at range edges).
    ///
    /// `fpn` is input-VC feeders per node (`d * v`), `nports` output
    /// channels per node (`d + 1`); both size the worst-case per-cycle op
    /// capacity: a router stages at most `fpn + 2` route ops (cursor +
    /// winner + one blocked entry per input feeder) and `nports` switch
    /// ops (one flit per output channel).
    pub fn new(shards: usize, nodes: usize, fpn: usize, nports: usize) -> Self {
        let shards = shards.clamp(1, nodes.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        for s in 0..=shards {
            bounds.push(s * nodes / shards);
        }
        let mut node_shard = vec![0u32; nodes];
        for s in 0..shards {
            for owner in &mut node_shard[bounds[s]..bounds[s + 1]] {
                *owner = s as u32;
            }
        }
        let stages = (0..shards)
            .map(|s| {
                let span = bounds[s + 1] - bounds[s];
                ShardStage::with_capacity(span * (fpn + 2), span * nports)
            })
            .collect();
        ShardPlan {
            bounds,
            node_shard,
            full_count: vec![0; shards],
            stages,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.stages.len()
    }

    /// Recomputes the per-shard census from the occupancy bit-planes
    /// (after a restore or a re-partition).
    pub fn rebuild_census(&mut self, vc_full: &[u64]) {
        for (s, count) in self.full_count.iter_mut().enumerate() {
            *count = vc_full[self.bounds[s]..self.bounds[s + 1]]
                .iter()
                .map(|w| w.count_ones())
                .sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_exactly_once() {
        for nodes in [1usize, 2, 63, 64, 65, 256] {
            for shards in [1usize, 2, 3, 4, 7, 300] {
                let plan = ShardPlan::new(shards, nodes, 8, 5);
                assert_eq!(plan.bounds[0], 0);
                assert_eq!(*plan.bounds.last().unwrap(), nodes);
                assert_eq!(plan.shards(), shards.min(nodes));
                for s in 0..plan.shards() {
                    assert!(
                        plan.bounds[s] < plan.bounds[s + 1],
                        "empty shard {s} of {shards} over {nodes} nodes"
                    );
                }
                for (node, &s) in plan.node_shard.iter().enumerate() {
                    let s = s as usize;
                    assert!((plan.bounds[s]..plan.bounds[s + 1]).contains(&node));
                }
            }
        }
    }

    #[test]
    fn tiny_networks_still_split() {
        // A 64-node network must genuinely split at 4 shards (ranges are
        // not word-aligned), so shard-invariance tests on tiny presets
        // are not vacuous.
        let plan = ShardPlan::new(4, 64, 8, 5);
        assert_eq!(plan.bounds, vec![0, 16, 32, 48, 64]);
    }

    #[test]
    fn census_rebuild_sums_ranges() {
        let mut plan = ShardPlan::new(2, 4, 8, 5);
        plan.rebuild_census(&[0b11, 0b1, 0, 0b111]);
        assert_eq!(plan.full_count, vec![3, 3]);
    }
}
