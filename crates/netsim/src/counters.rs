/// Aggregate event counters of a [`Network`](crate::Network), cumulative
/// since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Packets accepted into source queues.
    pub generated_packets: u64,
    /// Generation attempts refused because the source queue was full
    /// (bounds open-loop memory; counted so offered load stays auditable).
    pub refused_generations: u64,
    /// Packets whose header has entered the network.
    pub injected_packets: u64,
    /// Packets fully consumed at their destination.
    pub delivered_packets: u64,
    /// Flits consumed at destinations (the paper's throughput metric).
    pub delivered_flits: u64,
    /// Packets that finished through the Disha recovery network.
    pub recovered_packets: u64,
    /// Recovery-token grants (deadlock suspicions acted upon).
    pub recovery_timeouts: u64,
    /// Headers that were allocated an escape virtual channel.
    pub escape_allocations: u64,
    /// Injection-gate denials (one per throttled packet-cycle).
    pub throttled_injections: u64,
    /// Cycles a flit was ready to cross a network link that a fault plan
    /// had stalled (zero without installed faults).
    pub link_stall_cycles: u64,
    /// Cycles a flit was ready for a delivery channel that a hotspot fault
    /// had stalled (zero without installed faults).
    pub hotspot_stall_cycles: u64,
    /// Injection stage: nodes whose injection gate was consulted (a packet
    /// was waiting and the interface was free).
    pub stage_inject_visits: u64,
    /// Routing stage: nodes whose central arbiter actually ran (at least
    /// one routable header or an admitted injection).
    pub stage_route_visits: u64,
    /// Starvation stage: timer-wheel entries whose deadline came due and
    /// were evaluated against the starvation predicate.
    pub stage_starvation_checks: u64,
    /// Switch stage: nodes whose output channels were arbitrated (buffered
    /// flits or an active injection).
    pub stage_switch_visits: u64,
    /// Recovery drain: cycles an active Disha recovery advanced.
    pub stage_drain_steps: u64,
}

/// Per-stage work performed by the cycle pipeline, in *work items* (node or
/// entry visits) — the deterministic denominator-free view of where cycles
/// go. Shares of the total correlate with wall-clock per stage because
/// every visit does O(1)–O(feeders) work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageCycles {
    /// Injection-gate consultations.
    pub inject: u64,
    /// Routing-arbiter runs.
    pub route: u64,
    /// Timer-wheel deadline evaluations.
    pub starvation: u64,
    /// Switch-stage node visits.
    pub switch: u64,
    /// Recovery-drain advances.
    pub drain: u64,
}

impl StageCycles {
    /// Sum over all stages (the share denominator).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.inject + self.route + self.starvation + self.switch + self.drain
    }
}

impl Counters {
    /// The per-stage work breakdown (see [`StageCycles`]).
    #[must_use]
    pub fn stage_cycles(&self) -> StageCycles {
        StageCycles {
            inject: self.stage_inject_visits,
            route: self.stage_route_visits,
            starvation: self.stage_starvation_checks,
            switch: self.stage_switch_visits,
            drain: self.stage_drain_steps,
        }
    }

    /// Packets currently somewhere between generation and delivery.
    #[must_use]
    pub fn undelivered(&self) -> u64 {
        self.generated_packets - self.delivered_packets
    }

    /// Serializes every counter into `enc` (for checkpointing). Field
    /// order is part of the checkpoint format.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        for v in [
            self.generated_packets,
            self.refused_generations,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_flits,
            self.recovered_packets,
            self.recovery_timeouts,
            self.escape_allocations,
            self.throttled_injections,
            self.link_stall_cycles,
            self.hotspot_stall_cycles,
            self.stage_inject_visits,
            self.stage_route_visits,
            self.stage_starvation_checks,
            self.stage_switch_visits,
            self.stage_drain_steps,
        ] {
            enc.u64(v);
        }
    }

    /// Reads counters serialized with [`Counters::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream.
    pub fn restore_state(
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<Self, checkpoint::CheckpointError> {
        Ok(Counters {
            generated_packets: dec.u64()?,
            refused_generations: dec.u64()?,
            injected_packets: dec.u64()?,
            delivered_packets: dec.u64()?,
            delivered_flits: dec.u64()?,
            recovered_packets: dec.u64()?,
            recovery_timeouts: dec.u64()?,
            escape_allocations: dec.u64()?,
            throttled_injections: dec.u64()?,
            link_stall_cycles: dec.u64()?,
            hotspot_stall_cycles: dec.u64()?,
            stage_inject_visits: dec.u64()?,
            stage_route_visits: dec.u64()?,
            stage_starvation_checks: dec.u64()?,
            stage_switch_visits: dec.u64()?,
            stage_drain_steps: dec.u64()?,
        })
    }
}
