/// Aggregate event counters of a [`Network`](crate::Network), cumulative
/// since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Packets accepted into source queues.
    pub generated_packets: u64,
    /// Generation attempts refused because the source queue was full
    /// (bounds open-loop memory; counted so offered load stays auditable).
    pub refused_generations: u64,
    /// Packets whose header has entered the network.
    pub injected_packets: u64,
    /// Packets fully consumed at their destination.
    pub delivered_packets: u64,
    /// Flits consumed at destinations (the paper's throughput metric).
    pub delivered_flits: u64,
    /// Packets that finished through the Disha recovery network.
    pub recovered_packets: u64,
    /// Recovery-token grants (deadlock suspicions acted upon).
    pub recovery_timeouts: u64,
    /// Headers that were allocated an escape virtual channel.
    pub escape_allocations: u64,
    /// Injection-gate denials (one per throttled packet-cycle).
    pub throttled_injections: u64,
    /// Cycles a flit was ready to cross a network link that a fault plan
    /// had stalled (zero without installed faults).
    pub link_stall_cycles: u64,
    /// Cycles a flit was ready for a delivery channel that a hotspot fault
    /// had stalled (zero without installed faults).
    pub hotspot_stall_cycles: u64,
}

impl Counters {
    /// Packets currently somewhere between generation and delivery.
    #[must_use]
    pub fn undelivered(&self) -> u64 {
        self.generated_packets - self.delivered_packets
    }
}
