/// Aggregate event counters of a [`Network`](crate::Network), cumulative
/// since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Packets accepted into source queues.
    pub generated_packets: u64,
    /// Generation attempts refused because the source queue was full
    /// (bounds open-loop memory; counted so offered load stays auditable).
    pub refused_generations: u64,
    /// Packets whose header has entered the network.
    pub injected_packets: u64,
    /// Packets fully consumed at their destination.
    pub delivered_packets: u64,
    /// Flits consumed at destinations (the paper's throughput metric).
    pub delivered_flits: u64,
    /// Packets that finished through the Disha recovery network.
    pub recovered_packets: u64,
    /// Recovery-token grants (deadlock suspicions acted upon).
    pub recovery_timeouts: u64,
    /// Headers that were allocated an escape virtual channel.
    pub escape_allocations: u64,
    /// Injection-gate denials (one per throttled packet-cycle).
    pub throttled_injections: u64,
    /// Cycles a flit was ready to cross a network link that a fault plan
    /// had stalled (zero without installed faults).
    pub link_stall_cycles: u64,
    /// Cycles a flit was ready for a delivery channel that a hotspot fault
    /// had stalled (zero without installed faults).
    pub hotspot_stall_cycles: u64,
}

impl Counters {
    /// Packets currently somewhere between generation and delivery.
    #[must_use]
    pub fn undelivered(&self) -> u64 {
        self.generated_packets - self.delivered_packets
    }

    /// Serializes every counter into `enc` (for checkpointing). Field
    /// order is part of the checkpoint format.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        for v in [
            self.generated_packets,
            self.refused_generations,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_flits,
            self.recovered_packets,
            self.recovery_timeouts,
            self.escape_allocations,
            self.throttled_injections,
            self.link_stall_cycles,
            self.hotspot_stall_cycles,
        ] {
            enc.u64(v);
        }
    }

    /// Reads counters serialized with [`Counters::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream.
    pub fn restore_state(
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<Self, checkpoint::CheckpointError> {
        Ok(Counters {
            generated_packets: dec.u64()?,
            refused_generations: dec.u64()?,
            injected_packets: dec.u64()?,
            delivered_packets: dec.u64()?,
            delivered_flits: dec.u64()?,
            recovered_packets: dec.u64()?,
            recovery_timeouts: dec.u64()?,
            escape_allocations: dec.u64()?,
            throttled_injections: dec.u64()?,
            link_stall_cycles: dec.u64()?,
            hotspot_stall_cycles: dec.u64()?,
        })
    }
}
