//! Fixed-capacity ring buffers over flat per-network arenas.
//!
//! The cycle pipeline must be allocation-free in steady state (a counting
//! test allocator enforces this; see `tests/zero_alloc.rs`). Every queue the
//! pipeline touches per cycle therefore lives in one of these arenas,
//! allocated once at [`Network`](crate::Network) construction:
//!
//! * [`FlitRings`] — all flit edge buffers of one family (the input VCs, or
//!   the Disha deadlock buffers) as a structure-of-arrays arena: one flat
//!   array per flit field (`packet`, `idx`, `ready_at`) plus flat head/len
//!   cursors. Ring `r` owns slots `r * cap .. (r + 1) * cap`. A scan that
//!   only polls `ready_at` (the common case in the switch stage) touches a
//!   single densely packed array instead of striding over heap-scattered
//!   `VecDeque`s.
//! * [`IdRing`] — the same shape for `u32` payloads (source queues of
//!   `PacketId`, the recovery token queue of VC indices).
//! * [`DeliveryRing`] — the drained delivery-record queue. Capacity grows
//!   (amortized doubling) only while the consumer is *not* draining; a
//!   consumer that drains every gather period bounds it to O(period), and
//!   the steady-state push path never allocates.
//!
//! All rings are FIFO and preserve exactly the ordering semantics of the
//! `VecDeque`s they replaced, so simulation results are bit-identical.

use crate::packet::{DeliveredRecord, Flit, PacketId};

/// Structure-of-arrays arena of `rings` fixed-capacity flit FIFOs.
#[derive(Debug, Clone)]
pub(crate) struct FlitRings {
    cap: u32,
    head: Vec<u32>,
    len: Vec<u32>,
    packet: Vec<PacketId>,
    idx: Vec<u16>,
    ready: Vec<u64>,
}

impl FlitRings {
    /// An arena of `rings` empty rings of `cap` flits each.
    pub(crate) fn new(rings: usize, cap: usize) -> Self {
        let cap32 = u32::try_from(cap).expect("ring capacity fits u32");
        let slots = rings * cap;
        FlitRings {
            cap: cap32,
            head: vec![0; rings],
            len: vec![0; rings],
            packet: vec![0; slots],
            idx: vec![0; slots],
            ready: vec![0; slots],
        }
    }

    /// Slot index of logical position `i` of ring `r`.
    #[inline]
    fn slot(&self, r: usize, i: u32) -> usize {
        debug_assert!(i < self.len[r], "ring position out of range");
        let mut pos = self.head[r] + i;
        if pos >= self.cap {
            pos -= self.cap;
        }
        r * self.cap as usize + pos as usize
    }

    /// Number of flits currently in ring `r`.
    #[inline]
    pub(crate) fn len(&self, r: usize) -> usize {
        self.len[r] as usize
    }

    #[inline]
    pub(crate) fn is_empty(&self, r: usize) -> bool {
        self.len[r] == 0
    }

    #[inline]
    pub(crate) fn is_full(&self, r: usize) -> bool {
        self.len[r] == self.cap
    }

    /// The front flit of ring `r`, if any.
    #[inline]
    pub(crate) fn front(&self, r: usize) -> Option<Flit> {
        (self.len[r] != 0).then(|| self.get(r, 0))
    }

    /// `ready_at` of the front flit (ring must be non-empty).
    #[inline]
    pub(crate) fn front_ready_at(&self, r: usize) -> u64 {
        self.ready[self.slot(r, 0)]
    }

    /// `idx` of the front flit (ring must be non-empty).
    #[inline]
    pub(crate) fn front_idx(&self, r: usize) -> u16 {
        self.idx[self.slot(r, 0)]
    }

    /// Owning packet of the front flit (ring must be non-empty).
    #[inline]
    pub(crate) fn front_packet(&self, r: usize) -> PacketId {
        self.packet[self.slot(r, 0)]
    }

    /// The flit at logical position `i` (0 = front) of ring `r`.
    #[inline]
    pub(crate) fn get(&self, r: usize, i: usize) -> Flit {
        let s = self.slot(r, i as u32);
        Flit {
            packet: self.packet[s],
            idx: self.idx[s],
            ready_at: self.ready[s],
        }
    }

    /// Appends `f` to ring `r`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the ring is full; callers check credit
    /// before pushing, exactly as they did with the bounded `VecDeque`s.
    #[inline]
    pub(crate) fn push_back(&mut self, r: usize, f: Flit) {
        debug_assert!(!self.is_full(r), "flit ring overflow");
        let mut pos = self.head[r] + self.len[r];
        if pos >= self.cap {
            pos -= self.cap;
        }
        let s = r * self.cap as usize + pos as usize;
        self.packet[s] = f.packet;
        self.idx[s] = f.idx;
        self.ready[s] = f.ready_at;
        self.len[r] += 1;
    }

    /// Removes and returns the front flit of ring `r`.
    #[inline]
    pub(crate) fn pop_front(&mut self, r: usize) -> Flit {
        debug_assert!(self.len[r] != 0, "pop from empty flit ring");
        let f = self.get(r, 0);
        let mut h = self.head[r] + 1;
        if h >= self.cap {
            h = 0;
        }
        self.head[r] = h;
        self.len[r] -= 1;
        f
    }

    /// Empties ring `r`, resetting its head to slot 0.
    #[cfg(test)]
    pub(crate) fn reset(&mut self, r: usize) {
        self.head[r] = 0;
        self.len[r] = 0;
    }

    /// Raw shared-mutable view over the arena for the parallel shard-local
    /// apply ([`crate::shard::ApplyCtx`]). Valid while the arena is neither
    /// moved nor reallocated; see [`FlitRingsView`] for the aliasing rule.
    pub(crate) fn view(&mut self) -> FlitRingsView {
        FlitRingsView {
            cap: self.cap,
            rings: self.head.len(),
            head: self.head.as_mut_ptr(),
            len: self.len.as_mut_ptr(),
            packet: self.packet.as_mut_ptr(),
            idx: self.idx.as_mut_ptr(),
            ready: self.ready.as_mut_ptr(),
        }
    }
}

/// Raw view into a [`FlitRings`] arena, used by the sharded apply phase to
/// mutate rings through a shared context. Mirrors the safe push/pop logic
/// exactly.
///
/// # Safety contract
///
/// During a parallel apply, each ring `r` is touched by at most one thread
/// (the shard-ownership discipline of [`crate::shard::ApplyCtx`]): a ring's
/// popper is the node that owns it and a concurrent pusher into the same
/// ring only exists for cross-shard handoffs, which are deferred to the
/// sequential tail. All methods are `unsafe`: the caller asserts exclusive
/// access to ring `r` for the duration of the call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitRingsView {
    cap: u32,
    rings: usize,
    head: *mut u32,
    len: *mut u32,
    packet: *mut PacketId,
    idx: *mut u16,
    ready: *mut u64,
}

// SAFETY: the pointers target one arena partitioned by ring ownership; the
// per-ring exclusivity contract above makes cross-thread use sound.
unsafe impl Send for FlitRingsView {}
unsafe impl Sync for FlitRingsView {}

impl FlitRingsView {
    #[inline]
    unsafe fn slot(&self, r: usize, i: u32) -> usize {
        debug_assert!(r < self.rings);
        debug_assert!(i < *self.len.add(r), "ring position out of range");
        let mut pos = *self.head.add(r) + i;
        if pos >= self.cap {
            pos -= self.cap;
        }
        r * self.cap as usize + pos as usize
    }

    /// See [`FlitRings::front_packet`].
    #[inline]
    pub(crate) unsafe fn front_packet(&self, r: usize) -> PacketId {
        *self.packet.add(self.slot(r, 0))
    }

    /// See [`FlitRings::pop_front`].
    #[inline]
    pub(crate) unsafe fn pop_front(&self, r: usize) -> Flit {
        debug_assert!(*self.len.add(r) != 0, "pop from empty flit ring");
        let s = self.slot(r, 0);
        let f = Flit {
            packet: *self.packet.add(s),
            idx: *self.idx.add(s),
            ready_at: *self.ready.add(s),
        };
        let mut h = *self.head.add(r) + 1;
        if h >= self.cap {
            h = 0;
        }
        *self.head.add(r) = h;
        *self.len.add(r) -= 1;
        f
    }

    /// See [`FlitRings::push_back`].
    #[inline]
    pub(crate) unsafe fn push_back(&self, r: usize, f: Flit) {
        debug_assert!(r < self.rings);
        debug_assert!(*self.len.add(r) < self.cap, "flit ring overflow");
        let mut pos = *self.head.add(r) + *self.len.add(r);
        if pos >= self.cap {
            pos -= self.cap;
        }
        let s = r * self.cap as usize + pos as usize;
        *self.packet.add(s) = f.packet;
        *self.idx.add(s) = f.idx;
        *self.ready.add(s) = f.ready_at;
        *self.len.add(r) += 1;
    }

    /// See [`FlitRings::len`].
    #[inline]
    pub(crate) unsafe fn len(&self, r: usize) -> usize {
        debug_assert!(r < self.rings);
        *self.len.add(r) as usize
    }
}

/// Arena of `rings` fixed-capacity `u32` FIFOs (packet ids, VC indices).
#[derive(Debug, Clone)]
pub(crate) struct IdRing {
    cap: u32,
    head: Vec<u32>,
    len: Vec<u32>,
    data: Vec<u32>,
}

impl IdRing {
    /// An arena of `rings` empty rings of `cap` entries each.
    pub(crate) fn new(rings: usize, cap: usize) -> Self {
        let cap32 = u32::try_from(cap).expect("ring capacity fits u32");
        IdRing {
            cap: cap32,
            head: vec![0; rings],
            len: vec![0; rings],
            data: vec![0; rings * cap],
        }
    }

    #[inline]
    pub(crate) fn len(&self, r: usize) -> usize {
        self.len[r] as usize
    }

    #[inline]
    pub(crate) fn is_empty(&self, r: usize) -> bool {
        self.len[r] == 0
    }

    #[inline]
    pub(crate) fn is_full(&self, r: usize) -> bool {
        self.len[r] == self.cap
    }

    /// The entry at logical position `i` (0 = front) of ring `r`.
    #[inline]
    pub(crate) fn get(&self, r: usize, i: usize) -> u32 {
        debug_assert!((i as u32) < self.len[r], "ring position out of range");
        let mut pos = self.head[r] + i as u32;
        if pos >= self.cap {
            pos -= self.cap;
        }
        self.data[r * self.cap as usize + pos as usize]
    }

    /// The front entry of ring `r` (ring must be non-empty).
    #[inline]
    pub(crate) fn front(&self, r: usize) -> u32 {
        self.get(r, 0)
    }

    /// Appends `v` to ring `r`.
    #[inline]
    pub(crate) fn push_back(&mut self, r: usize, v: u32) {
        debug_assert!(!self.is_full(r), "id ring overflow");
        let mut pos = self.head[r] + self.len[r];
        if pos >= self.cap {
            pos -= self.cap;
        }
        self.data[r * self.cap as usize + pos as usize] = v;
        self.len[r] += 1;
    }

    /// Removes and returns the front entry of ring `r`.
    #[inline]
    pub(crate) fn pop_front(&mut self, r: usize) -> u32 {
        let v = self.front(r);
        let mut h = self.head[r] + 1;
        if h >= self.cap {
            h = 0;
        }
        self.head[r] = h;
        self.len[r] -= 1;
        v
    }

    /// Empties ring `r`, resetting its head to slot 0.
    #[cfg(test)]
    pub(crate) fn reset(&mut self, r: usize) {
        self.head[r] = 0;
        self.len[r] = 0;
    }

    /// Raw shared-mutable view; same contract as [`FlitRings::view`].
    pub(crate) fn view(&mut self) -> IdRingView {
        IdRingView {
            cap: self.cap,
            rings: self.head.len(),
            head: self.head.as_mut_ptr(),
            len: self.len.as_mut_ptr(),
            data: self.data.as_mut_ptr(),
        }
    }
}

/// Raw view into an [`IdRing`] arena for the parallel shard-local apply.
/// Same per-ring exclusivity contract as [`FlitRingsView`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct IdRingView {
    cap: u32,
    rings: usize,
    head: *mut u32,
    len: *mut u32,
    data: *mut u32,
}

// SAFETY: see `FlitRingsView`.
unsafe impl Send for IdRingView {}
unsafe impl Sync for IdRingView {}

impl IdRingView {
    /// See [`IdRing::front`].
    #[inline]
    pub(crate) unsafe fn front(&self, r: usize) -> u32 {
        debug_assert!(r < self.rings);
        debug_assert!(*self.len.add(r) != 0, "front of empty id ring");
        let pos = *self.head.add(r);
        *self.data.add(r * self.cap as usize + pos as usize)
    }

    /// See [`IdRing::pop_front`].
    #[inline]
    pub(crate) unsafe fn pop_front(&self, r: usize) -> u32 {
        let v = self.front(r);
        let mut h = *self.head.add(r) + 1;
        if h >= self.cap {
            h = 0;
        }
        *self.head.add(r) = h;
        *self.len.add(r) -= 1;
        v
    }

    /// See [`IdRing::is_empty`].
    #[inline]
    pub(crate) unsafe fn is_empty(&self, r: usize) -> bool {
        debug_assert!(r < self.rings);
        *self.len.add(r) == 0
    }
}

/// The delivery-record queue: a circular buffer drained by the consumer.
///
/// Pushing never allocates while spare capacity exists; when the ring is
/// full it doubles (the only allocation), so a consumer that drains every
/// gather period pins the capacity at the per-period high-water mark —
/// memory is O(period), not O(run length).
#[derive(Debug, Default)]
pub(crate) struct DeliveryRing {
    buf: Vec<DeliveredRecord>,
    head: usize,
    len: usize,
}

impl DeliveryRing {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The record at logical position `i` (0 = oldest undrained).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> DeliveredRecord {
        debug_assert!(i < self.len, "delivery ring position out of range");
        let mut pos = self.head + i;
        if pos >= self.buf.len() {
            pos -= self.buf.len();
        }
        self.buf[pos]
    }

    /// Appends a record, doubling the backing storage only when full.
    pub(crate) fn push(&mut self, rec: DeliveredRecord) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let mut pos = self.head + self.len;
        if pos >= self.buf.len() {
            pos -= self.buf.len();
        }
        self.buf[pos] = rec;
        self.len += 1;
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.buf.len() * 2).max(64);
        let mut buf = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            buf.push(self.get(i));
        }
        buf.resize(
            new_cap,
            DeliveredRecord {
                src: 0,
                dst: 0,
                generated_at: 0,
                injected_at: 0,
                delivered_at: 0,
                len: 0,
                recovered: false,
            },
        );
        self.buf = buf;
        self.head = 0;
    }

    /// Drains every record in FIFO order. Records not consumed by the
    /// returned iterator are still removed when it drops (the semantics of
    /// the `Vec::drain` this replaces).
    pub(crate) fn drain(&mut self) -> DeliveryDrain<'_> {
        DeliveryDrain { ring: self }
    }
}

/// Draining iterator over a [`DeliveryRing`]; see [`DeliveryRing::drain`].
#[derive(Debug)]
pub struct DeliveryDrain<'a> {
    ring: &'a mut DeliveryRing,
}

impl Iterator for DeliveryDrain<'_> {
    type Item = DeliveredRecord;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.ring.len == 0 {
            return None;
        }
        let rec = self.ring.get(0);
        self.ring.head += 1;
        if self.ring.head >= self.ring.buf.len() {
            self.ring.head = 0;
        }
        self.ring.len -= 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.ring.len, Some(self.ring.len))
    }
}

impl ExactSizeIterator for DeliveryDrain<'_> {}

impl Drop for DeliveryDrain<'_> {
    fn drop(&mut self) {
        // Unconsumed records are removed, as with `Vec::drain(..)`.
        self.ring.head = 0;
        self.ring.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Case count, widened under the `slow-proptests` feature (repo
    /// convention; see `tests/flow_prop.rs`).
    const CASES: u64 = if cfg!(feature = "slow-proptests") {
        64
    } else {
        8
    };

    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn flit(tag: u64) -> Flit {
        Flit {
            packet: (tag & 0xFFFF) as PacketId,
            idx: (tag >> 16) as u16 & 0xFF,
            ready_at: tag >> 24,
        }
    }

    /// Property: a FlitRings ring behaves exactly like a capacity-checked
    /// VecDeque under a random push/pop interleaving (wrap-around included:
    /// the sequences are much longer than the capacity).
    #[test]
    fn flit_ring_matches_vecdeque_model() {
        for case in 0..CASES {
            let mut rng = 0xF117_0000 + case;
            let cap = 1 + (mix(&mut rng) as usize) % 9; // 1..=9
            let rings = 3;
            let mut arena = FlitRings::new(rings, cap);
            let mut model: Vec<VecDeque<Flit>> = vec![VecDeque::new(); rings];
            for step in 0..2_000u64 {
                let r = (mix(&mut rng) as usize) % rings;
                if mix(&mut rng).is_multiple_of(2) && model[r].len() < cap {
                    let f = flit(step);
                    arena.push_back(r, f);
                    model[r].push_back(f);
                } else if !model[r].is_empty() {
                    assert_eq!(arena.pop_front(r), model[r].pop_front().unwrap());
                }
                assert_eq!(arena.len(r), model[r].len());
                assert_eq!(arena.is_empty(r), model[r].is_empty());
                assert_eq!(arena.is_full(r), model[r].len() == cap);
                assert_eq!(arena.front(r), model[r].front().copied());
                if let Some(&front) = model[r].front() {
                    assert_eq!(arena.front_ready_at(r), front.ready_at);
                    assert_eq!(arena.front_idx(r), front.idx);
                    assert_eq!(arena.front_packet(r), front.packet);
                }
                for (i, &f) in model[r].iter().enumerate() {
                    assert_eq!(arena.get(r, i), f);
                }
            }
        }
    }

    /// Same model property for the u32 rings.
    #[test]
    fn id_ring_matches_vecdeque_model() {
        for case in 0..CASES {
            let mut rng = 0x1D00_0000 + case;
            let cap = 1 + (mix(&mut rng) as usize) % 7;
            let mut ring = IdRing::new(2, cap);
            let mut model: Vec<VecDeque<u32>> = vec![VecDeque::new(); 2];
            for step in 0..1_500u32 {
                let r = (mix(&mut rng) as usize) % 2;
                if !mix(&mut rng).is_multiple_of(3) && model[r].len() < cap {
                    ring.push_back(r, step);
                    model[r].push_back(step);
                } else if !model[r].is_empty() {
                    assert_eq!(ring.pop_front(r), model[r].pop_front().unwrap());
                }
                assert_eq!(ring.len(r), model[r].len());
                assert_eq!(ring.is_full(r), model[r].len() == cap);
                for (i, &v) in model[r].iter().enumerate() {
                    assert_eq!(ring.get(r, i), v);
                }
            }
        }
    }

    fn rec(tag: u64) -> DeliveredRecord {
        DeliveredRecord {
            src: (tag & 0xFF) as usize,
            dst: ((tag >> 8) & 0xFF) as usize,
            generated_at: tag,
            injected_at: tag + 1,
            delivered_at: tag + 2,
            len: 16,
            recovered: tag.is_multiple_of(5),
        }
    }

    /// The delivery ring preserves FIFO order across partial drains and
    /// growth, and a dropped drain discards the remainder.
    #[test]
    fn delivery_ring_drains_fifo_across_growth() {
        for case in 0..CASES {
            let mut rng = 0xDE11_0000 + case;
            let mut ring = DeliveryRing::default();
            let mut model: VecDeque<DeliveredRecord> = VecDeque::new();
            for step in 0..800u64 {
                if !mix(&mut rng).is_multiple_of(4) {
                    ring.push(rec(step));
                    model.push_back(rec(step));
                } else {
                    let drained: Vec<_> = ring.drain().collect();
                    let expect: Vec<_> = model.drain(..).collect();
                    assert_eq!(drained, expect);
                }
                assert_eq!(ring.len(), model.len());
            }
            // A partially consumed drain still removes everything.
            ring.drain().for_each(drop);
            for step in 0..10u64 {
                ring.push(rec(step));
            }
            let mut d = ring.drain();
            assert_eq!(d.next(), Some(rec(0)));
            assert_eq!(d.len(), 9);
            drop(d);
            assert_eq!(ring.len(), 0);
        }
    }

    #[test]
    fn reset_empties_a_wrapped_ring() {
        let mut arena = FlitRings::new(1, 4);
        for i in 0..4 {
            arena.push_back(0, flit(i));
        }
        arena.pop_front(0);
        arena.pop_front(0);
        arena.push_back(0, flit(9)); // head is now wrapped
        arena.reset(0);
        assert!(arena.is_empty(0));
        arena.push_back(0, flit(7));
        assert_eq!(arena.get(0, 0), flit(7));

        let mut ids = IdRing::new(1, 3);
        ids.push_back(0, 1);
        ids.push_back(0, 2);
        ids.pop_front(0);
        ids.push_back(0, 3);
        ids.reset(0);
        assert!(ids.is_empty(0));
    }
}
