//! Full-state capture of a [`Network`] for deterministic checkpoint/restore.
//!
//! The serialized state covers *everything* the cycle pipeline reads or
//! writes: edge buffers and routing assignments of every input VC, output
//! VC allocations, injection interfaces, source queues, the packet store
//! (including free-list order, which determines future id assignment),
//! sticky escape flags, the Disha deadlock buffers and in-progress recovery
//! job, both round-robin cursor families, the active-VC worklist, counters
//! and watchdog markers. Configuration (`NetConfig`, topology, installed
//! fault plan) is *not* serialized: a snapshot is restored into a network
//! freshly built from the same configuration, and the caller guards that
//! with a configuration fingerprint at the container level.
//!
//! Queues live in ring-buffer arenas ([`crate::ring`]) but serialize as
//! their *logical* FIFO contents (front to back), so the byte format is
//! independent of each ring's physical head position — a restored ring
//! starts at head 0, which is behaviorally and serially equivalent.
//!
//! The golden property — restore + run to end is bit-identical to the
//! uninterrupted run — holds because after [`Network::restore_state`] every
//! field that influences any future cycle equals the original's. The only
//! skipped fields are per-cycle scratch (the injection allowance, the
//! recovery path's recycled backing storage), which the pipeline rewrites
//! before reading.

use crate::network::{Assign, InjState, Network, RecoveryJob};
use crate::packet::{Flit, PacketStore};
use crate::ring::{DeliveryRing, FlitRings, IdRing};
use checkpoint::{CheckpointError, Dec, Enc};

use crate::counters::Counters;

fn enc_assign(enc: &mut Enc, a: Assign) {
    match a {
        Assign::None => enc.u8(0),
        Assign::Out { port, vc } => {
            enc.u8(1);
            enc.u8(port);
            enc.u8(vc);
        }
        Assign::Delivery => enc.u8(2),
        Assign::AwaitToken => enc.u8(3),
        Assign::Recovery => enc.u8(4),
    }
}

fn dec_assign(dec: &mut Dec<'_>) -> Result<Assign, CheckpointError> {
    Ok(match dec.u8()? {
        0 => Assign::None,
        1 => Assign::Out {
            port: dec.u8()?,
            vc: dec.u8()?,
        },
        2 => Assign::Delivery,
        3 => Assign::AwaitToken,
        4 => Assign::Recovery,
        _ => return Err(CheckpointError::Corrupt("bad assignment tag")),
    })
}

fn enc_flit(enc: &mut Enc, f: Flit) {
    enc.u32(f.packet);
    enc.u16(f.idx);
    enc.u64(f.ready_at);
}

fn dec_flit(dec: &mut Dec<'_>) -> Result<Flit, CheckpointError> {
    Ok(Flit {
        packet: dec.u32()?,
        idx: dec.u16()?,
        ready_at: dec.u64()?,
    })
}

/// Serializes ring `r` of a flit arena as its logical front-to-back
/// contents (the same bytes a `VecDeque` walk would produce).
fn enc_flit_ring(enc: &mut Enc, rings: &FlitRings, r: usize) {
    enc.usize(rings.len(r));
    for i in 0..rings.len(r) {
        enc_flit(enc, rings.get(r, i));
    }
}

/// Decodes a flit queue into ring `r` of a (freshly reset) arena.
fn dec_flit_ring(
    dec: &mut Dec<'_>,
    rings: &mut FlitRings,
    r: usize,
    max: usize,
) -> Result<(), CheckpointError> {
    let n = dec.usize()?;
    if n > max {
        return Err(CheckpointError::Corrupt("flit queue exceeds capacity"));
    }
    for _ in 0..n {
        rings.push_back(r, dec_flit(dec)?);
    }
    Ok(())
}

impl Network {
    /// Serializes the complete mutable state into `enc`.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.u64(self.now);
        enc.u64(self.last_delivery_at);
        enc.u64(self.last_progress_at);
        enc.u32(self.full_buffers);
        self.counters.save_state(enc);

        let n_vcs = self.vc_assign.len();
        enc.usize(n_vcs);
        for idx in 0..n_vcs {
            enc_flit_ring(enc, &self.vc_bufs, idx);
            enc_assign(enc, self.vc_assign[idx]);
            enc.u64(self.vc_routed_at[idx]);
            enc.u64(self.vc_blocked[idx]);
            enc.bool(self.vc_queued[idx]);
        }
        for &b in &self.out_alloc {
            enc.bool(b);
        }
        for inj in &self.inj {
            enc.bool(inj.active.is_some());
            enc.u32(inj.active.unwrap_or(0));
            enc.u16(inj.sent);
            enc_assign(enc, inj.assign);
            enc.u64(inj.routed_at);
        }
        for node in 0..self.inj.len() {
            enc.usize(self.source_q.len(node));
            for i in 0..self.source_q.len(node) {
                enc.u32(self.source_q.get(node, i));
            }
        }
        self.packets.save_state(enc);
        enc.usize(self.escaped.len());
        for &b in &self.escaped {
            enc.bool(b);
        }
        for node in 0..self.inj.len() {
            enc_flit_ring(enc, &self.dl_bufs, node);
        }
        match &self.recovery {
            None => enc.bool(false),
            Some(job) => {
                enc.bool(true);
                enc.u32(job.packet);
                enc.usize(job.path.len());
                for &n in &job.path {
                    enc.usize(n);
                }
                enc.usize(job.src_vc);
                enc.bool(job.tail_in);
            }
        }
        for &c in &self.route_rr {
            enc.usize(c);
        }
        for &c in &self.out_rr {
            enc.usize(c);
        }
        for &m in &self.vc_busy {
            enc.u64(m);
        }
        // Starvation timer wheel: only the authoritative deadline array is
        // serialized (empty for deadlock-avoidance networks); bucket
        // occupancy is derived and rebuilt on restore, so the byte format
        // is independent of how far the wheel has revolved.
        enc.usize(self.wheel.len());
        for idx in 0..self.wheel.len() {
            enc.u64(self.wheel.deadline(idx));
        }
        enc.usize(self.token_queue.len(0));
        for i in 0..self.token_queue.len(0) {
            enc.usize(self.token_queue.get(0, i) as usize);
        }
        enc.usize(self.deliveries.len());
        for i in 0..self.deliveries.len() {
            let d = self.deliveries.get(i);
            enc.usize(d.src);
            enc.usize(d.dst);
            enc.u64(d.generated_at);
            enc.u64(d.injected_at);
            enc.u64(d.delivered_at);
            enc.u16(d.len);
            enc.bool(d.recovered);
        }
    }

    /// Restores state captured with [`Network::save_state`] into a network
    /// built from the *same* configuration (same radix, dimensions, VCs,
    /// buffer depth). Any installed fault plan is left untouched. A failed
    /// restore leaves the network unmodified.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream, a
    /// structurally impossible value, or a shape mismatch against this
    /// network's configuration.
    pub fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CheckpointError> {
        let nodes = self.torus().node_count();
        let n_vcs = self.vc_assign.len();
        let depth = self.config().buf_depth;

        let now = dec.u64()?;
        let last_delivery_at = dec.u64()?;
        let last_progress_at = dec.u64()?;
        let full_buffers = dec.u32()?;
        let counters = Counters::restore_state(dec)?;

        if dec.usize()? != n_vcs {
            return Err(CheckpointError::Corrupt("input VC count mismatch"));
        }
        let mut vc_bufs = FlitRings::new(n_vcs, depth);
        let mut vc_assign = Vec::with_capacity(n_vcs);
        let mut vc_routed_at = Vec::with_capacity(n_vcs);
        let mut vc_blocked = Vec::with_capacity(n_vcs);
        let mut vc_queued = Vec::with_capacity(n_vcs);
        for idx in 0..n_vcs {
            dec_flit_ring(dec, &mut vc_bufs, idx, depth)?;
            vc_assign.push(dec_assign(dec)?);
            vc_routed_at.push(dec.u64()?);
            vc_blocked.push(dec.u64()?);
            vc_queued.push(dec.bool()?);
        }
        let mut out_alloc = Vec::with_capacity(n_vcs);
        for _ in 0..n_vcs {
            out_alloc.push(dec.bool()?);
        }
        let mut inj = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let some = dec.bool()?;
            let id = dec.u32()?;
            inj.push(InjState {
                active: some.then_some(id),
                sent: dec.u16()?,
                assign: dec_assign(dec)?,
                routed_at: dec.u64()?,
            });
        }
        let cap = self.config().source_queue_cap;
        let mut source_q = IdRing::new(nodes, cap);
        for node in 0..nodes {
            let n = dec.usize()?;
            if n > cap {
                return Err(CheckpointError::Corrupt("source queue exceeds capacity"));
            }
            for _ in 0..n {
                source_q.push_back(node, dec.u32()?);
            }
        }
        let packets = PacketStore::restore_state(dec)?;
        let n_escaped = dec.usize()?;
        if n_escaped > u32::MAX as usize {
            return Err(CheckpointError::Corrupt("escape flag count implausible"));
        }
        // Bound the reservation by what the stream can actually deliver
        // (one byte per flag), so a hostile count cannot OOM before the
        // decode loop hits `Truncated`.
        let mut escaped = Vec::with_capacity(n_escaped.min(dec.remaining()));
        for _ in 0..n_escaped {
            escaped.push(dec.bool()?);
        }
        let mut dl_bufs = FlitRings::new(nodes, crate::network::DL_DEPTH);
        for node in 0..nodes {
            dec_flit_ring(dec, &mut dl_bufs, node, crate::network::DL_DEPTH)?;
        }
        let recovery = if dec.bool()? {
            let packet = dec.u32()?;
            let path_len = dec.usize()?;
            if path_len == 0 || path_len > nodes {
                return Err(CheckpointError::Corrupt("recovery path length"));
            }
            let mut path = Vec::with_capacity(path_len);
            for _ in 0..path_len {
                let n = dec.usize()?;
                if n >= nodes {
                    return Err(CheckpointError::Corrupt("recovery path node"));
                }
                path.push(n);
            }
            let src_vc = dec.usize()?;
            if src_vc >= n_vcs {
                return Err(CheckpointError::Corrupt("recovery source VC"));
            }
            Some(RecoveryJob {
                packet,
                path,
                src_vc,
                tail_in: dec.bool()?,
            })
        } else {
            None
        };
        let mut route_rr = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            route_rr.push(dec.usize()?);
        }
        let n_out_rr = self.out_rr.len();
        let mut out_rr = Vec::with_capacity(n_out_rr);
        for _ in 0..n_out_rr {
            out_rr.push(dec.usize()?);
        }
        let mut vc_busy = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            vc_busy.push(dec.u64()?);
        }
        if dec.usize()? != self.wheel.len() {
            return Err(CheckpointError::Corrupt("timer-wheel entry count mismatch"));
        }
        let wheel_timeout = match self.config().deadlock {
            crate::config::DeadlockMode::Recovery { timeout } => timeout,
            crate::config::DeadlockMode::Avoidance => 1, // wheel is empty
        };
        let mut wheel_deadlines = Vec::with_capacity(self.wheel.len());
        for _ in 0..self.wheel.len() {
            let d = dec.u64()?;
            if d != u64::MAX && !d.is_multiple_of(wheel_timeout) {
                return Err(CheckpointError::Corrupt("wheel deadline not a scan cycle"));
            }
            wheel_deadlines.push(d);
        }
        let n_tok = dec.usize()?;
        if n_tok > n_vcs {
            return Err(CheckpointError::Corrupt("token queue implausibly long"));
        }
        let mut token_queue = IdRing::new(1, n_vcs);
        for _ in 0..n_tok {
            let idx = dec.usize()?;
            if idx >= n_vcs {
                return Err(CheckpointError::Corrupt("token queue entry out of range"));
            }
            token_queue.push_back(0, idx as u32);
        }
        let n_del = dec.usize()?;
        if n_del > counters.delivered_packets as usize {
            return Err(CheckpointError::Corrupt("undrained delivery count"));
        }
        let mut deliveries = DeliveryRing::default();
        for _ in 0..n_del {
            deliveries.push(crate::packet::DeliveredRecord {
                src: dec.usize()?,
                dst: dec.usize()?,
                generated_at: dec.u64()?,
                injected_at: dec.u64()?,
                delivered_at: dec.u64()?,
                len: dec.u16()?,
                recovered: dec.bool()?,
            });
        }

        self.now = now;
        self.last_delivery_at = last_delivery_at;
        self.last_progress_at = last_progress_at;
        self.full_buffers = full_buffers;
        self.counters = counters;
        self.vc_bufs = vc_bufs;
        self.vc_assign = vc_assign;
        self.vc_routed_at = vc_routed_at;
        self.vc_blocked = vc_blocked;
        self.vc_queued = vc_queued;
        self.out_alloc = out_alloc;
        self.inj = inj;
        self.source_q = source_q;
        self.packets = packets;
        self.escaped = escaped;
        self.dl_bufs = dl_bufs;
        self.recovery = recovery;
        self.route_rr = route_rr;
        self.out_rr = out_rr;
        self.vc_busy = vc_busy;
        self.token_queue = token_queue;
        self.deliveries = deliveries;
        self.wheel.reset();
        for (idx, &d) in wheel_deadlines.iter().enumerate() {
            if d != u64::MAX {
                self.wheel.schedule(idx, d);
            }
        }
        self.rebuild_derived();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DeadlockMode, NetConfig};
    use crate::control::NoControl;
    use crate::Network;
    use checkpoint::{Dec, Enc};

    /// A deterministic little traffic source: every node sends to the
    /// opposite node every `interval` cycles.
    fn source(interval: u64) -> impl FnMut(u64, usize) -> Option<usize> {
        move |now, node| {
            (now % interval == node as u64 % interval).then_some({
                let nodes = 16usize;
                (node + nodes / 2) % nodes
            })
        }
    }

    fn small_cfg() -> NetConfig {
        NetConfig {
            radix: 4,
            dimensions: 2,
            ..NetConfig::small(DeadlockMode::Recovery { timeout: 8 })
        }
    }

    fn snapshot(net: &Network) -> Vec<u8> {
        let mut enc = Enc::new();
        net.save_state(&mut enc);
        enc.into_vec()
    }

    #[test]
    fn save_restore_resume_is_bit_identical() {
        let cfg = small_cfg();
        let mut src_a = source(3);
        let mut a = Network::new(cfg.clone()).unwrap();
        for _ in 0..500 {
            a.cycle(&mut src_a, &mut NoControl);
        }
        let snap = snapshot(&a);

        // Restore into a fresh network and run both 500 more cycles.
        let mut b = Network::new(cfg).unwrap();
        let mut dec = Dec::new(&snap);
        b.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(snapshot(&b), snap, "restore must reproduce the snapshot");

        let mut src_b = source(3);
        // The source is a pure function of (now, node); fast-forward needs
        // nothing, but keep the closures separate to prove independence.
        for _ in 0..500 {
            a.cycle(&mut src_a, &mut NoControl);
            b.cycle(&mut src_b, &mut NoControl);
        }
        assert_eq!(snapshot(&a), snapshot(&b), "diverged after restore");
        assert_eq!(a.counters(), b.counters());
    }

    /// Ring-buffer physical layout must not leak into the byte format: a
    /// network whose rings have wrapped (heads far from zero) and a
    /// restored copy (heads at zero) serialize identically, and both
    /// continue identically.
    #[test]
    fn wrapped_rings_serialize_position_independently() {
        let cfg = small_cfg();
        let mut src = source(2); // heavy traffic: rings wrap many times
        let mut a = Network::new(cfg.clone()).unwrap();
        for _ in 0..2_000 {
            a.cycle(&mut src, &mut NoControl);
        }
        let snap = snapshot(&a);
        let mut b = Network::new(cfg).unwrap();
        let mut dec = Dec::new(&snap);
        b.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();
        // b's rings all start at head 0; a's are arbitrarily wrapped.
        assert_eq!(snapshot(&b), snap);
        let mut src_a = source(2);
        let mut src_b = source(2);
        for _ in 0..300 {
            a.cycle(&mut src_a, &mut NoControl);
            b.cycle(&mut src_b, &mut NoControl);
        }
        assert_eq!(snapshot(&a), snapshot(&b));
    }

    /// Mirror of the wrapped-ring property for the starvation timer wheel:
    /// after the wheel has revolved many times (its buckets full of a mix
    /// of live and stale bits), the byte format must capture only the
    /// authoritative deadlines, and a restored network — whose buckets are
    /// rebuilt from those deadlines — must continue bit-identically,
    /// including through future wheel fires.
    #[test]
    fn wrapped_wheel_checkpoints_position_independently() {
        let cfg = small_cfg(); // Recovery { timeout: 8 }: wheel revolution is 24 cycles
        let mut src = source(2); // hot enough to keep headers routed and parked
        let mut a = Network::new(cfg.clone()).unwrap();
        // Snapshot mid-revolution (1003 is not a scan cycle), long after
        // the wheel wrapped dozens of times.
        for _ in 0..1_003 {
            a.cycle(&mut src, &mut NoControl);
        }
        let enrolled = (0..a.wheel.len())
            .filter(|&i| a.wheel.deadline(i) != u64::MAX)
            .count();
        assert!(enrolled > 0, "vacuous: no wheel entries live at snapshot");
        let snap = snapshot(&a);
        let mut b = Network::new(cfg).unwrap();
        let mut dec = Dec::new(&snap);
        b.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(snapshot(&b), snap);
        for idx in 0..a.wheel.len() {
            assert_eq!(a.wheel.deadline(idx), b.wheel.deadline(idx));
        }
        // Continue both across several future scan cycles: rebuilt buckets
        // must fire exactly like the originals.
        let mut src_a = source(2);
        let mut src_b = source(2);
        for _ in 0..200 {
            a.cycle(&mut src_a, &mut NoControl);
            b.cycle(&mut src_b, &mut NoControl);
        }
        assert_eq!(snapshot(&a), snapshot(&b));
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut a = Network::new(small_cfg()).unwrap();
        let mut src = source(3);
        for _ in 0..100 {
            a.cycle(&mut src, &mut NoControl);
        }
        let snap = snapshot(&a);
        // A network with a different radix has different vector shapes.
        let mut b = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        let mut dec = Dec::new(&snap);
        assert!(b.restore_state(&mut dec).is_err());
    }
}
