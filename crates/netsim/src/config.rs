use core::fmt;
use kncube::{TopologyError, Torus};

/// Deepest supported VC edge buffer, in flits. The flit arenas index ring
/// slots with `u32` cursors, and real router buffers are orders of
/// magnitude shallower.
pub const MAX_BUF_DEPTH: usize = 1 << 16;

/// Largest supported source queue, in packets. Source queues are
/// fixed-capacity rings allocated eagerly per node, so an absurd capacity
/// would be an absurd allocation.
pub const MAX_SOURCE_QUEUE_CAP: usize = 1 << 20;

/// How the network deals with deadlock among fully adaptive channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockMode {
    /// Duato-style deadlock **avoidance**: virtual channel 0 of every
    /// physical channel is an *escape* channel restricted to oblivious
    /// dimension-order routing (on the mesh sub-network, which is
    /// deadlock-free with a single VC); the remaining VCs route fully
    /// adaptively and minimally. Multiple deadlock cycles can drain
    /// concurrently through the escape channels.
    Avoidance,
    /// Disha-style progressive deadlock **recovery**: all VCs route fully
    /// adaptively and minimally; a packet whose header makes no progress for
    /// `timeout` cycles becomes a recovery candidate. One packet at a time
    /// (a global token) drains through per-router deadlock buffers along a
    /// dimension-order path to its destination.
    Recovery {
        /// Head-blocked cycles before a packet is suspected deadlocked.
        timeout: u64,
    },
}

impl DeadlockMode {
    /// The paper's recovery configuration (Disha, 8-cycle timeout).
    pub const PAPER_RECOVERY: DeadlockMode = DeadlockMode::Recovery { timeout: 8 };
}

/// Static configuration of the simulated network (§5.1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Torus radix `k` (16 in the paper).
    pub radix: usize,
    /// Torus dimension count `n` (2 in the paper).
    pub dimensions: usize,
    /// Virtual channels per physical channel (3 in the paper).
    pub vcs: usize,
    /// Edge-buffer depth per virtual channel, in flits (8 in the paper).
    pub buf_depth: usize,
    /// Packet length in flits (16 in the paper).
    pub packet_len: usize,
    /// Deadlock handling scheme.
    pub deadlock: DeadlockMode,
    /// Per-hop pipeline latency in cycles: 1 cycle crossbar + 1 cycle link.
    pub hop_latency: u64,
    /// Source queue capacity in packets; generation is refused (and counted)
    /// when the queue is full, bounding open-loop memory use.
    pub source_queue_cap: usize,
}

impl NetConfig {
    /// The paper's 16-ary 2-cube configuration with the given deadlock mode.
    #[must_use]
    pub fn paper(deadlock: DeadlockMode) -> Self {
        NetConfig {
            radix: 16,
            dimensions: 2,
            vcs: 3,
            buf_depth: 8,
            packet_len: 16,
            deadlock,
            hop_latency: 2,
            source_queue_cap: 64,
        }
    }

    /// A small 8-ary 2-cube, handy for tests and quick examples.
    #[must_use]
    pub fn small(deadlock: DeadlockMode) -> Self {
        NetConfig {
            radix: 8,
            ..NetConfig::paper(deadlock)
        }
    }

    /// Builds the torus for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] for invalid `radix`/`dimensions`.
    pub fn torus(&self) -> Result<Torus, TopologyError> {
        Torus::new(self.radix, self.dimensions)
    }

    /// Validates the full configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.torus().map_err(ConfigError::Topology)?;
        if self.vcs == 0 || self.vcs > 8 {
            return Err(ConfigError::BadVcCount { vcs: self.vcs });
        }
        if 2 * self.dimensions * self.vcs + 1 > 64 {
            return Err(ConfigError::TooManyFeeders {
                feeders: 2 * self.dimensions * self.vcs + 1,
            });
        }
        if matches!(self.deadlock, DeadlockMode::Avoidance) && self.vcs < 2 {
            return Err(ConfigError::AvoidanceNeedsAdaptiveVc);
        }
        if self.buf_depth == 0 {
            return Err(ConfigError::ZeroBufferDepth);
        }
        if self.buf_depth > MAX_BUF_DEPTH {
            return Err(ConfigError::BufferTooDeep {
                depth: self.buf_depth,
            });
        }
        if self.packet_len == 0 || self.packet_len > usize::from(u16::MAX) {
            return Err(ConfigError::BadPacketLen {
                len: self.packet_len,
            });
        }
        if self.hop_latency == 0 {
            return Err(ConfigError::ZeroHopLatency);
        }
        if self.source_queue_cap == 0 {
            return Err(ConfigError::ZeroSourceQueue);
        }
        if self.source_queue_cap > MAX_SOURCE_QUEUE_CAP {
            return Err(ConfigError::SourceQueueTooLarge {
                cap: self.source_queue_cap,
            });
        }
        if let DeadlockMode::Recovery { timeout: 0 } = self.deadlock {
            return Err(ConfigError::ZeroTimeout);
        }
        Ok(())
    }

    /// Node count `k^n`.
    ///
    /// # Panics
    ///
    /// Panics if the topology parameters are invalid (see
    /// [`NetConfig::validate`]).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.torus().expect("invalid topology").node_count()
    }

    /// Total number of network edge (VC) buffers: `nodes * 2n * vcs`.
    ///
    /// For the paper's network this is the 3072 the side-band's 12-bit count
    /// covers.
    #[must_use]
    pub fn total_vc_buffers(&self) -> usize {
        self.node_count() * 2 * self.dimensions * self.vcs
    }

    /// Number of VCs reserved as escape channels per physical channel.
    #[must_use]
    pub fn escape_vcs(&self) -> usize {
        match self.deadlock {
            DeadlockMode::Avoidance => 1,
            DeadlockMode::Recovery { .. } => 0,
        }
    }
}

/// Error returned by [`NetConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The torus parameters are invalid.
    Topology(TopologyError),
    /// VC count must be in `1..=8`.
    BadVcCount {
        /// The rejected VC count.
        vcs: usize,
    },
    /// Deadlock avoidance needs at least one adaptive VC beyond the escape VC.
    AvoidanceNeedsAdaptiveVc,
    /// The router arbiter supports at most 64 feeders (`2 * n * vcs + 1`).
    TooManyFeeders {
        /// The rejected feeder count.
        feeders: usize,
    },
    /// Buffers must hold at least one flit.
    ZeroBufferDepth,
    /// Buffers are capped at [`MAX_BUF_DEPTH`] flits.
    BufferTooDeep {
        /// The rejected buffer depth.
        depth: usize,
    },
    /// Packets must have between 1 and `u16::MAX` flits.
    BadPacketLen {
        /// The rejected packet length.
        len: usize,
    },
    /// Hop latency must be nonzero.
    ZeroHopLatency,
    /// Source queues must hold at least one packet.
    ZeroSourceQueue,
    /// Source queues are capped at [`MAX_SOURCE_QUEUE_CAP`] packets.
    SourceQueueTooLarge {
        /// The rejected capacity.
        cap: usize,
    },
    /// Recovery timeout must be nonzero.
    ZeroTimeout,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Topology(e) => write!(f, "invalid topology: {e}"),
            ConfigError::BadVcCount { vcs } => write!(f, "vc count must be 1..=8, got {vcs}"),
            ConfigError::AvoidanceNeedsAdaptiveVc => {
                f.write_str("deadlock avoidance needs at least 2 VCs (1 escape + 1 adaptive)")
            }
            ConfigError::TooManyFeeders { feeders } => {
                write!(
                    f,
                    "router arbiter supports at most 64 feeders, got {feeders}"
                )
            }
            ConfigError::ZeroBufferDepth => f.write_str("buffer depth must be nonzero"),
            ConfigError::BufferTooDeep { depth } => {
                write!(f, "buffer depth {depth} exceeds {MAX_BUF_DEPTH}")
            }
            ConfigError::BadPacketLen { len } => write!(f, "packet length {len} out of range"),
            ConfigError::ZeroHopLatency => f.write_str("hop latency must be nonzero"),
            ConfigError::ZeroSourceQueue => f.write_str("source queue capacity must be nonzero"),
            ConfigError::SourceQueueTooLarge { cap } => {
                write!(
                    f,
                    "source queue capacity {cap} exceeds {MAX_SOURCE_QUEUE_CAP}"
                )
            }
            ConfigError::ZeroTimeout => f.write_str("recovery timeout must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_has_3072_buffers() {
        let cfg = NetConfig::paper(DeadlockMode::PAPER_RECOVERY);
        cfg.validate().unwrap();
        assert_eq!(cfg.node_count(), 256);
        assert_eq!(cfg.total_vc_buffers(), 3072);
        assert_eq!(cfg.escape_vcs(), 0);
        let cfg = NetConfig::paper(DeadlockMode::Avoidance);
        assert_eq!(cfg.escape_vcs(), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = NetConfig::paper(DeadlockMode::Avoidance);
        assert!(matches!(
            NetConfig {
                vcs: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BadVcCount { vcs: 0 })
        ));
        assert!(matches!(
            NetConfig {
                vcs: 1,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::AvoidanceNeedsAdaptiveVc)
        ));
        assert!(NetConfig {
            vcs: 1,
            deadlock: DeadlockMode::PAPER_RECOVERY,
            ..base.clone()
        }
        .validate()
        .is_ok());
        assert!(matches!(
            NetConfig {
                buf_depth: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::ZeroBufferDepth)
        ));
        assert!(matches!(
            NetConfig {
                packet_len: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BadPacketLen { .. })
        ));
        assert!(matches!(
            NetConfig {
                hop_latency: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::ZeroHopLatency)
        ));
        assert!(matches!(
            NetConfig {
                deadlock: DeadlockMode::Recovery { timeout: 0 },
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::ZeroTimeout)
        ));
        assert!(matches!(
            NetConfig {
                buf_depth: MAX_BUF_DEPTH + 1,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BufferTooDeep { .. })
        ));
        assert!(matches!(
            NetConfig {
                source_queue_cap: MAX_SOURCE_QUEUE_CAP + 1,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::SourceQueueTooLarge { .. })
        ));
        assert!(matches!(
            NetConfig { radix: 1, ..base }.validate(),
            Err(ConfigError::Topology(_))
        ));
    }
}
