use kncube::NodeId;

/// Identifier of an in-flight packet (an index into the packet store; slots
/// are recycled after delivery).
pub type PacketId = u32;

/// One flit of a packet.
///
/// All flits of a packet are identical except for their index: index 0 is
/// the header (carries routing information), index `len - 1` is the tail
/// (releases resources as it passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet (0 = header).
    pub idx: u16,
    /// First cycle at which this flit is usable at its current location
    /// (models crossbar + link pipeline latency).
    pub ready_at: u64,
}

/// Metadata of an in-flight packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the packet was generated (entered the source queue).
    pub generated_at: u64,
    /// Cycle the header flit left the source (entered the network), or
    /// `u64::MAX` while still queued.
    pub injected_at: u64,
    /// Packet length in flits.
    pub len: u16,
    /// Flits already consumed at the destination.
    pub delivered_flits: u16,
    /// Cycle any flit of this packet last moved (drives Disha's
    /// whole-worm-inactive deadlock detection).
    pub last_move: u64,
}

/// Record emitted when a packet's tail is consumed at its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredRecord {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Generation cycle.
    pub generated_at: u64,
    /// Injection cycle (header left the source).
    pub injected_at: u64,
    /// Delivery cycle (tail consumed).
    pub delivered_at: u64,
    /// Packet length in flits.
    pub len: u16,
    /// Whether the packet finished through the Disha recovery network.
    pub recovered: bool,
}

impl DeliveredRecord {
    /// Network latency: injection of the header to consumption of the tail.
    #[must_use]
    pub fn network_latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }

    /// End-to-end latency including source queueing.
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.delivered_at - self.generated_at
    }
}

/// A slab of packet metadata with slot recycling, so long simulations do not
/// accumulate memory proportional to the number of packets ever sent.
#[derive(Debug, Default, Clone)]
pub struct PacketStore {
    slots: Vec<PacketInfo>,
    free: Vec<PacketId>,
}

impl PacketStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// Allocates a slot for a new packet and returns its id.
    pub fn alloc(&mut self, info: PacketInfo) -> PacketId {
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = info;
            id
        } else {
            let id = PacketId::try_from(self.slots.len()).expect("too many live packets");
            self.slots.push(info);
            id
        }
    }

    /// Releases a delivered packet's slot for reuse.
    pub fn release(&mut self, id: PacketId) {
        debug_assert!(!self.free.contains(&id), "double release of packet {id}");
        self.free.push(id);
    }

    /// Read access to a live packet.
    #[must_use]
    pub fn get(&self, id: PacketId) -> &PacketInfo {
        &self.slots[id as usize]
    }

    /// Write access to a live packet.
    pub fn get_mut(&mut self, id: PacketId) -> &mut PacketInfo {
        &mut self.slots[id as usize]
    }

    /// Number of currently live (allocated, not yet released) packets.
    #[must_use]
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slot count (live + recycled), for audit-side liveness scans.
    #[must_use]
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The recycled-slot free list (audit ground truth for liveness).
    #[must_use]
    pub(crate) fn free_ids(&self) -> &[PacketId] {
        &self.free
    }

    /// Raw shared-mutable view over the slot array for the parallel
    /// shard-local apply (see [`PacketsView`] for the field-level rules).
    pub(crate) fn view(&mut self) -> PacketsView {
        PacketsView {
            slots: self.slots.as_mut_ptr(),
            len: self.slots.len(),
        }
    }

    /// Serializes the whole store — live slots, recycled slots and the free
    /// list order (which determines future id assignment) — into `enc`.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        enc.usize(self.slots.len());
        for p in &self.slots {
            enc.usize(p.src);
            enc.usize(p.dst);
            enc.u64(p.generated_at);
            enc.u64(p.injected_at);
            enc.u16(p.len);
            enc.u16(p.delivered_flits);
            enc.u64(p.last_move);
        }
        enc.usize(self.free.len());
        for &id in &self.free {
            enc.u32(id);
        }
    }

    /// Reads a store serialized with [`PacketStore::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream or a
    /// free-list entry outside the slot range.
    pub fn restore_state(
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<Self, checkpoint::CheckpointError> {
        let nslots = dec.usize()?;
        // A hostile count cannot force an allocation beyond what the stream
        // could actually satisfy: each slot costs 44 payload bytes.
        let mut slots = Vec::with_capacity(nslots.min(dec.remaining() / 44));
        for _ in 0..nslots {
            slots.push(PacketInfo {
                src: dec.usize()?,
                dst: dec.usize()?,
                generated_at: dec.u64()?,
                injected_at: dec.u64()?,
                len: dec.u16()?,
                delivered_flits: dec.u16()?,
                last_move: dec.u64()?,
            });
        }
        let nfree = dec.usize()?;
        if nfree > nslots {
            return Err(checkpoint::CheckpointError::Corrupt(
                "free list longer than slot array",
            ));
        }
        let mut free = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            let id = dec.u32()?;
            if id as usize >= nslots {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "free list entry out of range",
                ));
            }
            free.push(id);
        }
        Ok(PacketStore { slots, free })
    }
}

/// Raw view into a [`PacketStore`]'s slot array for the parallel
/// shard-local apply.
///
/// # Safety contract (per field)
///
/// * `len` / `dst` — immutable during a cycle (written only at `alloc`,
///   which runs sequentially): plain reads are race-free.
/// * `injected_at` — written exactly once, by the op of the packet's
///   unique source node: plain write.
/// * `last_move` — several flits of one worm can move at different
///   routers (different shards) in the same cycle, all stamping the same
///   current cycle: written with an atomic store so the benign same-value
///   race is defined behavior.
/// * everything else is off-limits to the parallel phase (delivery and
///   release are boundary ops, applied sequentially).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PacketsView {
    slots: *mut PacketInfo,
    len: usize,
}

// SAFETY: see the field-level contract above.
unsafe impl Send for PacketsView {}
unsafe impl Sync for PacketsView {}

impl PacketsView {
    /// Packet length in flits (immutable during a cycle).
    #[inline]
    pub(crate) unsafe fn len_of(&self, id: PacketId) -> u16 {
        debug_assert!((id as usize) < self.len);
        (*self.slots.add(id as usize)).len
    }

    /// `last_move`, plainly — sound only in the route phase, where no
    /// concurrent writer exists (flits move in the switch phase).
    #[inline]
    pub(crate) unsafe fn last_move_plain(&self, id: PacketId) -> u64 {
        debug_assert!((id as usize) < self.len);
        (*self.slots.add(id as usize)).last_move
    }

    /// Stamps `last_move = now` atomically (same-value stores from
    /// multiple shards are expected; see the struct docs).
    #[inline]
    pub(crate) unsafe fn set_last_move(&self, id: PacketId, now: u64) {
        debug_assert!((id as usize) < self.len);
        let field = &raw mut (*self.slots.add(id as usize)).last_move;
        std::sync::atomic::AtomicU64::from_ptr(field)
            .store(now, std::sync::atomic::Ordering::Relaxed);
    }

    /// Stamps the injection cycle (unique writer: the source node's op).
    #[inline]
    pub(crate) unsafe fn set_injected_at(&self, id: PacketId, now: u64) {
        debug_assert!((id as usize) < self.len);
        (*self.slots.add(id as usize)).injected_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(src: NodeId) -> PacketInfo {
        PacketInfo {
            src,
            dst: 0,
            generated_at: 0,
            injected_at: u64::MAX,
            len: 16,
            delivered_flits: 0,
            last_move: 0,
        }
    }

    #[test]
    fn alloc_release_recycles_slots() {
        let mut s = PacketStore::new();
        let a = s.alloc(info(1));
        let b = s.alloc(info(2));
        assert_ne!(a, b);
        assert_eq!(s.live(), 2);
        s.release(a);
        assert_eq!(s.live(), 1);
        let c = s.alloc(info(3));
        assert_eq!(c, a, "released slot should be reused");
        assert_eq!(s.get(c).src, 3);
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn latency_accessors() {
        let r = DeliveredRecord {
            src: 0,
            dst: 1,
            generated_at: 10,
            injected_at: 25,
            delivered_at: 100,
            len: 16,
            recovered: false,
        };
        assert_eq!(r.network_latency(), 75);
        assert_eq!(r.total_latency(), 90);
    }
}
