//! Output-channel selection for headers (adaptive routing with either
//! escape channels or full adaptivity, per the deadlock mode).

use crate::network::{port_of, Assign, Network};
use crate::packet::PacketId;
use kncube::{Dir, NodeId};

impl Network {
    /// Chooses an output virtual channel for a header at `node` destined for
    /// `dst` (`dst != node`; local delivery is handled by the caller).
    ///
    /// Policy, following the paper's §5.1 configurations:
    ///
    /// * **Adaptive candidates** — the first free VC in the adaptive class
    ///   over the *productive* (minimal, including wraparound) physical
    ///   channels, scanned in fixed (dimension, direction, VC) order — the
    ///   simple selection function of flexsim-era routers (DESIGN.md §5b).
    /// * **Escape fallback** (avoidance mode only) — VC 0 of the
    ///   dimension-order *mesh* hop (no wraparound links), which forms a
    ///   deadlock-free escape sub-network with a single VC. Escape is
    ///   sticky: once a packet takes an escape channel it stays on the
    ///   escape network to its destination, which keeps the extended
    ///   channel-dependency graph acyclic on the torus.
    ///
    /// Returns `None` when no candidate channel is free this cycle.
    pub(crate) fn choose_output(&self, node: NodeId, dst: NodeId, pid: PacketId) -> Option<Assign> {
        debug_assert_ne!(node, dst);
        let escape_vcs = self.config().escape_vcs();
        let sticky_escaped = escape_vcs > 0 && self.escaped[pid as usize];

        if !sticky_escaped {
            // First free adaptive VC in fixed (dimension, direction, VC)
            // order — the simple selection function of flexsim-era routers.
            for (dim, dir) in self.torus().productive_hops(node, dst).iter() {
                let port = port_of(dim, dir);
                for vc in escape_vcs..self.config().vcs {
                    let oidx = self.vc_idx(node, port, vc);
                    if !self.out_alloc[oidx] {
                        return Some(Assign::Out {
                            port: port as u8,
                            vc: vc as u8,
                        });
                    }
                }
            }
        }

        if escape_vcs > 0 {
            let (dim, dir) = self
                .mesh_dor_hop(node, dst)
                .expect("mesh DOR hop exists whenever node != dst");
            let port = port_of(dim, dir);
            for vc in 0..escape_vcs {
                let oidx = self.vc_idx(node, port, vc);
                if !self.out_alloc[oidx] {
                    return Some(Assign::Out {
                        port: port as u8,
                        vc: vc as u8,
                    });
                }
            }
        }
        None
    }

    /// Dimension-order next hop on the *mesh* sub-network (never crosses a
    /// wraparound link): the escape routing function.
    pub(crate) fn mesh_dor_hop(&self, cur: NodeId, dst: NodeId) -> Option<(usize, Dir)> {
        let ca = self.torus().coords(cur);
        let cb = self.torus().coords(dst);
        for dim in 0..self.torus().dimensions() {
            if ca[dim] != cb[dim] {
                let dir = if cb[dim] > ca[dim] {
                    Dir::Plus
                } else {
                    Dir::Minus
                };
                return Some((dim, dir));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DeadlockMode, NetConfig};
    use crate::network::Network;
    use kncube::Dir;

    #[test]
    fn mesh_dor_never_wraps() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        // Node 0 to node 7 (same row): torus-minimal is one hop Minus (wrap),
        // but the mesh escape must walk +x without wrapping.
        let (dim, dir) = net.mesh_dor_hop(0, 7).unwrap();
        assert_eq!((dim, dir), (0, Dir::Plus));
        // And from 7 back to 0 it walks -x.
        let (dim, dir) = net.mesh_dor_hop(7, 0).unwrap();
        assert_eq!((dim, dir), (0, Dir::Minus));
        assert_eq!(net.mesh_dor_hop(5, 5), None);
    }

    #[test]
    fn mesh_dor_walk_terminates_everywhere() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        let t = net.torus().clone();
        for src in [0usize, 7, 32, 63] {
            for dst in 0..t.node_count() {
                let mut cur = src;
                let mut steps = 0;
                while let Some((dim, dir)) = net.mesh_dor_hop(cur, dst) {
                    cur = t.neighbor(cur, dim, dir);
                    steps += 1;
                    assert!(steps < 100, "mesh DOR walk diverged");
                }
                assert_eq!(cur, dst);
            }
        }
    }
}
