//! Output-channel selection for headers (adaptive routing with either
//! escape channels or full adaptivity, per the deadlock mode), backed by
//! next-hop tables precomputed once at network construction.

use crate::network::{dim_dir_of, port_of, Assign, Network};
use crate::packet::PacketId;
use kncube::{Dir, NodeId, Torus};

/// Largest node count for which the O(nodes²) pair tables (mesh DOR next
/// hop, productive-port masks) are precomputed; bigger networks fall back
/// to computing hops on the fly. At the limit the two tables cost 3 MiB —
/// negligible next to the VC arenas — while the paper's 256-node network
/// needs only 192 KiB.
pub(crate) const TABLE_NODE_LIMIT: usize = 1024;

/// Sentinel in the mesh next-hop table for `cur == dst` (no hop).
const NO_HOP: u8 = 0xFF;

/// Routing lookup tables, built once per [`Network`].
///
/// * `mesh_next[cur * nodes + dst]` — output port of the dimension-order
///   *mesh* hop (the escape routing function), [`NO_HOP`] when aligned.
/// * `productive[cur * nodes + dst]` — bitmask of productive (minimal,
///   wrap-aware) output ports. The torus offers at most one productive
///   direction per dimension (ties break `Plus`), so iterating set bits in
///   ascending port order reproduces exactly the ascending-dimension hop
///   order of [`Torus::productive_hops`] — decisions are bit-identical to
///   the dynamic path. A port index is `2*dim + (dir == Minus)`, so 16
///   ports at most (`MAX_DIMS = 8`) and a `u16` always fits.
/// * `downstream[(node * d + port) * v + vc]` — global index of the
///   neighbor input VC fed by that output VC, replacing a coordinate
///   decomposition (`div`/`mod` per dimension) on every flit hop.
///
/// The pair tables are only built for networks of at most
/// [`TABLE_NODE_LIMIT`] nodes; `downstream` is linear in the VC count and
/// always built.
#[derive(Debug)]
pub(crate) struct RouteTables {
    nodes: usize,
    mesh_next: Vec<u8>,
    productive: Vec<u16>,
    downstream: Vec<u32>,
}

impl RouteTables {
    /// Builds the tables for `torus` with `vcs` virtual channels per
    /// physical channel.
    pub(crate) fn build(torus: &Torus, vcs: usize) -> Self {
        Self::build_with_limit(torus, vcs, TABLE_NODE_LIMIT)
    }

    /// [`RouteTables::build`] with an explicit pair-table node limit, so
    /// tests can force the O(nodes²) tables on a network large enough to
    /// take the dynamic fallback in production and prove the two paths
    /// equivalent.
    pub(crate) fn build_with_limit(torus: &Torus, vcs: usize, limit: usize) -> Self {
        let nodes = torus.node_count();
        let d = torus.channels_per_node();
        let mut downstream = vec![0u32; nodes * d * vcs];
        for node in 0..nodes {
            for port in 0..d {
                let (dim, dir) = dim_dir_of(port);
                let nb = torus.neighbor(node, dim, dir);
                let in_port = port_of(dim, dir.opposite());
                for vc in 0..vcs {
                    downstream[(node * d + port) * vcs + vc] =
                        ((nb * d + in_port) * vcs + vc) as u32;
                }
            }
        }
        let (mesh_next, productive) = if nodes <= limit {
            let mut mesh_next = vec![NO_HOP; nodes * nodes];
            let mut productive = vec![0u16; nodes * nodes];
            for cur in 0..nodes {
                for dst in 0..nodes {
                    if let Some((dim, dir)) = mesh_dor_hop_dyn(torus, cur, dst) {
                        mesh_next[cur * nodes + dst] = port_of(dim, dir) as u8;
                    }
                    productive[cur * nodes + dst] = productive_mask_dyn(torus, cur, dst);
                }
            }
            (mesh_next, productive)
        } else {
            (Vec::new(), Vec::new())
        };
        RouteTables {
            nodes,
            mesh_next,
            productive,
            downstream,
        }
    }

    /// The downstream input VC fed by output VC (global index) `oidx`.
    #[inline]
    pub(crate) fn downstream(&self, oidx: usize) -> usize {
        self.downstream[oidx] as usize
    }

    /// The whole downstream table (entries are input-VC indices), for the
    /// parallel apply's read-only raw view.
    #[inline]
    pub(crate) fn downstream_raw(&self) -> &[u32] {
        &self.downstream
    }

    /// Whether the O(nodes²) pair tables were built.
    #[inline]
    fn has_pair_tables(&self) -> bool {
        !self.productive.is_empty()
    }
}

/// Dimension-order next hop on the *mesh* sub-network (never crosses a
/// wraparound link): the escape routing function, computed from
/// coordinates. [`Network::mesh_dor_hop`] serves the same answer from the
/// precomputed table when one exists.
pub(crate) fn mesh_dor_hop_dyn(torus: &Torus, cur: NodeId, dst: NodeId) -> Option<(usize, Dir)> {
    let ca = torus.coords(cur);
    let cb = torus.coords(dst);
    for dim in 0..torus.dimensions() {
        if ca[dim] != cb[dim] {
            let dir = if cb[dim] > ca[dim] {
                Dir::Plus
            } else {
                Dir::Minus
            };
            return Some((dim, dir));
        }
    }
    None
}

/// Productive-port bitmask computed from coordinates (the table fallback
/// for networks above [`TABLE_NODE_LIMIT`]).
pub(crate) fn productive_mask_dyn(torus: &Torus, cur: NodeId, dst: NodeId) -> u16 {
    let mut mask = 0u16;
    for (dim, dir) in torus.productive_hops(cur, dst).iter() {
        mask |= 1 << port_of(dim, dir);
    }
    mask
}

impl Network {
    /// Chooses an output virtual channel for a header at `node` destined for
    /// `dst` (`dst != node`; local delivery is handled by the caller).
    ///
    /// Policy, following the paper's §5.1 configurations:
    ///
    /// * **Adaptive candidates** — the first free VC in the adaptive class
    ///   over the *productive* (minimal, including wraparound) physical
    ///   channels, scanned in fixed (dimension, direction, VC) order — the
    ///   simple selection function of flexsim-era routers (DESIGN.md §5b).
    /// * **Escape fallback** (avoidance mode only) — VC 0 of the
    ///   dimension-order *mesh* hop (no wraparound links), which forms a
    ///   deadlock-free escape sub-network with a single VC. Escape is
    ///   sticky: once a packet takes an escape channel it stays on the
    ///   escape network to its destination, which keeps the extended
    ///   channel-dependency graph acyclic on the torus.
    ///
    /// Returns `None` when no candidate channel is free this cycle.
    pub(crate) fn choose_output(&self, node: NodeId, dst: NodeId, pid: PacketId) -> Option<Assign> {
        debug_assert_ne!(node, dst);
        let escape_vcs = self.config().escape_vcs();
        let sticky_escaped = escape_vcs > 0 && self.escaped[pid as usize];

        if !sticky_escaped {
            // First free adaptive VC in fixed (dimension, direction, VC)
            // order — ascending set bits of the productive-port mask visit
            // dimensions in exactly the order `productive_hops` yields them.
            let mut mask = self.productive_mask(node, dst);
            while mask != 0 {
                let port = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for vc in escape_vcs..self.config().vcs {
                    let oidx = self.vc_idx(node, port, vc);
                    if !self.out_alloc[oidx] {
                        return Some(Assign::Out {
                            port: port as u8,
                            vc: vc as u8,
                        });
                    }
                }
            }
        }

        if escape_vcs > 0 {
            let port = self
                .mesh_next_port(node, dst)
                .expect("mesh DOR hop exists whenever node != dst");
            for vc in 0..escape_vcs {
                let oidx = self.vc_idx(node, port, vc);
                if !self.out_alloc[oidx] {
                    return Some(Assign::Out {
                        port: port as u8,
                        vc: vc as u8,
                    });
                }
            }
        }
        None
    }

    /// Bitmask of productive output ports from `node` towards `dst` (table
    /// lookup, with a dynamic fallback above [`TABLE_NODE_LIMIT`]).
    #[inline]
    pub(crate) fn productive_mask(&self, node: NodeId, dst: NodeId) -> u16 {
        if self.tables.has_pair_tables() {
            self.tables.productive[node * self.tables.nodes + dst]
        } else {
            productive_mask_dyn(self.torus(), node, dst)
        }
    }

    /// Output port of the mesh dimension-order hop from `cur` towards
    /// `dst`, `None` when `cur == dst`.
    #[inline]
    pub(crate) fn mesh_next_port(&self, cur: NodeId, dst: NodeId) -> Option<usize> {
        if self.tables.has_pair_tables() {
            let p = self.tables.mesh_next[cur * self.tables.nodes + dst];
            (p != NO_HOP).then_some(usize::from(p))
        } else {
            mesh_dor_hop_dyn(self.torus(), cur, dst).map(|(dim, dir)| port_of(dim, dir))
        }
    }

    /// Dimension-order next hop on the *mesh* sub-network (never crosses a
    /// wraparound link): the escape routing function. (The hot path uses
    /// [`Network::mesh_next_port`] directly; this `(dim, dir)` view exists
    /// for the routing tests.)
    #[cfg(test)]
    pub(crate) fn mesh_dor_hop(&self, cur: NodeId, dst: NodeId) -> Option<(usize, Dir)> {
        self.mesh_next_port(cur, dst).map(dim_dir_of)
    }
}

#[cfg(test)]
mod tests {
    use super::{mesh_dor_hop_dyn, productive_mask_dyn, RouteTables, TABLE_NODE_LIMIT};
    use crate::config::{DeadlockMode, NetConfig};
    use crate::control::NoControl;
    use crate::network::Network;
    use crate::network::{dim_dir_of, port_of};
    use kncube::Dir;

    #[test]
    fn mesh_dor_never_wraps() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        // Node 0 to node 7 (same row): torus-minimal is one hop Minus (wrap),
        // but the mesh escape must walk +x without wrapping.
        let (dim, dir) = net.mesh_dor_hop(0, 7).unwrap();
        assert_eq!((dim, dir), (0, Dir::Plus));
        // And from 7 back to 0 it walks -x.
        let (dim, dir) = net.mesh_dor_hop(7, 0).unwrap();
        assert_eq!((dim, dir), (0, Dir::Minus));
        assert_eq!(net.mesh_dor_hop(5, 5), None);
    }

    #[test]
    fn mesh_dor_walk_terminates_everywhere() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        let t = net.torus().clone();
        for src in [0usize, 7, 32, 63] {
            for dst in 0..t.node_count() {
                let mut cur = src;
                let mut steps = 0;
                while let Some((dim, dir)) = net.mesh_dor_hop(cur, dst) {
                    cur = t.neighbor(cur, dim, dir);
                    steps += 1;
                    assert!(steps < 100, "mesh DOR walk diverged");
                }
                assert_eq!(cur, dst);
            }
        }
    }

    /// Above [`TABLE_NODE_LIMIT`] the pair tables are skipped and every
    /// routing decision falls back to the coordinate computation — a path
    /// the Tiny/Small/paper presets never take. Build a 12-ary 3-cube
    /// (1728 nodes) twice, force the O(nodes²) tables onto one of the two
    /// otherwise-identical networks, drive both under the same traffic,
    /// and require bit-identical observables: serialized state and full
    /// counters. Avoidance mode exercises both tables (the productive
    /// mask on the adaptive path, the mesh next hop on every escape).
    #[test]
    fn dynamic_fallback_matches_forced_tables_above_limit() {
        let cfg = NetConfig {
            radix: 12,
            dimensions: 3,
            vcs: 2,
            buf_depth: 4,
            packet_len: 4,
            ..NetConfig::small(DeadlockMode::Avoidance)
        };
        let nodes = cfg.torus().unwrap().node_count();
        assert!(
            nodes > TABLE_NODE_LIMIT,
            "config no longer exercises the dynamic fallback"
        );
        let run = |force_tables: bool| {
            let mut net = Network::new(cfg.clone()).unwrap();
            if force_tables {
                let t = net.torus().clone();
                net.tables = RouteTables::build_with_limit(&t, cfg.vcs, usize::MAX);
            }
            assert_eq!(net.tables.has_pair_tables(), force_tables);
            let mut src = move |now: u64, node: usize| {
                let mut x = (now + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (node as u64) << 21;
                x ^= x >> 31;
                (x % 100 < 45).then(|| (x >> 32) as usize % nodes)
            };
            net.run(400, &mut src, &mut NoControl);
            let mut enc = checkpoint::Enc::new();
            net.save_state(&mut enc);
            (enc.into_vec(), net.counters().delivered_packets)
        };
        let (dynamic, delivered) = run(false);
        assert!(delivered > 0, "vacuous: nothing was delivered");
        assert_eq!(run(true).0, dynamic, "table and dynamic paths diverged");
    }

    /// Exhaustive table-vs-dynamic equivalence over every (cur, dst) pair
    /// for the Tiny (4-ary), Small (8-ary) and paper (16-ary) presets: the
    /// precomputed mesh next hop and productive-port mask must agree with
    /// the coordinate computation everywhere, and the downstream table must
    /// agree with the topology's neighbor function for every output VC.
    #[test]
    fn route_tables_match_dynamic_everywhere() {
        let cfgs = [
            NetConfig {
                radix: 4,
                ..NetConfig::small(DeadlockMode::PAPER_RECOVERY)
            },
            NetConfig::small(DeadlockMode::Avoidance),
            NetConfig::paper(DeadlockMode::Avoidance),
        ];
        for cfg in cfgs {
            let vcs = cfg.vcs;
            let net = Network::new(cfg).unwrap();
            let t = net.torus().clone();
            let nodes = t.node_count();
            let d = t.channels_per_node();
            for cur in 0..nodes {
                for dst in 0..nodes {
                    assert_eq!(
                        net.mesh_dor_hop(cur, dst),
                        mesh_dor_hop_dyn(&t, cur, dst),
                        "mesh table diverges at ({cur}, {dst}), k={}",
                        t.radix()
                    );
                    assert_eq!(
                        net.productive_mask(cur, dst),
                        productive_mask_dyn(&t, cur, dst),
                        "productive table diverges at ({cur}, {dst}), k={}",
                        t.radix()
                    );
                    // Mask bit order must reproduce the HopSet hop order.
                    let mut mask = net.productive_mask(cur, dst);
                    let mut from_mask = Vec::new();
                    while mask != 0 {
                        let port = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        from_mask.push(dim_dir_of(port));
                    }
                    let from_hops: Vec<_> = t.productive_hops(cur, dst).iter().collect();
                    assert_eq!(from_mask, from_hops, "hop order diverges at ({cur}, {dst})");
                }
                for port in 0..d {
                    let (dim, dir) = dim_dir_of(port);
                    let nb = t.neighbor(cur, dim, dir);
                    for vc in 0..vcs {
                        assert_eq!(
                            net.downstream_idx(cur, port, vc),
                            net.vc_idx(nb, port_of(dim, dir.opposite()), vc),
                            "downstream table diverges at node {cur} port {port} vc {vc}"
                        );
                    }
                }
            }
        }
    }
}
