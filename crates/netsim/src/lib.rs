//! `wormsim` — a flit-level, cycle-driven wormhole network simulator for
//! k-ary n-cubes, written from scratch as the substrate for reproducing
//! *Self-Tuned Congestion Control for Multiprocessor Networks* (HPCA 2001).
//!
//! The microarchitecture follows §5.1 of the paper:
//!
//! * full-duplex physical links, `vcs` virtual channels per physical channel
//!   with `buf_depth`-flit edge buffers (the paper: 3 VCs × 8 flits),
//! * one injection and one delivery channel per node,
//! * a central routing arbiter per router that routes at most one packet
//!   header per cycle (demand-slotted round-robin) with a 1-cycle routing
//!   delay,
//! * 1 cycle per flit through the crossbar and 1 cycle per flit on the link
//!   (a 2-cycle pipelined hop),
//! * fully adaptive minimal routing with either **Duato deadlock avoidance**
//!   (a dimension-order escape VC) or **Disha progressive deadlock
//!   recovery** (timeout detection, a global token, per-router deadlock
//!   buffers) — see [`DeadlockMode`].
//!
//! Congestion-control policies plug in through the [`CongestionControl`]
//! trait; the network itself exposes the two global quantities the paper's
//! side-band distributes ([`Network::full_buffer_count`] and
//! [`Network::delivered_flits_cum`]) plus the local state the ALO baseline
//! inspects ([`Network::output_vc_allocated`]).
//!
//! # Examples
//!
//! Run light uniform traffic with no congestion control and watch every
//! packet arrive:
//!
//! ```
//! use wormsim::{DeadlockMode, NetConfig, Network, NoControl};
//!
//! let mut net = Network::new(NetConfig::small(DeadlockMode::Avoidance))?;
//! // One packet from node 0 to node 9 at cycle 0.
//! let mut one_shot = Some(9);
//! let mut source = move |_now: u64, node: usize| {
//!     if node == 0 { one_shot.take() } else { None }
//! };
//! net.run(500, &mut source, &mut NoControl);
//! assert_eq!(net.counters().delivered_packets, 1);
//! let rec = net.drain_deliveries().next().unwrap();
//! assert_eq!((rec.src, rec.dst), (0, 9));
//! # Ok::<(), wormsim::ConfigError>(())
//! ```

mod activity;
mod audit;
mod config;
mod control;
mod counters;
mod deadlock;
#[cfg(test)]
mod difftest;
mod network;
mod packet;
mod ring;
mod routing;
mod shard;
mod snapshot;
mod wheel;

pub use audit::{AuditKind, AuditReport, AuditViolation};
pub use config::{ConfigError, DeadlockMode, NetConfig, MAX_BUF_DEPTH, MAX_SOURCE_QUEUE_CAP};
pub use control::{CongestionControl, NoControl};
pub use counters::{Counters, StageCycles};
pub use network::Network;
pub use packet::{DeliveredRecord, Flit, PacketId, PacketInfo, PacketStore};
pub use shard::PhaseStats;
