//! Node-level activity summaries: the top level of the two-level worklist
//! hierarchy.
//!
//! The bottom level is the per-node `vc_busy` feeder mask (one `u64` per
//! router, maintained by `note_vc_filled`/`note_vc_popped`). This module
//! adds the top level: a bit per *node*, packed 64 nodes to a word, so a
//! pipeline stage can skip 64 idle routers with one integer test and visit
//! the active ones in ascending order with `trailing_zeros`. The sets are
//! derived state — rebuildable from the structures they summarize — so they
//! are never serialized; `Network::restore_state` reconstructs them.
//!
//! Iteration convention (used by every stage in `network.rs`): copy one
//! word, walk its set bits, then move to the next word. Bits set *behind*
//! the walk by the stage's own mutations are intentionally not revisited;
//! the stages only ever set bits for work that could not have acted this
//! cycle anyway (e.g. a flit pushed downstream is not ready until
//! `now + hop_latency`), so the copy-a-word walk is behaviorally identical
//! to the full scan it replaces.

/// A set of node ids over a fixed universe `0..nodes`, packed into `u64`
/// words. All operations are branch-light and allocation-free after
/// construction.
#[derive(Debug, Clone)]
pub(crate) struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// An empty set over `0..nodes`.
    pub fn new(nodes: usize) -> Self {
        NodeSet {
            words: vec![0; nodes.div_ceil(64)],
        }
    }

    /// Number of backing words (shared by all sets over the same universe).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Word `w` (nodes `64*w .. 64*w + 63`).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    #[inline]
    pub fn insert(&mut self, node: usize) {
        self.words[node >> 6] |= 1u64 << (node & 63);
    }

    #[inline]
    pub fn remove(&mut self, node: usize) {
        self.words[node >> 6] &= !(1u64 << (node & 63));
    }

    #[inline]
    pub fn contains(&self, node: usize) -> bool {
        self.words[node >> 6] >> (node & 63) & 1 == 1
    }

    /// Empties the set (used by the per-cycle injection-allowance scratch).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The backing words, mutably — the parallel shard-local apply wraps
    /// them in an atomic view because one word packs 64 nodes and shard
    /// boundaries are not word-aligned (see `crate::shard::AtomicBits`).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_across_word_boundaries() {
        let mut s = NodeSet::new(130);
        assert_eq!(s.word_count(), 3);
        for n in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.contains(n));
            s.insert(n);
            assert!(s.contains(n));
        }
        assert_eq!(s.word(0), 1 | 2 | 1 << 63);
        assert_eq!(s.word(1), 1 | 2 | 1 << 63);
        assert_eq!(s.word(2), 0b11);
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(65));
        s.clear();
        assert_eq!(s.word(0) | s.word(1) | s.word(2), 0);
    }
}
