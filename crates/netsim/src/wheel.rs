//! Deadline timer wheel for Disha starvation detection.
//!
//! The reference behavior (kept, test-only, as `detect_starved_heads_scan`
//! in `network.rs`) walks every busy VC each `timeout` cycles looking for a
//! routed-but-credit-starved header. This wheel makes that O(candidates):
//! when a header is *routed* to an output VC — the only transition that can
//! create a starvable head — the VC is enrolled with the earliest scan
//! cycle at which the starvation predicate could possibly hold. At each
//! scan cycle the wheel visits only the VCs whose deadline is due;
//! forward progress since enrollment simply pushes the re-evaluated
//! deadline into a later bucket, and a departed header is dropped (its
//! successor re-enrolls through the routing stage).
//!
//! # Layout
//!
//! `slots` circular buckets, each a bitset over all VC indices, plus one
//! authoritative `deadline` per VC (`u64::MAX` = not enrolled). Deadlines
//! are always multiples of `timeout` — exactly the cycles the reference
//! scan runs on — and bucket `(&deadline / timeout) % slots` holds the bit.
//! The bitset gives three properties for free: entries per bucket are
//! deduplicated, a fired bucket is visited in ascending VC order (the same
//! order as the full scan, so recovery-token FIFO order is preserved
//! decision-for-decision), and the whole structure is allocation-free
//! after construction (`tests/zero_alloc.rs` covers it).
//!
//! A bucket bit can be stale — the VC was re-enrolled with a different
//! deadline, or progressed and re-parked in a later bucket — so the
//! `deadline` array is the source of truth: a fired bucket processes only
//! bits whose deadline is exactly `now`, keeps bits whose deadline maps to
//! the same bucket one revolution later, and discards the rest. The slot
//! count is sized so that every *reachable* deadline (at most
//! `max(2*timeout, timeout + hop_latency)` cycles ahead) lands in a bucket
//! other than the one currently firing, which is what makes the
//! keep/discard rule unambiguous.
//!
//! Checkpointing serializes only the `deadline` array; buckets are derived
//! and rebuilt on restore, making the byte format independent of bucket
//! occupancy history (mirroring the ring arenas' position independence).

/// Timer wheel over all input-VC indices. Disabled (zero-footprint) for
/// deadlock-avoidance networks, which have no starvation stage.
#[derive(Debug, Clone)]
pub(crate) struct TimerWheel {
    /// Scan period; 0 means the wheel is disabled.
    timeout: u64,
    /// Bucket count (wheel revolution = `slots * timeout` cycles).
    slots: usize,
    /// `u64` words per bucket bitset.
    words: usize,
    /// Bucket bitsets, `slots * words` flat.
    bits: Vec<u64>,
    /// Authoritative deadline per VC; `u64::MAX` = not enrolled.
    deadline: Vec<u64>,
}

impl TimerWheel {
    /// A wheel for `n_vcs` VCs scanning every `timeout` cycles.
    pub fn new(n_vcs: usize, timeout: u64, hop_latency: u64) -> Self {
        debug_assert!(timeout > 0);
        // Furthest reachable deadline: enrollment schedules at most
        // `2*timeout` ahead, a re-park at most `timeout + hop_latency`
        // (see `Network::recheck_starved_head`). One extra slot keeps the
        // firing bucket disjoint from every schedule target.
        let horizon = (2 * timeout).max(timeout + hop_latency);
        let slots = usize::try_from(horizon.div_ceil(timeout)).expect("tiny quotient") + 1;
        let words = n_vcs.div_ceil(64);
        TimerWheel {
            timeout,
            slots,
            words,
            bits: vec![0; slots * words],
            deadline: vec![u64::MAX; n_vcs],
        }
    }

    /// A disabled wheel (deadlock-avoidance mode): no storage, no entries.
    pub fn disabled() -> Self {
        TimerWheel {
            timeout: 0,
            slots: 0,
            words: 0,
            bits: Vec::new(),
            deadline: Vec::new(),
        }
    }

    /// Number of tracked VCs (0 when disabled).
    #[inline]
    pub fn len(&self) -> usize {
        self.deadline.len()
    }

    /// `u64` words per bucket.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words
    }

    /// The bucket a deadline lives in.
    #[inline]
    pub fn slot_of(&self, deadline: u64) -> usize {
        ((deadline / self.timeout) as usize) % self.slots
    }

    /// Word `w` of bucket `slot`.
    #[inline]
    pub fn slot_word(&self, slot: usize, w: usize) -> u64 {
        self.bits[slot * self.words + w]
    }

    /// Overwrites word `w` of bucket `slot` (the fire loop writes back the
    /// bits it decided to keep).
    #[inline]
    pub fn set_slot_word(&mut self, slot: usize, w: usize, word: u64) {
        self.bits[slot * self.words + w] = word;
    }

    /// Current deadline of `idx` (`u64::MAX` = not enrolled).
    #[inline]
    pub fn deadline(&self, idx: usize) -> u64 {
        self.deadline[idx]
    }

    /// Scan period (0 when disabled). The audit layer checks every
    /// enrolled deadline is a multiple of it.
    #[inline]
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Test-only raw deadline write that bypasses [`TimerWheel::schedule`]'s
    /// alignment assertion and bucket insertion — for corruption-injection
    /// tests that need a deliberately inconsistent wheel.
    #[cfg(test)]
    pub fn set_deadline_raw(&mut self, idx: usize, deadline: u64) {
        self.deadline[idx] = deadline;
    }

    /// Marks `idx` processed: its bucket bit (already cleared or kept by
    /// the fire loop) no longer speaks for it.
    #[inline]
    pub fn clear_deadline(&mut self, idx: usize) {
        self.deadline[idx] = u64::MAX;
    }

    /// Empties every bucket and deadline (checkpoint restore rebuilds the
    /// wheel from the serialized deadline array).
    pub fn reset(&mut self) {
        self.bits.fill(0);
        self.deadline.fill(u64::MAX);
    }

    /// Enrolls (or re-enrolls) `idx` to fire at `deadline`, a multiple of
    /// `timeout`. A previous enrollment's bucket bit may linger; the
    /// deadline overwrite makes it stale, and the fire loop discards it.
    #[inline]
    pub fn schedule(&mut self, idx: usize, deadline: u64) {
        debug_assert!(self.timeout > 0, "scheduling on a disabled wheel");
        debug_assert!(deadline.is_multiple_of(self.timeout));
        self.deadline[idx] = deadline;
        let slot = self.slot_of(deadline);
        self.bits[slot * self.words + (idx >> 6)] |= 1u64 << (idx & 63);
    }

    /// Raw shared-mutable view for the parallel shard-local apply (see
    /// [`crate::shard::ApplyCtx`]). Deadlines are per-VC and shard-owned
    /// (plain writes); bucket bitset words straddle shard boundaries, so
    /// the view ORs them atomically.
    pub(crate) fn view(&mut self) -> TimerWheelView {
        TimerWheelView {
            timeout: self.timeout,
            slots: self.slots,
            words: self.words,
            bits: self.bits.as_mut_ptr(),
            deadline: self.deadline.as_mut_ptr(),
            n_vcs: self.deadline.len(),
        }
    }
}

/// Raw view into a [`TimerWheel`] for the parallel shard-local apply.
///
/// # Safety contract
///
/// `schedule` may run concurrently from several shard workers: the
/// per-VC `deadline` entry is written plainly (each VC has exactly one
/// owning shard), while the bucket bitset word — shared across shard
/// boundaries — is set with an atomic OR, commuting with concurrent
/// enrollments into the same word.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimerWheelView {
    timeout: u64,
    slots: usize,
    words: usize,
    bits: *mut u64,
    deadline: *mut u64,
    n_vcs: usize,
}

// SAFETY: deadline writes are shard-disjoint, bucket words atomic.
unsafe impl Send for TimerWheelView {}
unsafe impl Sync for TimerWheelView {}

impl TimerWheelView {
    /// See [`TimerWheel::schedule`]; caller owns VC `idx`'s shard.
    #[inline]
    pub(crate) unsafe fn schedule(&self, idx: usize, deadline: u64) {
        debug_assert!(self.timeout > 0, "scheduling on a disabled wheel");
        debug_assert!(deadline.is_multiple_of(self.timeout));
        debug_assert!(idx < self.n_vcs);
        *self.deadline.add(idx) = deadline;
        let slot = ((deadline / self.timeout) as usize) % self.slots;
        let word = self.bits.add(slot * self.words + (idx >> 6));
        let word = std::sync::atomic::AtomicU64::from_ptr(word);
        word.fetch_or(1u64 << (idx & 63), std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sets_deadline_and_bucket_bit() {
        let mut w = TimerWheel::new(100, 8, 2);
        assert_eq!(w.len(), 100);
        assert!(w.slots >= 3, "2*timeout horizon needs >= 3 slots");
        assert_eq!(w.deadline(7), u64::MAX);
        w.schedule(7, 16);
        assert_eq!(w.deadline(7), 16);
        let slot = w.slot_of(16);
        assert_eq!(w.slot_word(slot, 0) >> 7 & 1, 1);
        // Re-enrolling moves the authoritative deadline; the old bit is
        // stale but the new bucket gains one too.
        w.schedule(7, 24);
        assert_eq!(w.deadline(7), 24);
        assert_eq!(w.slot_word(w.slot_of(24), 0) >> 7 & 1, 1);
        w.clear_deadline(7);
        assert_eq!(w.deadline(7), u64::MAX);
    }

    #[test]
    fn reachable_deadlines_never_map_to_the_firing_bucket() {
        // For any `now` that is a scan cycle and any schedule target in
        // `now+timeout ..= now+horizon`, the target's bucket differs from
        // `now`'s — the property the fire loop's keep/discard rule needs.
        for (timeout, hop) in [(8u64, 2u64), (3, 2), (1, 4), (5, 1), (2, 11)] {
            let w = TimerWheel::new(64, timeout, hop);
            // Reachable deadlines are multiples of `timeout`, at most
            // max(2, ceil(hop/timeout)) periods ahead of the firing cycle.
            let max_periods = 2u64.max(hop.div_ceil(timeout));
            for now in (0..20 * timeout).step_by(timeout as usize) {
                for k in 1..=max_periods {
                    let d = now + k * timeout;
                    assert_ne!(
                        w.slot_of(d),
                        w.slot_of(now),
                        "timeout {timeout} hop {hop}: deadline {d} collides with firing {now}"
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_wheel_is_empty() {
        let w = TimerWheel::disabled();
        assert_eq!(w.len(), 0);
        assert_eq!(w.word_count(), 0);
    }
}
