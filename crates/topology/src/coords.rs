use crate::MAX_DIMS;

/// Per-dimension coordinates of a node, stored inline.
///
/// Dimension 0 is the least-significant coordinate of the node number.
///
/// # Examples
///
/// ```
/// use kncube::Torus;
/// let t = Torus::new(4, 2)?;
/// let c = t.coords(7); // 7 = 1*4 + 3
/// assert_eq!(c[0], 3);
/// assert_eq!(c[1], 1);
/// assert_eq!(c.len(), 2);
/// # Ok::<(), kncube::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    c: [u16; MAX_DIMS],
    n: u8,
}

impl Coords {
    /// Builds coordinates from a slice (dimension 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `parts.len()` exceeds [`MAX_DIMS`] or a coordinate exceeds
    /// `u16::MAX`.
    #[must_use]
    pub fn from_slice(parts: &[usize]) -> Self {
        assert!(parts.len() <= MAX_DIMS, "too many dimensions");
        let mut c = [0u16; MAX_DIMS];
        for (slot, &p) in c.iter_mut().zip(parts) {
            *slot = u16::try_from(p).expect("coordinate exceeds u16::MAX");
        }
        Coords {
            c,
            n: parts.len() as u8,
        }
    }

    pub(crate) fn new_zero(n: usize) -> Self {
        Coords {
            c: [0; MAX_DIMS],
            n: n as u8,
        }
    }

    pub(crate) fn set(&mut self, dim: usize, v: u16) {
        debug_assert!(dim < self.len());
        self.c[dim] = v;
    }

    /// Number of dimensions.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.n)
    }

    /// Whether there are zero dimensions (never true for a valid torus).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over the coordinates, dimension 0 first.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.c[..self.len()].iter().copied()
    }

    /// The coordinates as a slice, dimension 0 first.
    #[must_use]
    pub fn as_slice(&self) -> &[u16] {
        &self.c[..self.len()]
    }
}

impl core::ops::Index<usize> for Coords {
    type Output = u16;

    fn index(&self, dim: usize) -> &u16 {
        &self.as_slice()[dim]
    }
}

impl core::fmt::Display for Coords {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_round_trips() {
        let c = Coords::from_slice(&[3, 1, 4]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_slice(), &[3, 1, 4]);
        assert_eq!(c[2], 4);
    }

    #[test]
    fn display_is_tuple_like() {
        let c = Coords::from_slice(&[5, 9]);
        assert_eq!(c.to_string(), "(5,9)");
    }

    #[test]
    #[should_panic(expected = "too many dimensions")]
    fn too_many_dimensions_panics() {
        let _ = Coords::from_slice(&[0; MAX_DIMS + 1]);
    }
}
