use core::fmt;

/// Error returned when constructing an invalid [`Torus`](crate::Torus).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Radix must be at least 2 so that every dimension has distinct nodes.
    RadixTooSmall {
        /// The rejected radix.
        k: usize,
    },
    /// Dimension count must be in `1..=MAX_DIMS`.
    BadDimensionCount {
        /// The rejected dimension count.
        n: usize,
    },
    /// `k^n` overflows the node index space.
    TooManyNodes {
        /// Requested radix.
        k: usize,
        /// Requested dimension count.
        n: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RadixTooSmall { k } => {
                write!(f, "torus radix must be at least 2, got {k}")
            }
            TopologyError::BadDimensionCount { n } => write!(
                f,
                "torus dimension count must be in 1..={}, got {n}",
                crate::MAX_DIMS
            ),
            TopologyError::TooManyNodes { k, n } => {
                write!(f, "{k}^{n} nodes exceeds the supported node index space")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
