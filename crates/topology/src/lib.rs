//! k-ary n-cube (torus) topology math.
//!
//! This crate provides the coordinate arithmetic that every other crate in
//! the reproduction builds on: node numbering, per-dimension minimal
//! directions with torus wraparound, dimension-order (deterministic) hops for
//! escape/recovery paths, and the set of *productive* (minimal) hops used by
//! adaptive routing and by the ALO congestion-control baseline.
//!
//! The paper evaluates a 16-ary 2-cube (256 nodes); everything here is
//! generic over radix `k >= 2` and dimension count `1 <= n <= MAX_DIMS`.
//!
//! # Examples
//!
//! ```
//! use kncube::{Torus, Dir};
//!
//! let t = Torus::new(16, 2)?;
//! assert_eq!(t.node_count(), 256);
//! // Node 0 and node 17 differ by one hop in each dimension.
//! assert_eq!(t.distance(0, 17), 2);
//! // Wraparound: node 0 to node 15 along dimension 0 is one hop Minus.
//! assert_eq!(t.distance(0, 15), 1);
//! # Ok::<(), kncube::TopologyError>(())
//! ```

mod coords;
mod error;
mod torus;

pub use coords::Coords;
pub use error::TopologyError;
pub use torus::{DimRoute, Torus};

/// Index of a node in the network, in `0..Torus::node_count()`.
///
/// Node `id` has coordinates `(..., id / k % k, id % k)`; the
/// least-significant coordinate is dimension 0, matching the paper's
/// "lowest dimension" used first by the side-band gather.
pub type NodeId = usize;

/// A direction along one torus dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Towards increasing coordinate (with wraparound).
    Plus,
    /// Towards decreasing coordinate (with wraparound).
    Minus,
}

impl Dir {
    /// The opposite direction.
    ///
    /// ```
    /// use kncube::Dir;
    /// assert_eq!(Dir::Plus.opposite(), Dir::Minus);
    /// ```
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::Plus => Dir::Minus,
            Dir::Minus => Dir::Plus,
        }
    }

    /// Both directions, in a fixed order (useful for iteration).
    pub const BOTH: [Dir; 2] = [Dir::Plus, Dir::Minus];
}

impl core::fmt::Display for Dir {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Dir::Plus => f.write_str("+"),
            Dir::Minus => f.write_str("-"),
        }
    }
}

/// Maximum supported number of torus dimensions.
///
/// Eight dimensions is far beyond anything the paper (n = 2) or plausible
/// extensions (n = 3, 4) need, while letting [`Coords`] live on the stack.
pub const MAX_DIMS: usize = 8;
