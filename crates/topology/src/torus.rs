use crate::{Coords, Dir, NodeId, TopologyError, MAX_DIMS};

/// A k-ary n-cube: `n` dimensions of radix `k` with wraparound links.
///
/// Nodes are numbered `0..k^n` with dimension 0 as the least-significant
/// digit. Every node has `2n` outgoing physical channels (one per dimension
/// per direction); links are full duplex, as in the paper's network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus {
    k: usize,
    n: usize,
    nodes: usize,
}

/// Minimal-routing information for one dimension of a source/destination
/// pair: how many hops remain in this dimension and which direction(s) are
/// minimal.
///
/// When the remaining offset is exactly `k/2` (even radix) both directions
/// are tied; the tie is broken deterministically towards `Plus`, as in
/// routers that compute a single minimal direction per dimension. (Spreading
/// ties across both ring directions makes permutations like butterfly —
/// whose pairs often differ by exactly `k/2` — unrealistically benign.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimRoute {
    /// Remaining minimal hops in this dimension (0 when aligned).
    pub hops: u16,
    /// Whether a `Plus` hop is productive (minimal).
    pub plus: bool,
    /// Whether a `Minus` hop is productive (minimal).
    pub minus: bool,
}

impl DimRoute {
    /// A route for an already-aligned dimension.
    pub const ALIGNED: DimRoute = DimRoute {
        hops: 0,
        plus: false,
        minus: false,
    };

    /// Whether `dir` is a productive direction for this dimension.
    #[must_use]
    pub fn allows(&self, dir: Dir) -> bool {
        match dir {
            Dir::Plus => self.plus,
            Dir::Minus => self.minus,
        }
    }

    /// The preferred deterministic direction: `Plus` on ties.
    ///
    /// Returns `None` when the dimension is aligned.
    #[must_use]
    pub fn deterministic_dir(&self) -> Option<Dir> {
        if self.plus {
            Some(Dir::Plus)
        } else if self.minus {
            Some(Dir::Minus)
        } else {
            None
        }
    }
}

/// The set of productive (minimal) hops from a node towards a destination:
/// at most one entry per dimension per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSet {
    hops: [(u8, Dir); 2 * MAX_DIMS],
    len: u8,
}

impl HopSet {
    fn new() -> Self {
        HopSet {
            hops: [(0, Dir::Plus); 2 * MAX_DIMS],
            len: 0,
        }
    }

    fn push(&mut self, dim: usize, dir: Dir) {
        self.hops[usize::from(self.len)] = (dim as u8, dir);
        self.len += 1;
    }

    /// Number of productive (dimension, direction) pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the packet has arrived (no productive hops remain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the productive `(dimension, direction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Dir)> + '_ {
        self.hops[..self.len()]
            .iter()
            .map(|&(d, dir)| (usize::from(d), dir))
    }
}

impl Torus {
    /// Creates a `k`-ary `n`-cube.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `k < 2`, `n` is not in `1..=MAX_DIMS`, or
    /// `k^n` overflows the node index space.
    ///
    /// ```
    /// use kncube::Torus;
    /// assert!(Torus::new(1, 2).is_err());
    /// assert!(Torus::new(16, 2).is_ok());
    /// ```
    pub fn new(k: usize, n: usize) -> Result<Self, TopologyError> {
        if k < 2 {
            return Err(TopologyError::RadixTooSmall { k });
        }
        if n == 0 || n > MAX_DIMS {
            return Err(TopologyError::BadDimensionCount { n });
        }
        if k > usize::from(u16::MAX) {
            return Err(TopologyError::TooManyNodes { k, n });
        }
        let mut nodes: usize = 1;
        for _ in 0..n {
            nodes = nodes
                .checked_mul(k)
                .filter(|&m| m <= (1 << 24))
                .ok_or(TopologyError::TooManyNodes { k, n })?;
        }
        Ok(Torus { k, n, nodes })
    }

    /// The radix `k`.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.k
    }

    /// The number of dimensions `n`.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.n
    }

    /// Total node count `k^n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of unidirectional physical channels leaving each node
    /// (excluding injection/delivery): `2n`.
    #[must_use]
    pub fn channels_per_node(&self) -> usize {
        2 * self.n
    }

    /// Decomposes a node id into per-dimension coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `node >= node_count()`.
    #[must_use]
    pub fn coords(&self, node: NodeId) -> Coords {
        assert!(node < self.nodes, "node id {node} out of range");
        let mut c = Coords::new_zero(self.n);
        let mut rem = node;
        for dim in 0..self.n {
            c.set(dim, (rem % self.k) as u16);
            rem /= self.k;
        }
        c
    }

    /// Recomposes a node id from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the dimension count mismatches or a coordinate is `>= k`.
    #[must_use]
    pub fn node(&self, coords: Coords) -> NodeId {
        assert_eq!(coords.len(), self.n, "dimension count mismatch");
        let mut id = 0usize;
        for (dim, &v) in coords.as_slice().iter().enumerate().rev() {
            assert!(
                usize::from(v) < self.k,
                "coordinate {v} out of range in dim {dim}"
            );
            id = id * self.k + usize::from(v);
        }
        id
    }

    /// The neighbor of `node` one hop along `dim` in direction `dir`
    /// (with wraparound).
    ///
    /// # Panics
    ///
    /// Panics if `node` or `dim` is out of range.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Dir) -> NodeId {
        assert!(dim < self.n, "dimension {dim} out of range");
        let mut c = self.coords(node);
        let cur = usize::from(c[dim]);
        let next = match dir {
            Dir::Plus => (cur + 1) % self.k,
            Dir::Minus => (cur + self.k - 1) % self.k,
        };
        c.set(dim, next as u16);
        self.node(c)
    }

    /// Minimal-routing information for one dimension of the pair
    /// `(cur, dst)`.
    #[must_use]
    pub fn dim_route(&self, cur: NodeId, dst: NodeId, dim: usize) -> DimRoute {
        let a = usize::from(self.coords(cur)[dim]);
        let b = usize::from(self.coords(dst)[dim]);
        self.dim_route_coords(a, b)
    }

    fn dim_route_coords(&self, a: usize, b: usize) -> DimRoute {
        if a == b {
            return DimRoute::ALIGNED;
        }
        let fwd = (b + self.k - a) % self.k; // hops going Plus
        let bwd = self.k - fwd; // hops going Minus
        let hops = fwd.min(bwd) as u16;
        DimRoute {
            hops,
            plus: fwd <= bwd,
            minus: bwd < fwd,
        }
    }

    /// Total minimal hop count between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..self.n)
            .map(|d| {
                usize::from(
                    self.dim_route_coords(usize::from(ca[d]), usize::from(cb[d]))
                        .hops,
                )
            })
            .sum()
    }

    /// All productive (minimal) `(dimension, direction)` hops from `cur`
    /// towards `dst`. Empty iff `cur == dst`.
    ///
    /// Adaptive routing may take any of these; the ALO baseline calls the
    /// corresponding physical channels *useful*.
    #[must_use]
    pub fn productive_hops(&self, cur: NodeId, dst: NodeId) -> HopSet {
        let ca = self.coords(cur);
        let cb = self.coords(dst);
        let mut set = HopSet::new();
        for dim in 0..self.n {
            let r = self.dim_route_coords(usize::from(ca[dim]), usize::from(cb[dim]));
            if r.plus {
                set.push(dim, Dir::Plus);
            }
            if r.minus {
                set.push(dim, Dir::Minus);
            }
        }
        set
    }

    /// The dimension-order (deterministic, oblivious) next hop: the lowest
    /// unaligned dimension, taking the minimal direction (`Plus` on ties).
    ///
    /// Returns `None` when `cur == dst`. This is the routing function of the
    /// Duato escape channel and of the Disha recovery drain path; it is
    /// deadlock-free on its own sub-network.
    #[must_use]
    pub fn dimension_order_hop(&self, cur: NodeId, dst: NodeId) -> Option<(usize, Dir)> {
        let ca = self.coords(cur);
        let cb = self.coords(dst);
        for dim in 0..self.n {
            let r = self.dim_route_coords(usize::from(ca[dim]), usize::from(cb[dim]));
            if let Some(dir) = r.deterministic_dir() {
                return Some((dim, dir));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t16() -> Torus {
        Torus::new(16, 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Torus::new(1, 2),
            Err(TopologyError::RadixTooSmall { k: 1 })
        ));
        assert!(matches!(
            Torus::new(4, 0),
            Err(TopologyError::BadDimensionCount { n: 0 })
        ));
        assert!(matches!(
            Torus::new(4, 9),
            Err(TopologyError::BadDimensionCount { n: 9 })
        ));
        assert!(Torus::new(2, 8).is_ok());
        assert!(Torus::new(1 << 13, 2).is_err()); // 2^26 nodes too many
    }

    #[test]
    fn paper_network_shape() {
        let t = t16();
        assert_eq!(t.node_count(), 256);
        assert_eq!(t.channels_per_node(), 4);
    }

    #[test]
    fn coords_round_trip() {
        let t = t16();
        for id in 0..t.node_count() {
            assert_eq!(t.node(t.coords(id)), id);
        }
    }

    #[test]
    fn neighbor_wraps_around() {
        let t = t16();
        assert_eq!(t.neighbor(0, 0, Dir::Minus), 15);
        assert_eq!(t.neighbor(15, 0, Dir::Plus), 0);
        assert_eq!(t.neighbor(0, 1, Dir::Minus), 240);
        assert_eq!(t.neighbor(5, 1, Dir::Plus), 21);
    }

    #[test]
    fn neighbor_is_involutive_with_opposite() {
        let t = Torus::new(5, 3).unwrap();
        for id in 0..t.node_count() {
            for dim in 0..3 {
                for dir in Dir::BOTH {
                    let nb = t.neighbor(id, dim, dir);
                    assert_eq!(t.neighbor(nb, dim, dir.opposite()), id);
                }
            }
        }
    }

    #[test]
    fn distance_wraparound_minimal() {
        let t = t16();
        assert_eq!(t.distance(0, 15), 1);
        assert_eq!(t.distance(0, 8), 8); // exactly k/2
        assert_eq!(t.distance(0, 17), 2);
        assert_eq!(t.distance(3, 3), 0);
    }

    #[test]
    fn dim_route_tie_breaks_towards_plus() {
        let t = t16();
        let r = t.dim_route(0, 8, 0);
        assert_eq!(r.hops, 8);
        assert!(r.plus && !r.minus);
        let r = t.dim_route(0, 3, 0);
        assert!(r.plus && !r.minus);
        let r = t.dim_route(0, 13, 0);
        assert!(!r.plus && r.minus);
    }

    #[test]
    fn productive_hops_match_distance_dims() {
        let t = t16();
        let hs = t.productive_hops(0, 17);
        let hops: Vec<_> = hs.iter().collect();
        assert_eq!(hops, vec![(0, Dir::Plus), (1, Dir::Plus)]);
        assert!(t.productive_hops(42, 42).is_empty());
    }

    #[test]
    fn dimension_order_walk_reaches_destination_minimally() {
        let t = Torus::new(7, 3).unwrap();
        for (src, dst) in [(0, 342), (5, 5), (100, 17), (342, 0)] {
            let mut cur = src;
            let mut steps = 0;
            while let Some((dim, dir)) = t.dimension_order_hop(cur, dst) {
                cur = t.neighbor(cur, dim, dir);
                steps += 1;
                assert!(steps <= t.node_count(), "walk did not terminate");
            }
            assert_eq!(cur, dst);
            assert_eq!(steps, t.distance(src, dst));
        }
    }

    #[test]
    fn exactly_one_direction_is_ever_productive() {
        for k in [4usize, 5, 16] {
            let t = Torus::new(k, 2).unwrap();
            for a in 0..k {
                for b in 0..k {
                    let r = t.dim_route_coords(a, b);
                    assert!(!(r.plus && r.minus), "single minimal direction per dim");
                    assert_eq!(r.plus || r.minus, a != b);
                }
            }
        }
    }
}
