//! Randomized property-style tests for the torus topology.
//!
//! Formerly written with `proptest`; rewritten as seeded in-tree sweeps so
//! the workspace builds with no network access (see README "Hermetic
//! build"). The default sweep is small and fast; enable the
//! `slow-proptests` feature to widen it:
//!
//! ```sh
//! cargo test -p kncube --features slow-proptests
//! ```

use kncube::{Dir, Torus};

/// Cases per property: every (radix, dimensions) shape times `CASE_SEEDS`
/// node samples.
const CASE_SEEDS: u64 = if cfg!(feature = "slow-proptests") {
    64
} else {
    8
};

/// SplitMix64: deterministic, platform-independent case generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every torus shape the old proptest strategy could produce.
fn all_shapes() -> Vec<Torus> {
    let mut shapes = Vec::new();
    for k in 2..=16 {
        for n in 1..=3 {
            shapes.push(Torus::new(k, n).unwrap());
        }
    }
    shapes
}

/// Runs `f(torus, rng)` for every shape and seeded case.
fn for_all_cases(mut f: impl FnMut(&Torus, &mut u64)) {
    for t in &all_shapes() {
        for seed in 0..CASE_SEEDS {
            let mut rng = 0xA5A5_0000
                ^ (seed << 8)
                ^ ((t.radix() as u64) << 32)
                ^ ((t.dimensions() as u64) << 40);
            f(t, &mut rng);
        }
    }
}

#[test]
fn coords_node_round_trip() {
    for_all_cases(|t, rng| {
        let id = (mix(rng) as usize) % t.node_count();
        assert_eq!(t.node(t.coords(id)), id);
    });
}

#[test]
fn distance_is_symmetric() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        let b = (mix(rng) as usize) % t.node_count();
        assert_eq!(t.distance(a, b), t.distance(b, a));
        assert_eq!(t.distance(a, a), 0);
    });
}

#[test]
fn distance_triangle_inequality() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        let b = (mix(rng) as usize) % t.node_count();
        let c = (mix(rng) as usize) % t.node_count();
        assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    });
}

#[test]
fn productive_hop_decreases_distance() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        let b = (mix(rng) as usize) % t.node_count();
        for (dim, dir) in t.productive_hops(a, b).iter() {
            let next = t.neighbor(a, dim, dir);
            assert_eq!(t.distance(next, b) + 1, t.distance(a, b));
        }
    });
}

#[test]
fn productive_hops_empty_only_at_destination() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        let b = (mix(rng) as usize) % t.node_count();
        assert_eq!(t.productive_hops(a, b).is_empty(), a == b);
    });
}

#[test]
fn dimension_order_hop_is_productive() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        let b = (mix(rng) as usize) % t.node_count();
        if let Some((dim, dir)) = t.dimension_order_hop(a, b) {
            let productive: Vec<_> = t.productive_hops(a, b).iter().collect();
            assert!(productive.contains(&(dim, dir)));
        } else {
            assert_eq!(a, b);
        }
    });
}

#[test]
fn neighbors_are_distance_one() {
    for_all_cases(|t, rng| {
        let a = (mix(rng) as usize) % t.node_count();
        for dim in 0..t.dimensions() {
            for dir in Dir::BOTH {
                let nb = t.neighbor(a, dim, dir);
                if t.radix() > 1 {
                    assert_eq!(t.distance(a, nb), 1);
                }
            }
        }
    });
}
