//! Property-based tests for the torus topology.

use kncube::{Dir, Torus};
use proptest::prelude::*;

fn torus_strategy() -> impl Strategy<Value = Torus> {
    (2usize..=16, 1usize..=3).prop_map(|(k, n)| Torus::new(k, n).unwrap())
}

proptest! {
    #[test]
    fn coords_node_round_trip(t in torus_strategy(), seed in any::<u64>()) {
        let id = (seed as usize) % t.node_count();
        prop_assert_eq!(t.node(t.coords(id)), id);
    }

    #[test]
    fn distance_is_symmetric(t in torus_strategy(), a in any::<u64>(), b in any::<u64>()) {
        let a = (a as usize) % t.node_count();
        let b = (b as usize) % t.node_count();
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn distance_triangle_inequality(
        t in torus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let a = (a as usize) % t.node_count();
        let b = (b as usize) % t.node_count();
        let c = (c as usize) % t.node_count();
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    #[test]
    fn productive_hop_decreases_distance(
        t in torus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = (a as usize) % t.node_count();
        let b = (b as usize) % t.node_count();
        for (dim, dir) in t.productive_hops(a, b).iter() {
            let next = t.neighbor(a, dim, dir);
            prop_assert_eq!(t.distance(next, b) + 1, t.distance(a, b));
        }
    }

    #[test]
    fn productive_hops_empty_only_at_destination(
        t in torus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = (a as usize) % t.node_count();
        let b = (b as usize) % t.node_count();
        prop_assert_eq!(t.productive_hops(a, b).is_empty(), a == b);
    }

    #[test]
    fn dimension_order_hop_is_productive(
        t in torus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = (a as usize) % t.node_count();
        let b = (b as usize) % t.node_count();
        if let Some((dim, dir)) = t.dimension_order_hop(a, b) {
            let productive: Vec<_> = t.productive_hops(a, b).iter().collect();
            prop_assert!(productive.contains(&(dim, dir)));
        } else {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn neighbors_are_distance_one(t in torus_strategy(), a in any::<u64>()) {
        let a = (a as usize) % t.node_count();
        for dim in 0..t.dimensions() {
            for dir in Dir::BOTH {
                let nb = t.neighbor(a, dim, dir);
                if t.radix() > 1 {
                    prop_assert_eq!(t.distance(a, nb), 1);
                }
            }
        }
    }
}
