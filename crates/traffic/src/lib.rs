//! Synthetic workload generation for the stcc reproduction.
//!
//! The paper drives its 16-ary 2-cube with open-loop synthetic traffic: every
//! node generates fixed-length packets at a configured rate, with the
//! destination chosen by a *communication pattern*. Four patterns appear in
//! the evaluation — uniform random, bit-reversal, perfect-shuffle and
//! butterfly — plus a *bursty* workload that alternates low and high load
//! phases while rotating the pattern of each high-load burst (Figure 6).
//!
//! This crate provides:
//!
//! * [`Pattern`] — destination selection (the paper's four patterns plus a
//!   few standard extras useful for extensions),
//! * [`Process`] — packet generation processes (Bernoulli and periodic),
//! * [`Workload`] / [`WorkloadRunner`] — phase schedules and their per-node
//!   runtime state, polled once per node per cycle by the simulator.
//!
//! # Examples
//!
//! ```
//! use traffic::{Pattern, Process, Workload, WorkloadRunner};
//!
//! // Uniform-random Bernoulli traffic at 0.01 packets/node/cycle.
//! let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01));
//! let mut runner = WorkloadRunner::new(&wl, 256, 0xC0FFEE)?;
//! let mut generated = 0;
//! for cycle in 0..1000 {
//!     for node in 0..256 {
//!         if runner.poll(cycle, node).is_some() {
//!             generated += 1;
//!         }
//!     }
//! }
//! assert!(generated > 0);
//! # Ok::<(), traffic::TrafficError>(())
//! ```

mod pattern;
mod process;
mod rng;
mod workload;

pub use pattern::{bits_for_nodes, Pattern};
pub use process::Process;
pub use rng::{splitmix64, SimRng};
pub use workload::{Phase, Workload, WorkloadRunner};

use core::fmt;

/// Error returned when a workload configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// Bit-permutation patterns need a power-of-two node count.
    NodesNotPowerOfTwo {
        /// The rejected node count.
        nodes: usize,
    },
    /// Bernoulli rates must be in `[0, 1]` packets/node/cycle.
    BadRate {
        /// The rejected rate.
        rate: f64,
    },
    /// Periodic intervals must be nonzero.
    ZeroInterval,
    /// A workload must contain at least one phase.
    EmptyWorkload,
    /// Hotspot patterns need at least one hotspot node within range.
    BadHotspot,
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::NodesNotPowerOfTwo { nodes } => write!(
                f,
                "bit-permutation patterns require a power-of-two node count, got {nodes}"
            ),
            TrafficError::BadRate { rate } => {
                write!(
                    f,
                    "injection rate must be in [0, 1] packets/node/cycle, got {rate}"
                )
            }
            TrafficError::ZeroInterval => f.write_str("periodic interval must be nonzero"),
            TrafficError::EmptyWorkload => f.write_str("workload must contain at least one phase"),
            TrafficError::BadHotspot => f.write_str("hotspot pattern needs valid hotspot nodes"),
        }
    }
}

impl std::error::Error for TrafficError {}
