use crate::TrafficError;

/// A packet generation process for one node (open loop).
///
/// At most one packet is generated per node per cycle, as in flexsim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Process {
    /// Generate a packet each cycle with independent probability `rate`
    /// (packets/node/cycle).
    Bernoulli {
        /// Packets per node per cycle, in `[0, 1]`.
        rate: f64,
    },
    /// Generate one packet every `interval` cycles (the paper's "packet
    /// regeneration interval"). Each node gets a random phase offset so the
    /// fleet does not generate in lockstep.
    Periodic {
        /// Cycles between consecutive packet generations.
        interval: u64,
    },
    /// Generate nothing (idle phase).
    Silent,
}

impl Process {
    /// A Bernoulli process at `rate` packets/node/cycle.
    #[must_use]
    pub fn bernoulli(rate: f64) -> Self {
        Process::Bernoulli { rate }
    }

    /// A periodic process with the given regeneration interval.
    #[must_use]
    pub fn periodic(interval: u64) -> Self {
        Process::Periodic { interval }
    }

    /// The mean offered load of this process in packets/node/cycle.
    ///
    /// ```
    /// use traffic::Process;
    /// assert!((Process::periodic(100).offered_rate() - 0.01).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        match self {
            Process::Bernoulli { rate } => *rate,
            Process::Periodic { interval } => 1.0 / (*interval as f64),
            Process::Silent => 0.0,
        }
    }

    /// Validates process parameters.
    ///
    /// # Errors
    ///
    /// Rejects Bernoulli rates outside `[0, 1]` (or NaN) and zero intervals.
    pub fn validate(&self) -> Result<(), TrafficError> {
        match self {
            Process::Bernoulli { rate } => {
                if rate.is_finite() && (0.0..=1.0).contains(rate) {
                    Ok(())
                } else {
                    Err(TrafficError::BadRate { rate: *rate })
                }
            }
            Process::Periodic { interval } => {
                if *interval == 0 {
                    Err(TrafficError::ZeroInterval)
                } else {
                    Ok(())
                }
            }
            Process::Silent => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_rates() {
        assert_eq!(Process::bernoulli(0.02).offered_rate(), 0.02);
        assert_eq!(Process::periodic(15).offered_rate(), 1.0 / 15.0);
        assert_eq!(Process::Silent.offered_rate(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Process::bernoulli(0.5).validate().is_ok());
        assert!(Process::bernoulli(-0.1).validate().is_err());
        assert!(Process::bernoulli(1.5).validate().is_err());
        assert!(Process::bernoulli(f64::NAN).validate().is_err());
        assert!(Process::periodic(1).validate().is_ok());
        assert!(Process::periodic(0).validate().is_err());
        assert!(Process::Silent.validate().is_ok());
    }
}
