//! In-tree seeded pseudo-random number generation.
//!
//! The build must be hermetic (no network access, no external crates), so
//! the workload generator carries its own small PRNG instead of depending on
//! `rand`: xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
//! combination the `rand`/`xoshiro` crates themselves recommend for
//! simulation workloads. Not cryptographic — statistical quality and
//! reproducibility are all a traffic generator needs.
//!
//! Determinism contract: the same seed produces the same stream on every
//! platform and every run (`u64` arithmetic only, no platform-dependent
//! state), so `same seed => same RunSummary` holds across the repo.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Also usable as a standalone stateless mixer: feeding distinct counters
/// produces decorrelated values, which the seeding path below relies on.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable PRNG: xoshiro256** with SplitMix64 seeding.
///
/// # Examples
///
/// ```
/// use traffic::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.random_range(0..10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw generator state (for checkpointing).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`SimRng::state`],
    /// resuming the stream exactly where it left off.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[range.start, range.end)` via Lemire's
    /// nearly-divisionless method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("random_range called with an empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_index(&mut self, range: core::ops::Range<usize>) -> usize {
        self.random_range(range.start as u64..range.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SimRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(0xDEAD_BEF0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // SplitMix64 seeding guarantees a nonzero xoshiro state even for
        // seed 0 (an all-zero state would emit zeros forever).
        let mut r = SimRng::seed_from_u64(0);
        let sum: u64 = (0..16).map(|_| r.next_u64()).fold(0, u64::wrapping_add);
        assert_ne!(sum, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.random()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut r = SimRng::seed_from_u64(5);
        let mut seen = [false; 16];
        for _ in 0..2_000 {
            let v = r.random_index(0..16);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1_000 {
            let v = r.random_range(100..103);
            assert!((100..103).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SimRng::seed_from_u64(0).random_range(5..5);
    }
}
