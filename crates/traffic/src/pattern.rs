use crate::{SimRng, TrafficError};
use kncube::NodeId;

/// Number of address bits for a power-of-two node count.
///
/// # Errors
///
/// Returns [`TrafficError::NodesNotPowerOfTwo`] otherwise.
///
/// ```
/// assert_eq!(traffic::bits_for_nodes(256).unwrap(), 8);
/// assert!(traffic::bits_for_nodes(100).is_err());
/// ```
pub fn bits_for_nodes(nodes: usize) -> Result<u32, TrafficError> {
    if nodes >= 2 && nodes.is_power_of_two() {
        Ok(nodes.trailing_zeros())
    } else {
        Err(TrafficError::NodesNotPowerOfTwo { nodes })
    }
}

/// A communication pattern: how a source chooses each packet's destination.
///
/// The bit-permutation patterns operate on the `b = log2(node_count)` bit
/// coordinates `(a_{b-1}, ..., a_1, a_0)` of the source node number, exactly
/// as defined in §5.1 of the paper:
///
/// * **bit-reversal**: `(a_0, a_1, ..., a_{b-1})`
/// * **perfect-shuffle**: `(a_{b-2}, ..., a_0, a_{b-1})` (rotate left)
/// * **butterfly**: `(a_0, a_{b-2}, ..., a_1, a_{b-1})` (swap MSB and LSB)
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Destination drawn uniformly at random among all *other* nodes.
    UniformRandom,
    /// Bit-reversal permutation.
    BitReversal,
    /// Perfect-shuffle permutation (left rotate by one bit).
    PerfectShuffle,
    /// Butterfly permutation (exchange most- and least-significant bits).
    Butterfly,
    /// Bit-complement permutation (extension; classic adversarial pattern).
    BitComplement,
    /// Matrix transpose (swap the high and low halves of the address bits;
    /// extension pattern common in the literature).
    Transpose,
    /// A fraction of traffic targets a fixed hotspot node; the rest is
    /// uniform random (extension; models the tree-saturation hotspot of
    /// Pfister & Norton).
    Hotspot {
        /// The hotspot destination.
        target: NodeId,
        /// Fraction of packets sent to the hotspot, in `[0, 1]`.
        fraction: f64,
    },
}

impl Pattern {
    /// Short name used in experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform-random",
            Pattern::BitReversal => "bit-reversal",
            Pattern::PerfectShuffle => "perfect-shuffle",
            Pattern::Butterfly => "butterfly",
            Pattern::BitComplement => "bit-complement",
            Pattern::Transpose => "transpose",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }

    /// Resolves a pattern by its table name (the strings [`Pattern::name`]
    /// emits): `uniform-random`, `bit-reversal`, `perfect-shuffle`,
    /// `butterfly`, `bit-complement`, `transpose`, or `hotspot` (node 0 at
    /// the literature's 25% skew). Returns `None` for an unknown name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Pattern> {
        match name {
            "uniform-random" => Some(Pattern::UniformRandom),
            "bit-reversal" => Some(Pattern::BitReversal),
            "perfect-shuffle" => Some(Pattern::PerfectShuffle),
            "butterfly" => Some(Pattern::Butterfly),
            "bit-complement" => Some(Pattern::BitComplement),
            "transpose" => Some(Pattern::Transpose),
            "hotspot" => Some(Pattern::Hotspot {
                target: 0,
                fraction: 0.25,
            }),
            _ => None,
        }
    }

    /// Every name [`Pattern::by_name`] resolves, in display order.
    #[must_use]
    pub fn names() -> &'static [&'static str] {
        &[
            "uniform-random",
            "bit-reversal",
            "perfect-shuffle",
            "butterfly",
            "bit-complement",
            "transpose",
            "hotspot",
        ]
    }

    /// Validates the pattern against a node count.
    ///
    /// # Errors
    ///
    /// Bit-permutation patterns require a power-of-two node count; hotspot
    /// patterns require `target < nodes` and `fraction` in `[0, 1]`.
    pub fn validate(&self, nodes: usize) -> Result<(), TrafficError> {
        match self {
            Pattern::UniformRandom => Ok(()),
            Pattern::BitReversal
            | Pattern::PerfectShuffle
            | Pattern::Butterfly
            | Pattern::BitComplement
            | Pattern::Transpose => bits_for_nodes(nodes).map(|_| ()),
            Pattern::Hotspot { target, fraction } => {
                if *target < nodes && (0.0..=1.0).contains(fraction) {
                    Ok(())
                } else {
                    Err(TrafficError::BadHotspot)
                }
            }
        }
    }

    /// Chooses a destination for a packet from `src`.
    ///
    /// Deterministic patterns ignore `rng`. The result of a deterministic
    /// pattern may equal `src` (e.g. palindromic addresses under
    /// bit-reversal); such packets are delivered locally by the simulator.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pattern was not validated for `nodes`.
    #[must_use]
    pub fn destination(&self, src: NodeId, nodes: usize, rng: &mut SimRng) -> NodeId {
        debug_assert!(self.validate(nodes).is_ok());
        match self {
            Pattern::UniformRandom => {
                if nodes == 1 {
                    return src;
                }
                // Uniform among all nodes except the source.
                let d = rng.random_index(0..nodes - 1);
                if d >= src {
                    d + 1
                } else {
                    d
                }
            }
            Pattern::BitReversal => {
                let b = nodes.trailing_zeros();
                (src.reverse_bits() >> (usize::BITS - b)) & (nodes - 1)
            }
            Pattern::PerfectShuffle => {
                let b = nodes.trailing_zeros();
                ((src << 1) | (src >> (b - 1))) & (nodes - 1)
            }
            Pattern::Butterfly => {
                let b = nodes.trailing_zeros();
                if b == 1 {
                    return src;
                }
                let msb = (src >> (b - 1)) & 1;
                let lsb = src & 1;
                let mid = src & ((nodes - 1) >> 1) & !1;
                mid | (lsb << (b - 1)) | msb
            }
            Pattern::BitComplement => !src & (nodes - 1),
            Pattern::Transpose => {
                let b = nodes.trailing_zeros();
                let half = b / 2;
                let lo_mask = (1usize << half) - 1;
                let lo = src & lo_mask;
                let hi = (src >> (b - half)) & lo_mask;
                let mid = src & !(lo_mask | (lo_mask << (b - half)));
                mid | (lo << (b - half)) | hi
            }
            Pattern::Hotspot { target, fraction } => {
                if rng.random() < *fraction {
                    *target
                } else {
                    Pattern::UniformRandom.destination(src, nodes, rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn bits_for_nodes_checks_power_of_two() {
        assert_eq!(bits_for_nodes(2).unwrap(), 1);
        assert_eq!(bits_for_nodes(256).unwrap(), 8);
        assert!(bits_for_nodes(0).is_err());
        assert!(bits_for_nodes(1).is_err());
        assert!(bits_for_nodes(6).is_err());
    }

    #[test]
    fn uniform_random_never_targets_self() {
        let mut r = rng();
        for src in 0..16 {
            for _ in 0..100 {
                let d = Pattern::UniformRandom.destination(src, 16, &mut r);
                assert_ne!(d, src);
                assert!(d < 16);
            }
        }
    }

    #[test]
    fn uniform_random_covers_all_destinations() {
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[Pattern::UniformRandom.destination(3, 16, &mut r)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 15, "all nodes except the source must be reachable");
        assert!(!seen[3]);
    }

    #[test]
    fn bit_reversal_matches_paper_definition() {
        let mut r = rng();
        // 256 nodes, 8 bits: 0b0000_0001 -> 0b1000_0000.
        assert_eq!(Pattern::BitReversal.destination(0x01, 256, &mut r), 0x80);
        assert_eq!(
            Pattern::BitReversal.destination(0b1011_0010, 256, &mut r),
            0b0100_1101
        );
        // Palindrome maps to itself.
        assert_eq!(
            Pattern::BitReversal.destination(0b1000_0001, 256, &mut r),
            0b1000_0001
        );
    }

    #[test]
    fn perfect_shuffle_rotates_left() {
        let mut r = rng();
        assert_eq!(
            Pattern::PerfectShuffle.destination(0b1000_0000, 256, &mut r),
            0b0000_0001
        );
        assert_eq!(
            Pattern::PerfectShuffle.destination(0b0100_1101, 256, &mut r),
            0b1001_1010
        );
    }

    #[test]
    fn butterfly_swaps_msb_and_lsb() {
        let mut r = rng();
        assert_eq!(
            Pattern::Butterfly.destination(0b1000_0000, 256, &mut r),
            0b0000_0001
        );
        assert_eq!(
            Pattern::Butterfly.destination(0b0000_0001, 256, &mut r),
            0b1000_0000
        );
        assert_eq!(
            Pattern::Butterfly.destination(0b1011_0010, 256, &mut r),
            0b0011_0011
        );
        // MSB == LSB: fixed point.
        assert_eq!(
            Pattern::Butterfly.destination(0b1011_0011, 256, &mut r),
            0b1011_0011
        );
    }

    #[test]
    fn bit_complement_flips_all_bits() {
        let mut r = rng();
        assert_eq!(Pattern::BitComplement.destination(0, 256, &mut r), 255);
        assert_eq!(
            Pattern::BitComplement.destination(0b1010_1010, 256, &mut r),
            0b0101_0101
        );
    }

    #[test]
    fn transpose_swaps_halves() {
        let mut r = rng();
        // 8 bits: hi nibble <-> lo nibble.
        assert_eq!(Pattern::Transpose.destination(0x2B, 256, &mut r), 0xB2);
    }

    #[test]
    fn permutations_are_bijections() {
        let mut r = rng();
        for p in [
            Pattern::BitReversal,
            Pattern::PerfectShuffle,
            Pattern::Butterfly,
            Pattern::BitComplement,
            Pattern::Transpose,
        ] {
            let mut seen = vec![false; 256];
            for src in 0..256 {
                let d = p.destination(src, 256, &mut r);
                assert!(d < 256, "{} out of range", p.name());
                assert!(!seen[d], "{} is not injective at {src}", p.name());
                seen[d] = true;
            }
        }
    }

    #[test]
    fn hotspot_sends_requested_fraction() {
        let mut r = rng();
        let p = Pattern::Hotspot {
            target: 5,
            fraction: 0.3,
        };
        let hits = (0..10_000)
            .filter(|_| p.destination(9, 64, &mut r) == 5)
            .count();
        // 30% +- noise (uniform part can also hit node 5 with prob ~1.1%).
        assert!((2500..4000).contains(&hits), "hotspot fraction off: {hits}");
    }

    #[test]
    fn by_name_round_trips_every_listed_name() {
        for &name in Pattern::names() {
            let p = Pattern::by_name(name)
                .unwrap_or_else(|| panic!("listed pattern name {name} must resolve"));
            assert_eq!(p.name(), name);
        }
        assert_eq!(Pattern::by_name("tornado"), None);
        assert_eq!(Pattern::by_name(""), None);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(Pattern::BitReversal.validate(100).is_err());
        assert!(Pattern::UniformRandom.validate(100).is_ok());
        assert!(Pattern::Hotspot {
            target: 99,
            fraction: 0.5
        }
        .validate(64)
        .is_err());
        assert!(Pattern::Hotspot {
            target: 3,
            fraction: 1.5
        }
        .validate(64)
        .is_err());
    }
}
