use crate::{Pattern, Process, SimRng, TrafficError};
use kncube::NodeId;

/// One phase of a workload: a pattern and process active for `duration`
/// cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// How long this phase lasts, in cycles.
    pub duration: u64,
    /// Destination selection during the phase.
    pub pattern: Pattern,
    /// Packet generation process during the phase.
    pub process: Process,
}

/// A workload: a sequence of phases. After the last phase ends, the final
/// phase's configuration continues indefinitely (steady workloads are a
/// single phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    phases: Vec<Phase>,
}

impl Workload {
    /// A steady (single-phase) workload.
    #[must_use]
    pub fn steady(pattern: Pattern, process: Process) -> Self {
        Workload {
            phases: vec![Phase {
                duration: u64::MAX,
                pattern,
                process,
            }],
        }
    }

    /// A workload from an explicit phase list.
    #[must_use]
    pub fn phased(phases: Vec<Phase>) -> Self {
        Workload { phases }
    }

    /// The bursty workload of Figure 6: alternating low/high 50 000-cycle
    /// phases. Low phases offer uniform-random traffic with a 1 500-cycle
    /// regeneration interval (0.67·10⁻³ packets/node/cycle); high phases use
    /// a 15-cycle interval (0.067 packets/node/cycle) and rotate the
    /// communication pattern: uniform-random, bit-reversal, perfect-shuffle,
    /// butterfly.
    #[must_use]
    pub fn paper_bursty() -> Self {
        Self::bursty(50_000, 1_500, 15)
    }

    /// A bursty workload with configurable phase length and regeneration
    /// intervals (see [`Workload::paper_bursty`] for the paper's values).
    #[must_use]
    pub fn bursty(phase_len: u64, low_interval: u64, high_interval: u64) -> Self {
        let low = |dur| Phase {
            duration: dur,
            pattern: Pattern::UniformRandom,
            process: Process::periodic(low_interval),
        };
        let high = |pattern| Phase {
            duration: phase_len,
            pattern,
            process: Process::periodic(high_interval),
        };
        Workload {
            phases: vec![
                low(phase_len),
                high(Pattern::UniformRandom),
                low(phase_len),
                high(Pattern::BitReversal),
                low(phase_len),
                high(Pattern::PerfectShuffle),
                low(phase_len),
                high(Pattern::Butterfly),
                low(u64::MAX),
            ],
        }
    }

    /// The phases of this workload.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase active at `cycle`, with the cycle at which it started.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty (prevented by [`WorkloadRunner::new`]).
    #[must_use]
    pub fn phase_at(&self, cycle: u64) -> (usize, u64) {
        let mut start = 0u64;
        for (i, p) in self.phases.iter().enumerate() {
            let end = start.saturating_add(p.duration);
            if cycle < end {
                return (i, start);
            }
            start = end;
        }
        let last = self.phases.len() - 1;
        (last, start - self.phases[last].duration.min(start))
    }

    /// Validates every phase against a node count.
    ///
    /// # Errors
    ///
    /// Returns the first phase validation error, or
    /// [`TrafficError::EmptyWorkload`] for an empty phase list.
    pub fn validate(&self, nodes: usize) -> Result<(), TrafficError> {
        if self.phases.is_empty() {
            return Err(TrafficError::EmptyWorkload);
        }
        for p in &self.phases {
            p.pattern.validate(nodes)?;
            p.process.validate()?;
        }
        Ok(())
    }

    /// Mean offered load at `cycle`, in packets/node/cycle.
    #[must_use]
    pub fn offered_rate_at(&self, cycle: u64) -> f64 {
        let (i, _) = self.phase_at(cycle);
        self.phases[i].process.offered_rate()
    }

    /// Exact mean offered load over the half-open window `[start, end)`, in
    /// packets/node/cycle: integrates each phase's rate over its overlap
    /// with the window (the final phase persists indefinitely). Returns 0
    /// for an empty window.
    #[must_use]
    pub fn mean_offered_rate(&self, start: u64, end: u64) -> f64 {
        if end <= start || self.phases.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut phase_start = 0u64;
        for (i, p) in self.phases.iter().enumerate() {
            let phase_end = if i + 1 == self.phases.len() {
                u64::MAX
            } else {
                phase_start.saturating_add(p.duration)
            };
            let lo = start.max(phase_start);
            let hi = end.min(phase_end);
            if hi > lo {
                acc += (hi - lo) as f64 * p.process.offered_rate();
            }
            if phase_end >= end {
                break;
            }
            phase_start = phase_end;
        }
        acc / (end - start) as f64
    }
}

/// Runtime state of a [`Workload`] over all nodes: polled once per node per
/// cycle; deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct WorkloadRunner {
    workload: Workload,
    nodes: usize,
    rng: SimRng,
    /// Per-node next generation time for periodic processes.
    next_gen: Vec<u64>,
    /// Phase index the per-node state was initialized for.
    cur_phase: usize,
    /// Cycle at which `cur_phase` started.
    phase_start: u64,
}

impl WorkloadRunner {
    /// Creates the runtime state for `workload` on a network of `nodes`
    /// nodes, deterministic for the given `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload is invalid for `nodes`.
    pub fn new(workload: &Workload, nodes: usize, seed: u64) -> Result<Self, TrafficError> {
        workload.validate(nodes)?;
        let mut runner = WorkloadRunner {
            workload: workload.clone(),
            nodes,
            rng: SimRng::seed_from_u64(seed),
            next_gen: vec![0; nodes],
            cur_phase: usize::MAX,
            phase_start: 0,
        };
        runner.enter_phase(0, 0);
        Ok(runner)
    }

    fn enter_phase(&mut self, phase: usize, start: u64) {
        self.cur_phase = phase;
        self.phase_start = start;
        if let Process::Periodic { interval } = self.workload.phases[phase].process {
            // Random phase offsets so nodes do not generate in lockstep.
            for slot in &mut self.next_gen {
                *slot = start + self.rng.random_range(0..interval);
            }
        }
    }

    /// Advances phase tracking; must be called with nondecreasing `now`.
    fn sync_phase(&mut self, now: u64) {
        let (phase, start) = self.workload.phase_at(now);
        if phase != self.cur_phase {
            self.enter_phase(phase, start);
        }
    }

    /// Polls node `node` at cycle `now`: returns the destination of a newly
    /// generated packet, if any.
    ///
    /// Callers must poll nodes `0..nodes` in order within a cycle, and cycles
    /// in nondecreasing order, for deterministic replay.
    ///
    /// # Panics
    ///
    /// Panics if `node >= nodes`.
    pub fn poll(&mut self, now: u64, node: NodeId) -> Option<NodeId> {
        assert!(node < self.nodes, "node {node} out of range");
        if node == 0 {
            self.sync_phase(now);
        }
        let phase = &self.workload.phases[self.cur_phase];
        let generate = match phase.process {
            Process::Bernoulli { rate } => self.rng.random() < rate,
            Process::Periodic { interval } => {
                if now >= self.next_gen[node] {
                    self.next_gen[node] += interval;
                    // If the caller skipped cycles, do not build up a backlog.
                    if self.next_gen[node] <= now {
                        self.next_gen[node] = now + interval;
                    }
                    true
                } else {
                    false
                }
            }
            Process::Silent => false,
        };
        if generate {
            Some(phase.pattern.destination(node, self.nodes, &mut self.rng))
        } else {
            None
        }
    }

    /// The workload being run.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The earliest cycle `>= now` at which polling could have any effect:
    /// generate a packet, consume RNG state, or cross a phase boundary.
    /// `u64::MAX` means never (a silent tail phase).
    ///
    /// This is the workload's half of the quiescence fast-forward
    /// contract: a driver may jump from `now` straight to the returned
    /// cycle without polling the ones in between, because every skipped
    /// poll would have returned `None` *and left the runner's state —
    /// including the RNG — untouched*. Bernoulli processes consume RNG
    /// state on every poll, so they report `now` (nothing is skippable);
    /// periodic processes are skippable up to their earliest per-node
    /// generation time; phase transitions re-seed per-node timers, so the
    /// answer is always clamped to the current phase's end.
    #[must_use]
    pub fn next_arrival(&self, now: u64) -> u64 {
        let (phase, start) = self.workload.phase_at(now);
        if phase != self.cur_phase || start != self.phase_start {
            return now; // a pending phase transition must be entered first
        }
        let p = &self.workload.phases[phase];
        let phase_end = start.saturating_add(p.duration);
        let arrival = match p.process {
            Process::Bernoulli { .. } => now,
            Process::Periodic { .. } => self
                .next_gen
                .iter()
                .copied()
                .min()
                .unwrap_or(u64::MAX)
                .max(now),
            Process::Silent => u64::MAX,
        };
        arrival.min(phase_end)
    }

    /// Serializes the runtime state (RNG, per-node timers, phase tracking)
    /// into `enc`. The workload and node count are configuration and are
    /// not written; restore into a runner built from the same workload.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        for w in self.rng.state() {
            enc.u64(w);
        }
        enc.usize(self.next_gen.len());
        for &t in &self.next_gen {
            enc.u64(t);
        }
        enc.usize(self.cur_phase);
        enc.u64(self.phase_start);
    }

    /// Restores state captured with [`WorkloadRunner::save_state`] into a
    /// runner built from the same workload and node count.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream or a
    /// shape mismatch against this runner's configuration.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.u64()?;
        }
        if dec.usize()? != self.nodes {
            return Err(checkpoint::CheckpointError::Corrupt(
                "workload node count mismatch",
            ));
        }
        let mut next_gen = vec![0u64; self.nodes];
        for t in &mut next_gen {
            *t = dec.u64()?;
        }
        let cur_phase = dec.usize()?;
        if cur_phase >= self.workload.phases.len() {
            return Err(checkpoint::CheckpointError::Corrupt(
                "workload phase index out of range",
            ));
        }
        self.rng = SimRng::from_state(s);
        self.next_gen = next_gen;
        self.cur_phase = cur_phase;
        self.phase_start = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_workload_generates_at_requested_rate() {
        let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.05));
        let mut r = WorkloadRunner::new(&wl, 64, 42).unwrap();
        let mut count = 0u64;
        let cycles = 4000u64;
        for now in 0..cycles {
            for node in 0..64 {
                if r.poll(now, node).is_some() {
                    count += 1;
                }
            }
        }
        let rate = count as f64 / (cycles as f64 * 64.0);
        assert!((rate - 0.05).abs() < 0.005, "measured rate {rate}");
    }

    #[test]
    fn periodic_generates_exactly_one_per_interval() {
        let wl = Workload::steady(Pattern::BitReversal, Process::periodic(10));
        let mut r = WorkloadRunner::new(&wl, 4, 1).unwrap();
        let mut per_node = [0u64; 4];
        for now in 0..100 {
            for (node, count) in per_node.iter_mut().enumerate() {
                if r.poll(now, node).is_some() {
                    *count += 1;
                }
            }
        }
        for (node, &c) in per_node.iter().enumerate() {
            assert!((9..=10).contains(&c), "node {node} generated {c} packets");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.1));
        let mut a = WorkloadRunner::new(&wl, 16, 99).unwrap();
        let mut b = WorkloadRunner::new(&wl, 16, 99).unwrap();
        for now in 0..500 {
            for node in 0..16 {
                assert_eq!(a.poll(now, node), b.poll(now, node));
            }
        }
    }

    #[test]
    fn phase_at_walks_schedule() {
        let wl = Workload::bursty(100, 50, 5);
        assert_eq!(wl.phase_at(0), (0, 0));
        assert_eq!(wl.phase_at(99), (0, 0));
        assert_eq!(wl.phase_at(100), (1, 100));
        assert_eq!(wl.phase_at(350), (3, 300));
        // Tail phase persists.
        let (i, _) = wl.phase_at(10_000_000);
        assert_eq!(i, wl.phases().len() - 1);
    }

    #[test]
    fn bursty_switches_pattern_and_rate() {
        let wl = Workload::paper_bursty();
        assert_eq!(wl.phases().len(), 9);
        assert!((wl.offered_rate_at(0) - 1.0 / 1500.0).abs() < 1e-12);
        assert!((wl.offered_rate_at(60_000) - 1.0 / 15.0).abs() < 1e-12);
        let (hi1, _) = wl.phase_at(160_000);
        assert_eq!(wl.phases()[hi1].pattern, Pattern::BitReversal);
        let (hi3, _) = wl.phase_at(370_000);
        assert_eq!(wl.phases()[hi3].pattern, Pattern::Butterfly);
    }

    #[test]
    fn bursty_runner_changes_throughput_between_phases() {
        let wl = Workload::bursty(1_000, 100, 5);
        let mut r = WorkloadRunner::new(&wl, 8, 3).unwrap();
        let mut low = 0u64;
        let mut high = 0u64;
        for now in 0..2_000u64 {
            for node in 0..8 {
                if r.poll(now, node).is_some() {
                    if now < 1_000 {
                        low += 1;
                    } else {
                        high += 1;
                    }
                }
            }
        }
        assert!(
            high > low * 5,
            "high phase ({high}) should dwarf low phase ({low})"
        );
    }

    #[test]
    fn mean_offered_rate_integrates_phases_exactly() {
        // Two phases: 100 cycles at 0.5, then a persistent tail at 0.1.
        let wl = Workload::phased(vec![
            Phase {
                duration: 100,
                pattern: Pattern::UniformRandom,
                process: Process::bernoulli(0.5),
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::bernoulli(0.1),
            },
        ]);
        // Entirely inside one phase.
        assert!((wl.mean_offered_rate(0, 100) - 0.5).abs() < 1e-12);
        assert!((wl.mean_offered_rate(100, 350) - 0.1).abs() < 1e-12);
        // Straddling the boundary: 50 cycles of each.
        assert!((wl.mean_offered_rate(50, 150) - 0.3).abs() < 1e-12);
        // Windows that are NOT multiples of any sampling stride still
        // integrate exactly: 10 cycles at 0.5 + 3 at 0.1.
        let want = (10.0 * 0.5 + 3.0 * 0.1) / 13.0;
        assert!((wl.mean_offered_rate(90, 103) - want).abs() < 1e-12);
        // Empty windows contribute nothing.
        assert_eq!(wl.mean_offered_rate(40, 40), 0.0);
        assert_eq!(wl.mean_offered_rate(50, 40), 0.0);
        // The tail phase persists arbitrarily far out.
        assert!((wl.mean_offered_rate(1_000_000, 2_000_000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_offered_rate_matches_pointwise_sampling_on_steady() {
        let wl = Workload::steady(Pattern::Transpose, Process::periodic(20));
        let mean = wl.mean_offered_rate(123, 4_567);
        assert!((mean - wl.offered_rate_at(123)).abs() < 1e-12);
    }

    #[test]
    fn next_arrival_respects_process_and_phase_boundaries() {
        // Bernoulli: every poll consumes RNG, nothing is skippable.
        let wl = Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.1));
        let r = WorkloadRunner::new(&wl, 8, 0).unwrap();
        assert_eq!(r.next_arrival(123), 123);

        // Periodic: skippable up to the earliest per-node timer, and a
        // poll-free jump to that cycle yields the same packets as stepping.
        let wl = Workload::steady(Pattern::UniformRandom, Process::periodic(100));
        let mut a = WorkloadRunner::new(&wl, 8, 7).unwrap();
        let mut b = a.clone();
        let jump = a.next_arrival(0);
        assert!(jump < 100, "first arrival inside the first interval");
        let stepped: Vec<_> = (0..=jump)
            .flat_map(|t| (0..8).map(move |n| (t, n)))
            .filter_map(|(t, n)| a.poll(t, n).map(|d| (t, n, d)))
            .collect();
        let jumped: Vec<_> = (0..8)
            .filter_map(|n| b.poll(jump, n).map(|d| (jump, n, d)))
            .collect();
        assert!(!stepped.is_empty(), "vacuous: nothing generated");
        assert_eq!(stepped, jumped, "skipping to next_arrival lost packets");

        // Silent tail: never; silent phase before another: clamped to its
        // end (the transition re-seeds timers and must not be skipped).
        let wl = Workload::steady(Pattern::UniformRandom, Process::Silent);
        let r = WorkloadRunner::new(&wl, 8, 0).unwrap();
        assert_eq!(r.next_arrival(5), u64::MAX);
        let wl = Workload::phased(vec![
            Phase {
                duration: 1_000,
                pattern: Pattern::UniformRandom,
                process: Process::Silent,
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::periodic(10),
            },
        ]);
        let r = WorkloadRunner::new(&wl, 8, 0).unwrap();
        assert_eq!(r.next_arrival(5), 1_000);
        // A runner that has not yet synced into the phase at `now` cannot
        // skip anything.
        assert_eq!(r.next_arrival(1_500), 1_500);
    }

    #[test]
    fn empty_workload_rejected() {
        let wl = Workload::phased(vec![]);
        assert!(matches!(
            WorkloadRunner::new(&wl, 8, 0),
            Err(TrafficError::EmptyWorkload)
        ));
    }

    #[test]
    fn permutation_pattern_on_non_power_of_two_rejected() {
        let wl = Workload::steady(Pattern::Butterfly, Process::bernoulli(0.1));
        assert!(WorkloadRunner::new(&wl, 100, 0).is_err());
    }
}
