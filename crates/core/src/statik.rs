use crate::Controller;
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig};
use wormsim::{CongestionControl, Network};

/// Globally informed throttling with a **fixed** threshold — the
/// "Static Threshold" configurations of Figure 5.
///
/// Identical to [`SelfTuned`](crate::SelfTuned) in how it observes the
/// network (side-band snapshots + linear extrapolation) and in how it gates
/// injection, but the threshold never moves. The paper uses thresholds of
/// 250 (8% occupancy, good for uniform random) and 50 (1.6%, good for
/// butterfly) to show that no single static value suits all communication
/// patterns.
#[derive(Debug, Clone)]
pub struct StaticThreshold {
    threshold: f64,
    sideband: Sideband,
    throttling_now: bool,
}

impl StaticThreshold {
    /// A fixed-threshold throttle (threshold in full buffers) using the
    /// given side-band configuration.
    #[must_use]
    pub fn new(threshold: u32, sideband: SidebandConfig) -> Self {
        StaticThreshold {
            threshold: f64::from(threshold),
            sideband: Sideband::new(sideband),
            throttling_now: false,
        }
    }

    /// The fixed threshold, in full buffers.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether injection is currently blocked network-wide.
    #[must_use]
    pub fn throttling(&self) -> bool {
        self.throttling_now
    }

    /// Installs a fault plan on the underlying side-band (loss, delay and
    /// corruption of every gather).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sideband.set_faults(plan);
    }

    /// Read access to the underlying side-band model.
    #[must_use]
    pub fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// Serializes the controller state (side-band + gate) into `enc`. The
    /// threshold is configuration and is not written.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        self.sideband.save_state(enc);
        enc.bool(self.throttling_now);
    }

    /// Restores state captured with [`StaticThreshold::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.sideband.restore_state(dec)?;
        self.throttling_now = dec.bool()?;
        Ok(())
    }
}

impl CongestionControl for StaticThreshold {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        Controller::observe_census(
            self,
            now,
            net.full_buffer_count(),
            net.delivered_flits_cum(),
        );
    }

    fn allow_injection(&mut self, _now: u64, _node: usize, _dst: usize, _net: &Network) -> bool {
        !self.throttling_now
    }

    fn throttled_recently(&self) -> bool {
        self.throttling_now
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

impl Controller for StaticThreshold {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        self.sideband.on_cycle(now, census, delivered_cum);
        self.throttling_now = self.sideband.estimate(now) > self.threshold;
    }

    fn throttling(&self) -> bool {
        StaticThreshold::throttling(self)
    }

    fn threshold(&self) -> Option<f64> {
        Some(StaticThreshold::threshold(self))
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        StaticThreshold::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        Some(StaticThreshold::sideband(self))
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        StaticThreshold::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        StaticThreshold::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::{DeadlockMode, NetConfig, Network};

    #[test]
    fn gates_when_estimate_exceeds_threshold() {
        // Overload a small network with no control, then check a static
        // throttle (fed the same cycles) would be gating.
        let cfg = NetConfig::small(DeadlockMode::PAPER_RECOVERY);
        let mut net = Network::new(cfg).unwrap();
        let mut ctl = StaticThreshold::new(
            2,
            SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
        );
        let nodes = net.torus().node_count();
        let mut i = 0usize;
        let mut source = move |_now: u64, node: usize| {
            i = i.wrapping_add(node + 1);
            Some((node + 1 + i) % nodes)
        };
        let mut ever_throttled = false;
        for _ in 0..5_000 {
            net.cycle(&mut source, &mut ctl);
            ever_throttled |= ctl.throttling();
        }
        assert!(
            ever_throttled,
            "threshold of 2 full buffers must trip under flood"
        );
        assert!(net.counters().throttled_injections > 0);
    }

    #[test]
    fn never_throttles_an_idle_network() {
        let cfg = NetConfig::small(DeadlockMode::Avoidance);
        let mut net = Network::new(cfg).unwrap();
        let mut ctl = StaticThreshold::new(
            50,
            SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
        );
        let mut source = |_now: u64, _node: usize| None;
        for _ in 0..2_000 {
            net.cycle(&mut source, &mut ctl);
        }
        assert!(!ctl.throttling());
        assert_eq!(net.counters().throttled_injections, 0);
    }
}
