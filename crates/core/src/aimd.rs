use crate::{Controller, ControllerCounters};
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig};
use wormsim::{CongestionControl, Network};

/// Configuration of the AIMD injection-threshold controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdConfig {
    /// Side-band gather network parameters (defines the gather period `g`).
    pub sideband: SidebandConfig,
    /// Tuning period, in gathers (3, matching the self-tuner's clock).
    pub tune_gathers: u32,
    /// Additive raise per uncongested period, as a fraction of all VC
    /// buffers (1%).
    pub additive_frac: f64,
    /// Multiplicative threshold cut on a congested period (0.5).
    pub cut_factor: f64,
    /// A period counts as *congested* when its throughput falls below this
    /// fraction of the previous period's (75%, the paper's drop test).
    pub drop_fraction: f64,
    /// Initial threshold as a fraction of all VC buffers (1%).
    pub initial_threshold_frac: f64,
    /// Staleness watchdog horizon, in gathers (0 disables it; see
    /// [`crate::TuneConfig::watchdog_gathers`]).
    pub watchdog_gathers: u32,
}

impl AimdConfig {
    /// Defaults matching the self-tuner's clock and step sizes on the
    /// paper's network.
    #[must_use]
    pub fn paper() -> Self {
        AimdConfig {
            sideband: SidebandConfig::paper(),
            tune_gathers: 3,
            additive_frac: 0.01,
            cut_factor: 0.5,
            drop_fraction: 0.75,
            initial_threshold_frac: 0.01,
            watchdog_gathers: 8,
        }
    }
}

/// **AIMD** on the injection threshold: the classic additive-increase /
/// multiplicative-decrease rule (Chiu & Jain) transplanted from window-based
/// transport onto the paper's globally informed source throttle.
///
/// Each tuning period the controller raises the full-buffer threshold by a
/// fixed step when throughput held up (probing for bandwidth) and cuts it
/// multiplicatively when throughput dropped (backing off hard). Same
/// side-band census, same gate as [`crate::SelfTuned`] — only the threshold
/// update rule differs, which is exactly the comparison the controller zoo
/// exists to make.
#[derive(Debug, Clone)]
pub struct AimdControl {
    cfg: AimdConfig,
    sideband: Sideband,
    state: Option<AimdState>,
}

#[derive(Debug, Clone)]
struct AimdState {
    total_buffers: f64,
    threshold: f64,
    add: f64,
    snaps_in_period: u32,
    period_tput: u64,
    prev_period_tput: Option<u64>,
    throttling_now: bool,
    last_snapshot_seen: Option<u64>,
    last_good_threshold: f64,
    frozen: bool,
    rejected_seen: u64,
    periods: u64,
    raises: u64,
    cuts: u64,
    watchdog_trips: u64,
    watchdog_rearms: u64,
}

impl AimdControl {
    /// Creates a controller; buffer-count-dependent state initializes on the
    /// first [`CongestionControl::on_cycle`] call.
    #[must_use]
    pub fn new(cfg: AimdConfig) -> Self {
        AimdControl {
            sideband: Sideband::new(cfg.sideband.clone()),
            cfg,
            state: None,
        }
    }

    /// The current threshold, in full buffers (`None` before the first
    /// cycle).
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.threshold)
    }

    /// Whether injection is currently blocked network-wide.
    #[must_use]
    pub fn throttling(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.throttling_now)
    }

    /// Installs a fault plan on the underlying side-band.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sideband.set_faults(plan);
    }

    /// Whether the staleness watchdog has currently frozen the controller.
    #[must_use]
    pub fn watchdog_active(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.frozen)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AimdConfig {
        &self.cfg
    }

    /// Read access to the underlying side-band model.
    #[must_use]
    pub fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// Serializes the controller state (side-band + AIMD) into `enc`.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        self.sideband.save_state(enc);
        enc.bool(self.state.is_some());
        if let Some(st) = &self.state {
            enc.f64(st.total_buffers);
            enc.f64(st.threshold);
            enc.f64(st.add);
            enc.u32(st.snaps_in_period);
            enc.u64(st.period_tput);
            enc.opt_u64(st.prev_period_tput);
            enc.bool(st.throttling_now);
            enc.opt_u64(st.last_snapshot_seen);
            enc.f64(st.last_good_threshold);
            enc.bool(st.frozen);
            enc.u64(st.rejected_seen);
            enc.u64(st.periods);
            enc.u64(st.raises);
            enc.u64(st.cuts);
            enc.u64(st.watchdog_trips);
            enc.u64(st.watchdog_rearms);
        }
    }

    /// Restores state captured with [`AimdControl::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.sideband.restore_state(dec)?;
        self.state = if dec.bool()? {
            Some(AimdState {
                total_buffers: dec.f64()?,
                threshold: dec.f64()?,
                add: dec.f64()?,
                snaps_in_period: dec.u32()?,
                period_tput: dec.u64()?,
                prev_period_tput: dec.opt_u64()?,
                throttling_now: dec.bool()?,
                last_snapshot_seen: dec.opt_u64()?,
                last_good_threshold: dec.f64()?,
                frozen: dec.bool()?,
                rejected_seen: dec.u64()?,
                periods: dec.u64()?,
                raises: dec.u64()?,
                cuts: dec.u64()?,
                watchdog_trips: dec.u64()?,
                watchdog_rearms: dec.u64()?,
            })
        } else {
            None
        };
        Ok(())
    }

    fn state_for(cfg: &AimdConfig, total_buffers: f64) -> AimdState {
        AimdState {
            total_buffers,
            threshold: cfg.initial_threshold_frac * total_buffers,
            add: cfg.additive_frac * total_buffers,
            snaps_in_period: 0,
            period_tput: 0,
            prev_period_tput: None,
            throttling_now: false,
            last_snapshot_seen: None,
            last_good_threshold: cfg.initial_threshold_frac * total_buffers,
            frozen: false,
            rejected_seen: 0,
            periods: 0,
            raises: 0,
            cuts: 0,
            watchdog_trips: 0,
            watchdog_rearms: 0,
        }
    }

    /// One AIMD decision (runs once per tuning period): additive raise when
    /// throughput held up, multiplicative cut when it dropped.
    fn tune(cfg: &AimdConfig, st: &mut AimdState) {
        let tput = st.period_tput;
        st.periods += 1;
        let congested = st
            .prev_period_tput
            .is_some_and(|prev| (tput as f64) < cfg.drop_fraction * prev as f64);
        if congested {
            st.threshold *= cfg.cut_factor;
            st.cuts += 1;
        } else {
            st.threshold += st.add;
            st.raises += 1;
        }
        st.threshold = st.threshold.clamp(st.add, st.total_buffers);
        st.prev_period_tput = Some(tput);
        Self::reset_period(st);
    }

    fn reset_period(st: &mut AimdState) {
        st.period_tput = 0;
        st.snaps_in_period = 0;
    }
}

impl CongestionControl for AimdControl {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        self.state
            .get_or_insert_with(|| Self::state_for(&self.cfg, f64::from(net.total_vc_buffers())));
        Controller::observe_census(
            self,
            now,
            net.full_buffer_count(),
            net.delivered_flits_cum(),
        );
    }

    fn allow_injection(&mut self, _now: u64, _node: usize, _dst: usize, _net: &Network) -> bool {
        !self.throttling()
    }

    fn throttled_recently(&self) -> bool {
        self.throttling()
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

impl Controller for AimdControl {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        let st = self.state.get_or_insert_with(|| {
            Self::state_for(&self.cfg, f64::from(self.sideband.max_full_buffers()))
        });

        self.sideband.on_cycle(now, census, delivered_cum);

        if let Some(snap) = self.sideband.latest() {
            if st.last_snapshot_seen != Some(snap.taken_at) {
                st.last_snapshot_seen = Some(snap.taken_at);
                if st.frozen {
                    st.frozen = false;
                    st.watchdog_rearms += 1;
                    st.prev_period_tput = None;
                    st.rejected_seen = self.sideband.stats().rejected();
                    Self::reset_period(st);
                }
                st.period_tput += u64::from(snap.delivered_flits);
                st.snaps_in_period += 1;
                if st.snaps_in_period >= self.cfg.tune_gathers {
                    Self::tune(&self.cfg, st);
                    let rejected = self.sideband.stats().rejected();
                    if rejected == st.rejected_seen {
                        st.last_good_threshold = st.threshold;
                    }
                    st.rejected_seen = rejected;
                }
            }
        }

        if !st.frozen
            && self.cfg.watchdog_gathers > 0
            && self.sideband.gathers_overdue(now) >= u64::from(self.cfg.watchdog_gathers)
        {
            st.frozen = true;
            st.watchdog_trips += 1;
            st.threshold = st.last_good_threshold;
            st.prev_period_tput = None;
            Self::reset_period(st);
        }

        st.throttling_now = !st.frozen && self.sideband.estimate(now) > st.threshold;
    }

    fn throttling(&self) -> bool {
        AimdControl::throttling(self)
    }

    fn threshold(&self) -> Option<f64> {
        AimdControl::threshold(self)
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        AimdControl::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        Some(AimdControl::sideband(self))
    }

    fn watchdog_active(&self) -> bool {
        AimdControl::watchdog_active(self)
    }

    fn counters(&self) -> ControllerCounters {
        self.state
            .as_ref()
            .map_or_else(ControllerCounters::default, |st| ControllerCounters {
                decisions: st.periods,
                raises: st.raises,
                cuts: st.cuts,
                resets: 0,
                watchdog_trips: st.watchdog_trips,
                watchdog_rearms: st.watchdog_rearms,
            })
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        AimdControl::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        AimdControl::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::SidebandFaults;
    use wormsim::{DeadlockMode, NetConfig};

    fn cfg() -> AimdConfig {
        AimdConfig::paper()
    }

    fn state(total: f64) -> AimdState {
        AimdControl::state_for(&cfg(), total)
    }

    #[test]
    fn paper_constants() {
        let st = state(3072.0);
        assert!((st.add - 30.72).abs() < 1e-9, "1% of 3072");
        assert!((st.threshold - 30.72).abs() < 1e-9);
    }

    /// The congestion predicate is strict: only a fall *below* 75% of the
    /// previous period cuts; at exactly 75% the period still raises.
    #[test]
    fn cut_boundary_is_strict() {
        for (tput, expects_cut) in [(750u64, false), (749, true)] {
            let c = cfg();
            let mut st = state(3072.0);
            st.threshold = 1000.0;
            st.prev_period_tput = Some(1000);
            st.period_tput = tput;
            AimdControl::tune(&c, &mut st);
            if expects_cut {
                assert_eq!(st.threshold, 500.0, "tput={tput}: multiplicative cut");
                assert_eq!((st.cuts, st.raises), (1, 0));
            } else {
                assert!(
                    (st.threshold - (1000.0 + st.add)).abs() < 1e-9,
                    "tput={tput}: additive raise"
                );
                assert_eq!((st.cuts, st.raises), (0, 1));
            }
        }
    }

    /// A cut is exactly multiplicative (threshold × cut_factor), never a
    /// fixed step.
    #[test]
    fn cut_is_exactly_multiplicative() {
        let c = cfg();
        let mut st = state(3072.0);
        st.threshold = 2048.0;
        st.prev_period_tput = Some(1000);
        st.period_tput = 0;
        AimdControl::tune(&c, &mut st);
        assert_eq!(st.threshold, 1024.0);
        AimdControl::tune(&c, &mut st); // 0 == 0.75·0: not a further drop → raise
        assert!((st.threshold - (1024.0 + st.add)).abs() < 1e-9);
    }

    /// The very first period has no predecessor to drop from: AIMD probes
    /// upward.
    #[test]
    fn first_period_raises() {
        let c = cfg();
        let mut st = state(3072.0);
        st.period_tput = 0;
        let before = st.threshold;
        AimdControl::tune(&c, &mut st);
        assert!((st.threshold - before - st.add).abs() < 1e-9);
        assert_eq!(st.raises, 1);
    }

    #[test]
    fn threshold_clamped_to_valid_range() {
        let c = cfg();
        let mut st = state(3072.0);
        st.threshold = st.add; // at the floor
        st.prev_period_tput = Some(1000);
        st.period_tput = 0;
        AimdControl::tune(&c, &mut st);
        assert_eq!(st.threshold, st.add, "floor holds under repeated cuts");
        st.threshold = 3072.0;
        st.prev_period_tput = Some(1);
        st.period_tput = 1;
        AimdControl::tune(&c, &mut st);
        assert_eq!(st.threshold, 3072.0, "ceiling holds under repeated raises");
    }

    fn small_cfg() -> AimdConfig {
        AimdConfig {
            sideband: SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
            ..AimdConfig::paper()
        }
    }

    fn flood(ctl: &mut AimdControl, cycles: u64) {
        let mut net = Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut i = 0usize;
        let mut source = move |_now: u64, node: usize| {
            i = i.wrapping_add(node + 1);
            Some((node + 1 + i) % nodes)
        };
        for _ in 0..cycles {
            net.cycle(&mut source, ctl);
        }
    }

    #[test]
    fn watchdog_trips_on_blackout_and_fails_open() {
        let mut ctl = AimdControl::new(small_cfg());
        ctl.set_faults(FaultPlan::sideband_only(
            11,
            SidebandFaults {
                loss_rate: 1.0,
                ..SidebandFaults::none()
            },
        ));
        flood(&mut ctl, 5_000);
        assert!(ctl.watchdog_active(), "outage never ends");
        assert!(!ctl.throttling(), "a frozen controller fails open");
        let c = Controller::counters(&ctl);
        assert_eq!(c.watchdog_trips, 1);
        assert_eq!(c.decisions, 0, "no aggregates, no periods");
    }

    #[test]
    fn fault_free_run_tunes_and_stays_armed() {
        let mut ctl = AimdControl::new(small_cfg());
        flood(&mut ctl, 10_000);
        let c = Controller::counters(&ctl);
        assert_eq!(c.watchdog_trips, 0);
        assert!(!ctl.watchdog_active());
        assert!(c.decisions > 0);
        assert_eq!(c.decisions, c.raises + c.cuts, "every period decides");
    }
}
