use crate::{Controller, ControllerCounters};
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig};
use wormsim::{CongestionControl, Network};

/// Configuration of the DEC-bit-style controller.
#[derive(Debug, Clone, PartialEq)]
pub struct DecBitConfig {
    /// Side-band gather network parameters. The census this controller
    /// ships over it is the *congested-node count* (nodes with at least one
    /// full VC buffer — each node's congestion bit), not the full-buffer
    /// total.
    pub sideband: SidebandConfig,
    /// Averaging window, in gathers (the DEC scheme filters over the last
    /// busy+idle window; a fixed snapshot window is its side-band analogue).
    pub window_gathers: u32,
    /// Throttle while the windowed average congested-node fraction is at or
    /// above this value (0.5 — the scheme's "≥ 50% of bits set" rule).
    pub congested_fraction: f64,
    /// Staleness watchdog horizon, in gathers (0 disables it).
    pub watchdog_gathers: u32,
}

impl DecBitConfig {
    /// Defaults on the paper's network: a four-gather window and the
    /// original 50% congested-bit rule.
    #[must_use]
    pub fn paper() -> Self {
        DecBitConfig {
            sideband: SidebandConfig::paper(),
            window_gathers: 4,
            congested_fraction: 0.5,
            watchdog_gathers: 8,
        }
    }

    /// Number of nodes whose congestion bits the census aggregates.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        (self.sideband.radix.pow(self.sideband.dimensions as u32)) as u32
    }
}

/// **DEC-bit-style** binary-feedback control (Jain, Ramakrishnan & Chiu,
/// DEC-TR-506) adapted to the interconnect: every router sets a congestion
/// bit when any of its VC buffers is full, the side-band aggregates the
/// count of set bits, and sources throttle while the *average* over a
/// window of recent snapshots says at least half the nodes are congested.
///
/// Unlike the threshold schemes there is no estimate-vs-threshold gate and
/// no extrapolation: the decision is a low-pass filter over binary per-node
/// feedback, which is exactly what makes it a useful rival — it reacts to
/// congestion *extent* (how many nodes are hot), not *depth* (how full the
/// hot ones are).
#[derive(Debug, Clone)]
pub struct DecBitControl {
    cfg: DecBitConfig,
    sideband: Sideband,
    /// Congested-node counts of the last `window_gathers` snapshots,
    /// oldest first.
    window: Vec<u32>,
    throttling_now: bool,
    last_snapshot_seen: Option<u64>,
    frozen: bool,
    snapshots: u64,
    congested_verdicts: u64,
    clear_verdicts: u64,
    watchdog_trips: u64,
    watchdog_rearms: u64,
}

impl DecBitControl {
    /// Creates the controller.
    #[must_use]
    pub fn new(cfg: DecBitConfig) -> Self {
        DecBitControl {
            sideband: Sideband::new(cfg.sideband.clone()),
            cfg,
            window: Vec::new(),
            throttling_now: false,
            last_snapshot_seen: None,
            frozen: false,
            snapshots: 0,
            congested_verdicts: 0,
            clear_verdicts: 0,
            watchdog_trips: 0,
            watchdog_rearms: 0,
        }
    }

    /// Whether injection is currently blocked network-wide.
    #[must_use]
    pub fn throttling(&self) -> bool {
        self.throttling_now
    }

    /// Installs a fault plan on the underlying side-band.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sideband.set_faults(plan);
    }

    /// Whether the staleness watchdog has currently frozen the controller.
    #[must_use]
    pub fn watchdog_active(&self) -> bool {
        self.frozen
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DecBitConfig {
        &self.cfg
    }

    /// Read access to the underlying side-band model.
    #[must_use]
    pub fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// The window-filter decision: congested iff the average congested-node
    /// count over the window is at or above `congested_fraction` of all
    /// nodes. An empty window (start-up, post-outage) is never congested.
    #[must_use]
    pub fn window_congested(window: &[u32], congested_fraction: f64, node_count: f64) -> bool {
        if window.is_empty() {
            return false;
        }
        let avg = window.iter().map(|&c| f64::from(c)).sum::<f64>() / window.len() as f64;
        avg >= congested_fraction * node_count
    }

    /// Serializes the controller state (side-band + filter window) into
    /// `enc`.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        self.sideband.save_state(enc);
        enc.u32(self.window.len() as u32);
        for &c in &self.window {
            enc.u32(c);
        }
        enc.bool(self.throttling_now);
        enc.opt_u64(self.last_snapshot_seen);
        enc.bool(self.frozen);
        enc.u64(self.snapshots);
        enc.u64(self.congested_verdicts);
        enc.u64(self.clear_verdicts);
        enc.u64(self.watchdog_trips);
        enc.u64(self.watchdog_rearms);
    }

    /// Restores state captured with [`DecBitControl::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.sideband.restore_state(dec)?;
        let len = dec.u32()?;
        self.window.clear();
        for _ in 0..len {
            self.window.push(dec.u32()?);
        }
        self.throttling_now = dec.bool()?;
        self.last_snapshot_seen = dec.opt_u64()?;
        self.frozen = dec.bool()?;
        self.snapshots = dec.u64()?;
        self.congested_verdicts = dec.u64()?;
        self.clear_verdicts = dec.u64()?;
        self.watchdog_trips = dec.u64()?;
        self.watchdog_rearms = dec.u64()?;
        Ok(())
    }
}

impl CongestionControl for DecBitControl {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        // Each node's congestion bit: any completely full VC buffer at that
        // node. The census shipped over the side-band is the count of set
        // bits.
        let congested_nodes = net
            .full_buffer_planes()
            .iter()
            .filter(|&&plane| plane != 0)
            .count() as u32;
        Controller::observe_census(self, now, congested_nodes, net.delivered_flits_cum());
    }

    fn allow_injection(&mut self, _now: u64, _node: usize, _dst: usize, _net: &Network) -> bool {
        !self.throttling_now
    }

    fn throttled_recently(&self) -> bool {
        self.throttling_now
    }

    fn name(&self) -> &'static str {
        "decbit"
    }
}

impl Controller for DecBitControl {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        self.sideband.on_cycle(now, census, delivered_cum);

        if let Some(snap) = self.sideband.latest() {
            if self.last_snapshot_seen != Some(snap.taken_at) {
                self.last_snapshot_seen = Some(snap.taken_at);
                if self.frozen {
                    // Real feedback is back: re-arm and refill the window
                    // from scratch (pre-outage bits are not comparable).
                    self.frozen = false;
                    self.watchdog_rearms += 1;
                }
                self.window.push(snap.full_buffers);
                let max = self.cfg.window_gathers.max(1) as usize;
                if self.window.len() > max {
                    self.window.drain(..self.window.len() - max);
                }
                self.snapshots += 1;
                let congested = Self::window_congested(
                    &self.window,
                    self.cfg.congested_fraction,
                    f64::from(self.cfg.node_count()),
                );
                if congested {
                    self.congested_verdicts += 1;
                } else {
                    self.clear_verdicts += 1;
                }
                self.throttling_now = congested;
            }
        }

        if !self.frozen
            && self.cfg.watchdog_gathers > 0
            && self.sideband.gathers_overdue(now) >= u64::from(self.cfg.watchdog_gathers)
        {
            // Feedback bits stopped arriving: the window is fiction. Fail
            // open and discard it.
            self.frozen = true;
            self.watchdog_trips += 1;
            self.window.clear();
            self.throttling_now = false;
        }
    }

    fn throttling(&self) -> bool {
        DecBitControl::throttling(self)
    }

    fn threshold(&self) -> Option<f64> {
        // In this controller's census units (congested nodes).
        Some(self.cfg.congested_fraction * f64::from(self.cfg.node_count()))
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        DecBitControl::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        Some(DecBitControl::sideband(self))
    }

    fn watchdog_active(&self) -> bool {
        DecBitControl::watchdog_active(self)
    }

    fn counters(&self) -> ControllerCounters {
        ControllerCounters {
            decisions: self.snapshots,
            raises: self.clear_verdicts,
            cuts: self.congested_verdicts,
            resets: 0,
            watchdog_trips: self.watchdog_trips,
            watchdog_rearms: self.watchdog_rearms,
        }
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        DecBitControl::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        DecBitControl::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::SidebandFaults;
    use wormsim::{DeadlockMode, NetConfig};

    /// The 50% congested-bit boundary is inclusive: an average of exactly
    /// half the nodes congested throttles; one bit-count less over the
    /// window does not.
    #[test]
    fn fifty_percent_boundary_is_inclusive() {
        let nodes = 64.0;
        // Window of 4 averaging exactly 32 (= 50% of 64): congested.
        assert!(DecBitControl::window_congested(
            &[32, 32, 32, 32],
            0.5,
            nodes
        ));
        assert!(DecBitControl::window_congested(&[0, 64, 0, 64], 0.5, nodes));
        // One congested-node observation fewer: average 31.75 < 32, clear.
        assert!(!DecBitControl::window_congested(
            &[32, 32, 32, 31],
            0.5,
            nodes
        ));
        assert!(!DecBitControl::window_congested(
            &[31, 33, 32, 31],
            0.5,
            nodes
        ));
    }

    #[test]
    fn empty_window_is_never_congested() {
        assert!(!DecBitControl::window_congested(&[], 0.5, 64.0));
    }

    #[test]
    fn average_not_latest_decides() {
        // Latest snapshot fully congested, but the window average is still
        // below half: the filter must smooth the spike away.
        assert!(!DecBitControl::window_congested(&[0, 0, 0, 64], 0.5, 64.0));
        // Three of four at the boundary with one clear snapshot: 48 ≥ 32.
        assert!(DecBitControl::window_congested(&[64, 64, 64, 0], 0.5, 64.0));
    }

    fn small_cfg() -> DecBitConfig {
        DecBitConfig {
            sideband: SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
            ..DecBitConfig::paper()
        }
    }

    fn flood(ctl: &mut DecBitControl, cycles: u64) {
        let mut net = Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut i = 0usize;
        let mut source = move |_now: u64, node: usize| {
            i = i.wrapping_add(node + 1);
            Some((node + 1 + i) % nodes)
        };
        for _ in 0..cycles {
            net.cycle(&mut source, ctl);
        }
    }

    #[test]
    fn throttles_a_flooded_network() {
        let mut ctl = DecBitControl::new(small_cfg());
        flood(&mut ctl, 10_000);
        let c = Controller::counters(&ctl);
        assert!(c.decisions > 0);
        assert!(
            c.cuts > 0,
            "a sustained flood must congest a majority of nodes"
        );
    }

    #[test]
    fn watchdog_trips_on_blackout_and_fails_open() {
        let mut ctl = DecBitControl::new(small_cfg());
        ctl.set_faults(FaultPlan::sideband_only(
            11,
            SidebandFaults {
                loss_rate: 1.0,
                ..SidebandFaults::none()
            },
        ));
        flood(&mut ctl, 5_000);
        assert!(ctl.watchdog_active());
        assert!(!ctl.throttling(), "a frozen controller fails open");
        let c = Controller::counters(&ctl);
        assert_eq!(c.watchdog_trips, 1);
        assert_eq!(c.decisions, 0, "no aggregates, no verdicts");
    }
}
