use crate::Controller;
use wormsim::{CongestionControl, Network};

/// The **At-Least-One** (ALO) congestion-control baseline of Baydal, López &
/// Duato, as described in §5.1 of the paper.
///
/// ALO estimates global congestion *locally* at each node: a packet may be
/// injected iff
///
/// * at least one virtual channel is free on **every** useful physical
///   channel, **or**
/// * at least one useful physical channel has **all** its virtual channels
///   free,
///
/// where *useful* means an output channel that can be used without violating
/// the minimal-routing constraint. Because it relies on local symptoms of
/// congestion (back-pressure filling up the source router's channels), ALO
/// reacts later than the paper's globally informed scheme — which is exactly
/// the comparison Figures 3 and 7 make.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AloControl {
    throttled_last_cycle: bool,
}

impl AloControl {
    /// Creates the baseline controller.
    #[must_use]
    pub fn new() -> Self {
        AloControl::default()
    }

    /// Serializes the controller state into `enc` (for checkpointing).
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        enc.bool(self.throttled_last_cycle);
    }

    /// Restores state captured with [`AloControl::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.throttled_last_cycle = dec.bool()?;
        Ok(())
    }
}

impl CongestionControl for AloControl {
    fn on_cycle(&mut self, _now: u64, _net: &Network) {
        self.throttled_last_cycle = false;
    }

    fn allow_injection(&mut self, _now: u64, node: usize, dst: usize, net: &Network) -> bool {
        let hops = net.torus().productive_hops(node, dst);
        if hops.is_empty() {
            return true; // local delivery consumes no network channels
        }
        let vcs = net.config().vcs;
        let mut every_channel_has_a_free_vc = true;
        let mut some_channel_fully_free = false;
        for (dim, dir) in hops.iter() {
            let free = (0..vcs)
                .filter(|&vc| !net.output_vc_allocated(node, dim, dir, vc))
                .count();
            if free == 0 {
                every_channel_has_a_free_vc = false;
            }
            if free == vcs {
                some_channel_fully_free = true;
            }
        }
        let allow = every_channel_has_a_free_vc || some_channel_fully_free;
        if !allow {
            self.throttled_last_cycle = true;
        }
        allow
    }

    fn throttled_recently(&self) -> bool {
        self.throttled_last_cycle
    }

    fn name(&self) -> &'static str {
        "alo"
    }

    fn next_wakeup(&self, _now: u64) -> u64 {
        // ALO has no internal clock: it only reads router state at
        // injection attempts, and a quiescent network offers none. Skipped
        // `on_cycle`s would only have re-cleared an already-clear flag.
        u64::MAX
    }
}

impl Controller for AloControl {
    // ALO is locally informed: no census feed, no side-band, no global
    // gate. Only the checkpoint walkers carry state.
    fn save_state(&self, enc: &mut checkpoint::Enc) {
        AloControl::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        AloControl::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::{DeadlockMode, NetConfig, Network, NoControl};

    #[test]
    fn allows_injection_on_an_idle_network() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        let mut alo = AloControl::new();
        assert!(alo.allow_injection(0, 0, 9, &net));
        assert!(!alo.throttled_recently());
    }

    #[test]
    fn allows_local_delivery_unconditionally() {
        let net = Network::new(NetConfig::small(DeadlockMode::Avoidance)).unwrap();
        let mut alo = AloControl::new();
        assert!(alo.allow_injection(0, 5, 5, &net));
    }

    #[test]
    fn throttles_under_sustained_overload() {
        // Saturate a small recovery-mode network; ALO must eventually refuse
        // injections at some node (all useful channels partially busy).
        let mut net = Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let nodes = net.torus().node_count();
        let mut source = move |_now: u64, _node: usize| Some((rng() as usize) % nodes);
        net.run(3_000, &mut source, &mut NoControl);
        let mut alo = AloControl::new();
        let denied = (0..nodes)
            .filter(|&n| {
                let dst = (n + nodes / 2) % nodes;
                !alo.allow_injection(0, n, dst, &net)
            })
            .count();
        assert!(denied > 0, "ALO should throttle somewhere under overload");
        assert!(alo.throttled_recently());
    }
}
