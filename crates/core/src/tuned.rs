use crate::{Controller, ControllerCounters};
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig};
use wormsim::{CongestionControl, Network};

/// The action the tuning decision table prescribes for one tuning period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneAction {
    /// Lower the threshold by the decrement step.
    Decrement,
    /// Raise the threshold by the increment step.
    Increment,
    /// Leave the threshold unchanged.
    NoChange,
}

/// The paper's tuning decision table (Table 1).
///
/// | drop in BW? | throttling? | action    |
/// |-------------|-------------|-----------|
/// | yes         | yes         | decrement |
/// | yes         | no          | decrement |
/// | no          | yes         | increment |
/// | no          | no          | no change |
///
/// ```
/// use stcc::{decide, TuneAction};
/// assert_eq!(decide(true, true), TuneAction::Decrement);
/// assert_eq!(decide(true, false), TuneAction::Decrement);
/// assert_eq!(decide(false, true), TuneAction::Increment);
/// assert_eq!(decide(false, false), TuneAction::NoChange);
/// ```
#[must_use]
pub fn decide(bandwidth_drop: bool, throttling: bool) -> TuneAction {
    match (bandwidth_drop, throttling) {
        (true, _) => TuneAction::Decrement,
        (false, true) => TuneAction::Increment,
        (false, false) => TuneAction::NoChange,
    }
}

/// Configuration of the self-tuned controller (§4 defaults in
/// [`TuneConfig::paper`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TuneConfig {
    /// Side-band gather network parameters (defines the gather period `g`).
    pub sideband: SidebandConfig,
    /// Tuning period, in gathers (3 in the paper: 96 cycles at `g = 32`).
    pub tune_gathers: u32,
    /// Threshold increment as a fraction of all VC buffers (1%).
    pub increment_frac: f64,
    /// Threshold decrement as a fraction of all VC buffers (4%).
    pub decrement_frac: f64,
    /// A period counts as a *bandwidth drop* when its throughput falls below
    /// this fraction of the previous period's (75%).
    pub drop_fraction: f64,
    /// The local-maximum-avoidance reset fires when a period's throughput
    /// falls *significantly* below the best period seen — below this
    /// fraction of it (50%; period-to-period noise must not trigger it).
    pub reset_fraction: f64,
    /// Forget the remembered maximum after this many consecutive resets
    /// (`r = 5`).
    pub max_stale_resets: u32,
    /// Initial threshold as a fraction of all VC buffers (1%): tuning
    /// starts from the safe (over-throttled) side and climbs.
    pub initial_threshold_frac: f64,
    /// Enable the local-maximum-avoidance mechanism of §4.2 (disable to
    /// reproduce the "hill climbing only" curves of Figure 4).
    pub avoid_local_maxima: bool,
    /// Staleness watchdog: after this many consecutive missed gathers the
    /// controller freezes tuning, restores the last-known-good threshold
    /// and stops throttling on the stale estimate, re-arming on the next
    /// valid aggregate (0 disables the watchdog).
    pub watchdog_gathers: u32,
}

impl TuneConfig {
    /// The paper's configuration for its 16-ary 2-cube.
    #[must_use]
    pub fn paper() -> Self {
        TuneConfig {
            sideband: SidebandConfig::paper(),
            tune_gathers: 3,
            increment_frac: 0.01,
            decrement_frac: 0.04,
            drop_fraction: 0.75,
            reset_fraction: 0.5,
            max_stale_resets: 5,
            initial_threshold_frac: 0.01,
            avoid_local_maxima: true,
            watchdog_gathers: 8,
        }
    }

    /// The tuning period in cycles.
    #[must_use]
    pub fn tune_period(&self) -> u64 {
        u64::from(self.tune_gathers) * self.sideband.gather_period()
    }
}

/// The paper's self-tuned, globally informed source throttle.
///
/// Plug into [`wormsim::Network::cycle`] as the congestion-control policy.
/// All nodes share the same (side-band-delayed) view and threshold, so one
/// instance controls the whole network, exactly as the paper's replicated
/// per-node state would.
#[derive(Debug, Clone)]
pub struct SelfTuned {
    cfg: TuneConfig,
    sideband: Sideband,
    state: Option<TunerState>,
}

#[derive(Debug, Clone)]
struct TunerState {
    total_buffers: f64,
    threshold: f64,
    inc: f64,
    dec: f64,
    /// Visible gather windows accumulated into the current tuning period.
    snaps_in_period: u32,
    period_tput: u64,
    /// Sum of the period's snapshot full-buffer counts (for the period
    /// average that `N_max` remembers).
    period_full_sum: f64,
    prev_period_tput: Option<u64>,
    throttled_cycles_this_period: u64,
    cycles_this_period: u64,
    throttling_now: bool,
    /// `taken_at` of the newest snapshot already folded into the period.
    last_snapshot_seen: Option<u64>,
    // -- local-maximum avoidance (§4.2) --
    max_tput: u64,
    n_max: f64,
    t_max: f64,
    consecutive_resets: u32,
    // -- graceful degradation (staleness watchdog) --
    /// Threshold after the most recent tuning period with no observed
    /// side-band rejections: the value restored when the watchdog trips.
    last_good_threshold: f64,
    /// Watchdog tripped: tuning frozen, throttling suspended until a valid
    /// aggregate arrives.
    frozen: bool,
    /// Side-band rejection count already accounted for (for per-period
    /// cleanliness checks).
    rejected_seen: u64,
    // -- instrumentation --
    tune_events: u64,
    increments: u64,
    decrements: u64,
    resets: u64,
    watchdog_trips: u64,
    watchdog_rearms: u64,
}

impl SelfTuned {
    /// Creates a controller; buffer-count-dependent state initializes on the
    /// first [`CongestionControl::on_cycle`] call.
    #[must_use]
    pub fn new(cfg: TuneConfig) -> Self {
        SelfTuned {
            sideband: Sideband::new(cfg.sideband.clone()),
            cfg,
            state: None,
        }
    }

    /// The current threshold, in full buffers (`None` before the first
    /// cycle).
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.threshold)
    }

    /// Whether injection is currently blocked network-wide.
    #[must_use]
    pub fn throttling(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.throttling_now)
    }

    /// The remembered best-period throughput (flits per tuning period).
    #[must_use]
    pub fn max_throughput(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.max_tput)
    }

    /// The remembered `(T_max, N_max)` pair of the best period.
    #[must_use]
    pub fn max_anchor(&self) -> Option<(f64, f64)> {
        self.state.as_ref().map(|s| (s.t_max, s.n_max))
    }

    /// Number of tuning decisions taken so far.
    #[must_use]
    pub fn tune_events(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.tune_events)
    }

    /// Number of local-maximum-avoidance resets taken so far.
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.resets)
    }

    /// Installs a fault plan on the underlying side-band (loss, delay and
    /// corruption of every gather; see [`faults::SidebandFaults`]).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sideband.set_faults(plan);
    }

    /// Whether the staleness watchdog has currently frozen tuning (stale
    /// estimate distrusted, throttling suspended, threshold at
    /// last-known-good).
    #[must_use]
    pub fn watchdog_active(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.frozen)
    }

    /// Number of times the staleness watchdog has tripped.
    #[must_use]
    pub fn watchdog_trips(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.watchdog_trips)
    }

    /// Number of times a valid aggregate re-armed a tripped watchdog.
    #[must_use]
    pub fn watchdog_rearms(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.watchdog_rearms)
    }

    /// The threshold the watchdog would restore: the value after the most
    /// recent tuning period that observed no side-band rejections.
    #[must_use]
    pub fn last_good_threshold(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.last_good_threshold)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TuneConfig {
        &self.cfg
    }

    /// Read access to the underlying side-band model.
    #[must_use]
    pub fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// Serializes the controller state (side-band + tuner) into `enc`. The
    /// [`TuneConfig`] is not written — restore rebuilds from configuration.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        self.sideband.save_state(enc);
        enc.bool(self.state.is_some());
        if let Some(st) = &self.state {
            enc.f64(st.total_buffers);
            enc.f64(st.threshold);
            enc.f64(st.inc);
            enc.f64(st.dec);
            enc.u32(st.snaps_in_period);
            enc.u64(st.period_tput);
            enc.f64(st.period_full_sum);
            enc.opt_u64(st.prev_period_tput);
            enc.u64(st.throttled_cycles_this_period);
            enc.u64(st.cycles_this_period);
            enc.bool(st.throttling_now);
            enc.opt_u64(st.last_snapshot_seen);
            enc.u64(st.max_tput);
            enc.f64(st.n_max);
            enc.f64(st.t_max);
            enc.u32(st.consecutive_resets);
            enc.f64(st.last_good_threshold);
            enc.bool(st.frozen);
            enc.u64(st.rejected_seen);
            enc.u64(st.tune_events);
            enc.u64(st.increments);
            enc.u64(st.decrements);
            enc.u64(st.resets);
            enc.u64(st.watchdog_trips);
            enc.u64(st.watchdog_rearms);
        }
    }

    /// Restores state captured with [`SelfTuned::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.sideband.restore_state(dec)?;
        self.state = if dec.bool()? {
            Some(TunerState {
                total_buffers: dec.f64()?,
                threshold: dec.f64()?,
                inc: dec.f64()?,
                dec: dec.f64()?,
                snaps_in_period: dec.u32()?,
                period_tput: dec.u64()?,
                period_full_sum: dec.f64()?,
                prev_period_tput: dec.opt_u64()?,
                throttled_cycles_this_period: dec.u64()?,
                cycles_this_period: dec.u64()?,
                throttling_now: dec.bool()?,
                last_snapshot_seen: dec.opt_u64()?,
                max_tput: dec.u64()?,
                n_max: dec.f64()?,
                t_max: dec.f64()?,
                consecutive_resets: dec.u32()?,
                last_good_threshold: dec.f64()?,
                frozen: dec.bool()?,
                rejected_seen: dec.u64()?,
                tune_events: dec.u64()?,
                increments: dec.u64()?,
                decrements: dec.u64()?,
                resets: dec.u64()?,
                watchdog_trips: dec.u64()?,
                watchdog_rearms: dec.u64()?,
            })
        } else {
            None
        };
        Ok(())
    }

    fn state_for(cfg: &TuneConfig, total_buffers: f64) -> TunerState {
        TunerState {
            total_buffers,
            threshold: cfg.initial_threshold_frac * total_buffers,
            inc: cfg.increment_frac * total_buffers,
            dec: cfg.decrement_frac * total_buffers,
            snaps_in_period: 0,
            period_tput: 0,
            period_full_sum: 0.0,
            prev_period_tput: None,
            throttled_cycles_this_period: 0,
            cycles_this_period: 0,
            throttling_now: false,
            last_snapshot_seen: None,
            max_tput: 0,
            n_max: 0.0,
            t_max: 0.0,
            consecutive_resets: 0,
            last_good_threshold: cfg.initial_threshold_frac * total_buffers,
            frozen: false,
            rejected_seen: 0,
            tune_events: 0,
            increments: 0,
            decrements: 0,
            resets: 0,
            watchdog_trips: 0,
            watchdog_rearms: 0,
        }
    }

    /// One tuning decision (runs once per tuning period).
    /// `period_full_buffers` is the period-average full-buffer count.
    fn tune(cfg: &TuneConfig, st: &mut TunerState, period_full_buffers: f64) {
        let tput = st.period_tput;
        st.tune_events += 1;

        // Track the conditions of the best period seen (§4.2).
        if tput > st.max_tput {
            st.max_tput = tput;
            st.n_max = period_full_buffers;
            st.t_max = st.threshold;
        }

        let significant_drop_below_max = cfg.avoid_local_maxima
            && st.max_tput > 0
            && (tput as f64) < cfg.reset_fraction * st.max_tput as f64;

        if significant_drop_below_max {
            // Recreate the conditions of the best period. If even that value
            // keeps failing for `r` consecutive periods, the remembered max
            // is stale (e.g. the communication pattern changed): forget it.
            // A reset period during which throughput is still *recovering*
            // (rising period over period) does not count as failing — a
            // deeply saturated network takes more than one period to drain
            // even at the right threshold.
            // Never raise the threshold on a reset, and keep honoring the
            // decision table's first row ("a drop in bandwidth always
            // decrements") so a knot that the anchor itself cannot clear
            // still ratchets the threshold downwards.
            st.threshold = st.threshold.min(st.t_max.min(st.n_max));
            let drop = st
                .prev_period_tput
                .is_some_and(|prev| (tput as f64) < cfg.drop_fraction * prev as f64);
            if drop {
                st.threshold -= st.dec;
                st.decrements += 1;
            }
            st.resets += 1;
            st.consecutive_resets += 1;
            if st.consecutive_resets >= cfg.max_stale_resets {
                st.max_tput = 0;
                st.consecutive_resets = 0;
            }
        } else {
            st.consecutive_resets = 0;
            let drop = st
                .prev_period_tput
                .is_some_and(|prev| (tput as f64) < cfg.drop_fraction * prev as f64);
            // "Currently throttling" = the gate was closed for most of the
            // period; a few throttled cycles at the stability boundary do
            // not count (otherwise the optimistic increment ratchets the
            // threshold into saturation).
            let throttling = st.cycles_this_period > 0
                && st.throttled_cycles_this_period * 2 >= st.cycles_this_period;
            match decide(drop, throttling) {
                TuneAction::Decrement => {
                    st.threshold -= st.dec;
                    st.decrements += 1;
                }
                TuneAction::Increment => {
                    st.threshold += st.inc;
                    st.increments += 1;
                }
                TuneAction::NoChange => {}
            }
        }
        st.threshold = st.threshold.clamp(st.inc, st.total_buffers);
        st.prev_period_tput = Some(tput);
        Self::reset_period(st);
    }

    /// Clears the per-tuning-period accumulators.
    fn reset_period(st: &mut TunerState) {
        st.period_tput = 0;
        st.period_full_sum = 0.0;
        st.snaps_in_period = 0;
        st.throttled_cycles_this_period = 0;
        st.cycles_this_period = 0;
    }
}

impl CongestionControl for SelfTuned {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        // Buffer-dependent state initializes from the network's own count;
        // the synthetic-census path (`observe_census` with no network) uses
        // the side-band configuration's identical formula instead.
        self.state
            .get_or_insert_with(|| Self::state_for(&self.cfg, f64::from(net.total_vc_buffers())));
        Controller::observe_census(
            self,
            now,
            net.full_buffer_count(),
            net.delivered_flits_cum(),
        );
    }

    fn allow_injection(&mut self, _now: u64, _node: usize, _dst: usize, _net: &Network) -> bool {
        !self.throttling()
    }

    fn throttled_recently(&self) -> bool {
        self.throttling()
    }

    fn name(&self) -> &'static str {
        "tune"
    }
}

impl Controller for SelfTuned {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        let st = self.state.get_or_insert_with(|| {
            Self::state_for(&self.cfg, f64::from(self.sideband.max_full_buffers()))
        });

        self.sideband.on_cycle(now, census, delivered_cum);

        // Fold newly visible gather windows into the tuning period.
        if let Some(snap) = self.sideband.latest() {
            if st.last_snapshot_seen != Some(snap.taken_at) {
                st.last_snapshot_seen = Some(snap.taken_at);
                if st.frozen {
                    // A valid aggregate ends the outage: re-arm tuning from
                    // scratch at the restored threshold. The pre-outage
                    // period throughput is not comparable across the gap.
                    st.frozen = false;
                    st.watchdog_rearms += 1;
                    st.prev_period_tput = None;
                    st.rejected_seen = self.sideband.stats().rejected();
                    Self::reset_period(st);
                }
                st.period_tput += u64::from(snap.delivered_flits);
                st.period_full_sum += f64::from(snap.full_buffers);
                st.snaps_in_period += 1;
                if st.snaps_in_period >= self.cfg.tune_gathers {
                    let avg_full = st.period_full_sum / f64::from(st.snaps_in_period);
                    Self::tune(&self.cfg, st, avg_full);
                    // A period during which receivers rejected nothing is
                    // trustworthy: remember where it left the threshold as
                    // the watchdog's fallback point.
                    let rejected = self.sideband.stats().rejected();
                    if rejected == st.rejected_seen {
                        st.last_good_threshold = st.threshold;
                    }
                    st.rejected_seen = rejected;
                }
            }
        }

        // Staleness watchdog: when aggregates stop arriving for
        // `watchdog_gathers` consecutive gathers, the estimate is fiction.
        // Freeze tuning, fall back to the last-known-good threshold, and
        // fail open (stop throttling) until real data returns.
        if !st.frozen
            && self.cfg.watchdog_gathers > 0
            && self.sideband.gathers_overdue(now) >= u64::from(self.cfg.watchdog_gathers)
        {
            st.frozen = true;
            st.watchdog_trips += 1;
            st.threshold = st.last_good_threshold;
            st.prev_period_tput = None;
            Self::reset_period(st);
        }

        st.throttling_now = !st.frozen && self.sideband.estimate(now) > st.threshold;
        st.cycles_this_period += 1;
        if st.throttling_now {
            st.throttled_cycles_this_period += 1;
        }
    }

    fn throttling(&self) -> bool {
        SelfTuned::throttling(self)
    }

    fn threshold(&self) -> Option<f64> {
        SelfTuned::threshold(self)
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        SelfTuned::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        Some(SelfTuned::sideband(self))
    }

    fn watchdog_active(&self) -> bool {
        SelfTuned::watchdog_active(self)
    }

    fn counters(&self) -> ControllerCounters {
        self.state
            .as_ref()
            .map_or_else(ControllerCounters::default, |st| ControllerCounters {
                decisions: st.tune_events,
                raises: st.increments,
                cuts: st.decrements,
                resets: st.resets,
                watchdog_trips: st.watchdog_trips,
                watchdog_rearms: st.watchdog_rearms,
            })
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        SelfTuned::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        SelfTuned::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TuneConfig {
        TuneConfig::paper()
    }

    fn state(total: f64) -> TunerState {
        SelfTuned::state_for(&cfg(), total)
    }

    #[test]
    fn paper_constants() {
        let c = cfg();
        assert_eq!(c.tune_period(), 96);
        let st = state(3072.0);
        // 1% of 3072 = 30.72, 4% = 122.88 (the paper rounds to 30 / 122).
        assert!((st.inc - 30.72).abs() < 1e-9);
        assert!((st.dec - 122.88).abs() < 1e-9);
        assert!((st.threshold - 30.72).abs() < 1e-9);
    }

    #[test]
    fn decision_table_matches_table_1() {
        assert_eq!(decide(true, true), TuneAction::Decrement);
        assert_eq!(decide(true, false), TuneAction::Decrement);
        assert_eq!(decide(false, true), TuneAction::Increment);
        assert_eq!(decide(false, false), TuneAction::NoChange);
    }

    /// All four Table 1 rows exercised through `tune` itself on the
    /// paper's 3072-buffer network: the threshold must move by exactly
    /// ±1% / ±4% of 3072 (30.72 / 122.88 full buffers) per row.
    #[test]
    fn tune_applies_exact_table_1_deltas() {
        const INC: f64 = 0.01 * 3072.0; // 30.72
        const DEC: f64 = 0.04 * 3072.0; // 122.88
        let rows: [(bool, bool, f64); 4] = [
            (true, true, -DEC),  // drop + throttling  -> decrement
            (true, false, -DEC), // drop, no throttling -> decrement
            (false, true, INC),  // no drop, throttling -> increment
            (false, false, 0.0), // steady, open gate   -> no change
        ];
        for (drop, throttling, delta) in rows {
            let c = cfg();
            let mut st = state(3072.0);
            st.threshold = 1000.0;
            let prev = 1000u64;
            st.prev_period_tput = Some(prev);
            // 74% of the previous period is a drop; 100% is not.
            st.period_tput = if drop { prev * 74 / 100 } else { prev };
            // Keep the avoidance path quiet: the remembered max equals the
            // period, so the reset condition can't fire.
            st.max_tput = st.period_tput;
            st.cycles_this_period = 96;
            st.throttled_cycles_this_period = if throttling { 96 } else { 0 };
            SelfTuned::tune(&c, &mut st, 100.0);
            assert!(
                (st.threshold - (1000.0 + delta)).abs() < 1e-9,
                "row (drop={drop}, throttling={throttling}): expected delta {delta}, \
                 got {}",
                st.threshold - 1000.0
            );
        }
    }

    /// The bandwidth-drop predicate is strict: only a fall *below* 75% of
    /// the previous period counts (at exactly 75% the row is "no drop").
    #[test]
    fn drop_boundary_is_strict() {
        for (tput, is_drop) in [(750u64, false), (749, true)] {
            let c = cfg();
            let mut st = state(3072.0);
            st.threshold = 1000.0;
            st.prev_period_tput = Some(1000);
            st.period_tput = tput;
            st.max_tput = 1000;
            st.n_max = 2000.0; // anchor above threshold: reset can't lower it
            st.t_max = 2000.0;
            SelfTuned::tune(&c, &mut st, 100.0);
            let moved = (st.threshold - 1000.0).abs() > 1e-9;
            assert_eq!(moved, is_drop, "tput={tput}: drop must be strict <");
        }
    }

    /// The throttling predicate needs the gate closed for at least half
    /// the period's cycles.
    #[test]
    fn throttling_needs_majority_of_period() {
        for (throttled, expects_increment) in [(48u64, true), (47, false)] {
            let c = cfg();
            let mut st = state(3072.0);
            st.threshold = 1000.0;
            st.prev_period_tput = Some(1000);
            st.period_tput = 1000;
            st.max_tput = 1000;
            st.cycles_this_period = 96;
            st.throttled_cycles_this_period = throttled;
            SelfTuned::tune(&c, &mut st, 100.0);
            let incremented = st.threshold > 1000.0;
            assert_eq!(
                incremented, expects_increment,
                "throttled {throttled}/96 cycles"
            );
        }
    }

    /// The local-maximum-avoidance trigger is strict: a period at exactly
    /// `reset_fraction` of the remembered max does not reset; one flit
    /// less does.
    #[test]
    fn reset_trigger_boundary_is_strict() {
        for (tput, expects_reset) in [(500u64, false), (499, true)] {
            let c = cfg();
            let mut st = state(3072.0);
            st.threshold = 900.0;
            st.max_tput = 1000;
            st.t_max = 500.0;
            st.n_max = 400.0;
            st.period_tput = tput;
            // No prev period: the decision table sees "no drop" either way.
            st.prev_period_tput = None;
            SelfTuned::tune(&c, &mut st, 100.0);
            assert_eq!(st.resets, u64::from(expects_reset), "tput={tput}");
            if expects_reset {
                assert_eq!(st.threshold, 400.0, "reset to min(t_max, n_max)");
            }
        }
    }

    #[test]
    fn increment_when_throttling_without_drop() {
        let c = cfg();
        let mut st = state(3072.0);
        st.prev_period_tput = Some(1000);
        st.period_tput = 1000;
        st.throttled_cycles_this_period = 96;
        st.cycles_this_period = 96;
        let before = st.threshold;
        SelfTuned::tune(&c, &mut st, 100.0);
        assert!((st.threshold - before - st.inc).abs() < 1e-9);
    }

    #[test]
    fn decrement_on_bandwidth_drop() {
        let c = cfg();
        let mut st = state(3072.0);
        st.threshold = 500.0;
        st.max_tput = 0; // no remembered max yet
        st.prev_period_tput = Some(1000);
        st.period_tput = 700; // < 75% of 1000, but not < 50% (no reset)
        SelfTuned::tune(&c, &mut st, 100.0);
        assert!((st.threshold - (500.0 - st.dec)).abs() < 1e-9);
    }

    #[test]
    fn no_change_when_stable_and_unthrottled() {
        let c = cfg();
        let mut st = state(3072.0);
        st.prev_period_tput = Some(1000);
        st.period_tput = 1000;
        // Keep the max consistent so the reset path stays quiet.
        st.max_tput = 1000;
        let before = st.threshold;
        SelfTuned::tune(&c, &mut st, 100.0);
        assert_eq!(st.threshold, before);
    }

    #[test]
    fn reset_restores_min_of_tmax_nmax() {
        let c = cfg();
        let mut st = state(3072.0);
        st.max_tput = 1000;
        st.t_max = 500.0;
        st.n_max = 260.0;
        st.threshold = 900.0;
        st.period_tput = 300; // far below the remembered max
        SelfTuned::tune(&c, &mut st, 100.0);
        assert_eq!(st.threshold, 260.0, "min(t_max, n_max)");
        assert!(st.threshold <= 900.0, "resets never raise the threshold");
        assert_eq!(st.consecutive_resets, 1);
        assert_eq!(st.resets, 1);
    }

    #[test]
    fn stale_max_forgotten_after_r_resets() {
        let c = cfg();
        let mut st = state(3072.0);
        st.max_tput = 10_000;
        st.t_max = 500.0;
        st.n_max = 400.0;
        for i in 1..=c.max_stale_resets {
            st.period_tput = 100;
            SelfTuned::tune(&c, &mut st, 100.0);
            if i < c.max_stale_resets {
                assert_eq!(st.consecutive_resets, i);
                assert_eq!(st.max_tput, 10_000);
            }
        }
        assert_eq!(st.max_tput, 0, "max recomputed from scratch");
        assert_eq!(st.consecutive_resets, 0);
    }

    #[test]
    fn new_maximum_interrupts_reset_streak() {
        let c = cfg();
        let mut st = state(3072.0);
        st.max_tput = 1000;
        st.t_max = 500.0;
        st.n_max = 400.0;
        st.period_tput = 100;
        SelfTuned::tune(&c, &mut st, 50.0);
        assert_eq!(st.consecutive_resets, 1);
        // A record-breaking period updates the max and avoids the reset.
        st.period_tput = 2000;
        SelfTuned::tune(&c, &mut st, 220.0);
        assert_eq!(st.consecutive_resets, 0);
        assert_eq!(st.max_tput, 2000);
        assert_eq!(st.n_max, 220.0);
    }

    #[test]
    fn threshold_clamped_to_valid_range() {
        let c = cfg();
        let mut st = state(3072.0);
        st.threshold = st.inc; // already at the floor
        st.max_tput = 0;
        st.prev_period_tput = Some(1000);
        st.period_tput = 0; // catastrophic drop
        SelfTuned::tune(&c, &mut st, 0.0);
        assert_eq!(st.threshold, st.inc, "floor holds");
        st.threshold = 3072.0;
        st.prev_period_tput = Some(1);
        st.period_tput = 1;
        st.max_tput = 1;
        st.throttled_cycles_this_period = 96;
        st.cycles_this_period = 96;
        SelfTuned::tune(&c, &mut st, 0.0);
        assert_eq!(st.threshold, 3072.0, "ceiling holds");
    }

    // -- staleness watchdog (graceful degradation) --

    use faults::SidebandFaults;
    use wormsim::{DeadlockMode, NetConfig};

    /// Drives `ctl` against a flooded small network for `cycles` cycles.
    fn flood(ctl: &mut SelfTuned, cycles: u64) {
        let mut net = Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut i = 0usize;
        let mut source = move |_now: u64, node: usize| {
            i = i.wrapping_add(node + 1);
            Some((node + 1 + i) % nodes)
        };
        for _ in 0..cycles {
            net.cycle(&mut source, ctl);
        }
    }

    fn small_tune_cfg() -> TuneConfig {
        TuneConfig {
            sideband: SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
            ..TuneConfig::paper()
        }
    }

    #[test]
    fn watchdog_trips_on_blackout_and_fails_open() {
        let mut ctl = SelfTuned::new(small_tune_cfg());
        ctl.set_faults(FaultPlan::sideband_only(
            11,
            SidebandFaults {
                loss_rate: 1.0,
                ..SidebandFaults::none()
            },
        ));
        flood(&mut ctl, 5_000);
        assert_eq!(ctl.watchdog_trips(), 1, "one outage, one trip");
        assert!(ctl.watchdog_active(), "outage never ends");
        assert_eq!(ctl.watchdog_rearms(), 0);
        assert!(!ctl.throttling(), "a frozen controller fails open");
        assert_eq!(ctl.tune_events(), 0, "no aggregates, no tuning");
        // With no tuning ever observed, the fallback is the initial value.
        assert_eq!(ctl.threshold(), ctl.last_good_threshold());
        assert!(ctl.sideband().stats().lost_snapshots > 100);
        assert!(ctl.sideband().latest().is_none(), "nothing ever arrived");
    }

    #[test]
    fn watchdog_rearms_when_data_returns() {
        // Every gather is delayed by up to 50 gather periods: long silences
        // trip the watchdog, and each late arrival then re-arms it.
        let mut ctl = SelfTuned::new(small_tune_cfg());
        let period = ctl.config().sideband.gather_period();
        ctl.set_faults(FaultPlan::sideband_only(
            5,
            SidebandFaults {
                delay_rate: 1.0,
                max_delay: 50 * period,
                ..SidebandFaults::none()
            },
        ));
        flood(&mut ctl, 20_000);
        assert!(ctl.watchdog_trips() >= 1, "long delays look like outages");
        assert!(
            ctl.watchdog_rearms() >= 1,
            "late aggregates must re-arm the watchdog ({} trips, {} re-arms)",
            ctl.watchdog_trips(),
            ctl.watchdog_rearms()
        );
        assert!(ctl.watchdog_rearms() <= ctl.watchdog_trips());
    }

    #[test]
    fn fault_free_watchdog_stays_quiet() {
        let mut ctl = SelfTuned::new(small_tune_cfg());
        flood(&mut ctl, 10_000);
        assert_eq!(ctl.watchdog_trips(), 0);
        assert_eq!(ctl.watchdog_rearms(), 0);
        assert!(!ctl.watchdog_active());
        assert!(ctl.tune_events() > 0);
    }

    #[test]
    fn disabling_avoidance_skips_resets() {
        let mut c = cfg();
        c.avoid_local_maxima = false;
        let mut st = state(3072.0);
        st.max_tput = 10_000;
        st.t_max = 100.0;
        st.n_max = 100.0;
        st.prev_period_tput = Some(1000);
        st.period_tput = 900; // below max but not a 25% period drop
        let before = st.threshold;
        SelfTuned::tune(&c, &mut st, 50.0);
        assert_eq!(st.threshold, before, "hill-climbing only: no reset");
        assert_eq!(st.resets, 0);
    }
}
