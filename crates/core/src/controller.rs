use faults::FaultPlan;
use sideband::{Sideband, SidebandStats};
use wormsim::{CongestionControl, NoControl};

/// Typed event counters every controller reports (all zero where a hook
/// does not apply — e.g. `Base` never tunes and `Alo` has no watchdog).
///
/// The names map onto each controller's decision vocabulary: the
/// self-tuner's Table 1 increments/decrements, AIMD's additive raises and
/// multiplicative cuts, DEC-bit's clear/congested window verdicts and
/// BBR's probe/drain phase entries all land in `raises`/`cuts`, so
/// experiments can report decision activity uniformly across the zoo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerCounters {
    /// Decision periods evaluated (tuning periods, filter windows, or
    /// gather-rate samples, per the controller's clock).
    pub decisions: u64,
    /// Decisions that raised the threshold / relaxed the gate.
    pub raises: u64,
    /// Decisions that cut the threshold / tightened the gate.
    pub cuts: u64,
    /// Local-maximum-avoidance resets (self-tuned only).
    pub resets: u64,
    /// Times the staleness watchdog tripped (froze the controller).
    pub watchdog_trips: u64,
    /// Times a valid aggregate re-armed a tripped watchdog.
    pub watchdog_rearms: u64,
}

/// The congestion-controller contract every scheme in the zoo implements,
/// layered on the simulator-facing [`wormsim::CongestionControl`] hooks
/// (decide-throttle, per-cycle observation, `next_wakeup` fast-forward
/// veto).
///
/// The extra hooks are what the harness needs to treat controllers
/// uniformly:
///
/// * **Side-band census input** ([`Controller::observe_census`]): the
///   per-cycle ground-truth feed (census + cumulative deliveries) that
///   side-band controllers push through their delay model. `on_cycle`
///   implementations derive the census from the network and delegate here,
///   so conformance tests can drive a controller with a *synthetic* census
///   and no network at all.
/// * **Fault plan** ([`Controller::set_faults`]): side-band loss/delay/
///   corruption injection; a no-op for locally informed schemes.
/// * **Checkpoint save/restore** ([`Controller::save_state`] /
///   [`Controller::restore_state`]): byte-exact state walkers. Restoring a
///   saved stream into a controller built from the same configuration and
///   running to the end must be bit-identical to never checkpointing.
/// * **Typed counters** ([`Controller::counters`]): uniform decision and
///   watchdog instrumentation.
///
/// Contract obligations (pinned by `tests/controller_conformance.rs` for
/// every registered scheme):
///
/// 1. `save_state` → `restore_state` round-trips bit-exactly, mid-period
///    included.
/// 2. `next_wakeup` either returns `now` (vetoing fast-forward — required
///    whenever the controller keeps a per-cycle clock such as a side-band
///    pipeline) or guarantees the skipped `on_cycle`s are no-ops.
/// 3. Stepping under the invariant audit layer never perturbs outputs.
/// 4. A side-band blackout must trip the staleness watchdog and fail
///    *open* (stop throttling on fiction) rather than wedging the network.
/// 5. A monotonically rising census must close the gate of every
///    estimate-gated controller (and never close `Base`/`Alo`'s).
pub trait Controller: CongestionControl {
    /// Feeds one cycle of ground truth: the network-wide congestion census
    /// (full VC buffers, or whatever census the controller defines) and the
    /// cumulative delivered-flit count. Side-band controllers must accept
    /// consecutive cycles starting at 0. Default: no-op (locally informed
    /// schemes).
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        let _ = (now, census, delivered_cum);
    }

    /// Whether injection is currently blocked network-wide by this
    /// controller's global gate (`false` for per-node schemes like `Alo`).
    fn throttling(&self) -> bool {
        false
    }

    /// The current injection-gate threshold in census units, if the
    /// controller has one.
    fn threshold(&self) -> Option<f64> {
        None
    }

    /// Installs a side-band fault plan. Default: no-op (no side-band).
    fn set_faults(&mut self, plan: FaultPlan) {
        let _ = plan;
    }

    /// Read access to the controller's side-band model, if it has one.
    fn sideband(&self) -> Option<&Sideband> {
        None
    }

    /// Side-band fault/rejection counters, if the scheme has a side-band.
    fn sideband_stats(&self) -> Option<SidebandStats> {
        self.sideband().map(Sideband::stats)
    }

    /// Whether the staleness watchdog has currently frozen the controller.
    fn watchdog_active(&self) -> bool {
        false
    }

    /// Decision/watchdog event counters accumulated so far.
    fn counters(&self) -> ControllerCounters {
        ControllerCounters::default()
    }

    /// Serializes the controller's runtime state into `enc` (for
    /// checkpointing). Configuration is never written — restore rebuilds
    /// from the same [`crate::Scheme`].
    fn save_state(&self, enc: &mut checkpoint::Enc);

    /// Restores state captured with [`Controller::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError>;
}

impl Controller for NoControl {
    fn save_state(&self, _enc: &mut checkpoint::Enc) {}

    fn restore_state(
        &mut self,
        _dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        Ok(())
    }
}
