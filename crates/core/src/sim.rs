use crate::scheme::{Control, Scheme};
use crate::{Controller, SelfTuned};
use checkpoint::CheckpointError;
use core::fmt;
use faults::{FaultPlan, FaultPlanError};
use sideband::SidebandStats;
use simstats::{LatencyStats, RunSummary};
use std::time::Instant;
use traffic::{TrafficError, Workload, WorkloadRunner};
use wormsim::{AuditReport, ConfigError, CongestionControl, NetConfig, Network, PhaseStats};

/// Everything needed to run one simulation: a network, a workload, a
/// congestion-control scheme and the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Network microarchitecture.
    pub net: NetConfig,
    /// Offered traffic.
    pub workload: Workload,
    /// Congestion-control policy.
    pub scheme: Scheme,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warm-up cycles excluded from all statistics (the paper ignores the
    /// first 100 000 of 600 000).
    pub warmup: u64,
    /// Seed for the (deterministic) traffic generator.
    pub seed: u64,
}

/// Error building a [`Simulation`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid network configuration.
    Net(ConfigError),
    /// Invalid workload.
    Traffic(TrafficError),
    /// Warm-up must be shorter than the simulation.
    WarmupTooLong {
        /// Requested warm-up.
        warmup: u64,
        /// Requested total cycles.
        cycles: u64,
    },
    /// Invalid fault plan (only from [`Simulation::with_faults`]).
    Faults(FaultPlanError),
    /// A guarded run detected a livelock: live packets exist but no flit
    /// moved anywhere for the guard's window (see [`RunGuard`]).
    Livelock(LivelockDiag),
    /// A guarded run exhausted its cycle budget or wall-clock deadline
    /// before reaching the configured end.
    DeadlineExceeded {
        /// Simulation cycle when the budget ran out.
        at_cycle: u64,
        /// Which budget was exhausted.
        kind: BudgetKind,
    },
    /// A checkpoint could not be restored (only from
    /// [`Simulation::restore`]).
    Checkpoint(CheckpointError),
    /// The invariant audit found violations — a structurally valid but
    /// internally inconsistent state (only from [`Simulation::restore`],
    /// which always audits the restored network).
    Audit(AuditReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Net(e) => write!(f, "network configuration: {e}"),
            SimError::Traffic(e) => write!(f, "workload: {e}"),
            SimError::WarmupTooLong { warmup, cycles } => {
                write!(
                    f,
                    "warm-up ({warmup}) must be shorter than the run ({cycles})"
                )
            }
            SimError::Faults(e) => write!(f, "fault plan: {e}"),
            SimError::Livelock(d) => write!(f, "livelock: {d}"),
            SimError::DeadlineExceeded { at_cycle, kind } => {
                write!(f, "{kind} budget exhausted at cycle {at_cycle}")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            SimError::Audit(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            SimError::Traffic(e) => Some(e),
            SimError::WarmupTooLong { .. }
            | SimError::Livelock(_)
            | SimError::DeadlineExceeded { .. }
            | SimError::Audit(_) => None,
            SimError::Faults(e) => Some(e),
            SimError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::Faults(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

/// Which budget a guarded run exhausted (see
/// [`SimError::DeadlineExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The per-run cycle budget ([`RunGuard::max_cycles`]).
    Cycles,
    /// The wall-clock deadline ([`RunGuard::deadline`]).
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Cycles => write!(f, "cycle"),
            BudgetKind::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// Diagnostic state captured when a guarded run declares a livelock
/// ([`SimError::Livelock`]): everything needed to see *why* nothing moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivelockDiag {
    /// Cycle at which the livelock was declared.
    pub cycle: u64,
    /// The no-progress window that expired (cycles).
    pub window: u64,
    /// Packets generated but not yet fully delivered.
    pub live_packets: usize,
    /// Network-wide full-buffer census at the point of declaration.
    pub full_buffers: u32,
    /// Suspected-deadlocked VCs queued for the recovery token.
    pub token_queue: usize,
    /// Whether a Disha recovery drain was holding the token.
    pub recovery_active: bool,
    /// Cycle any flit last moved anywhere.
    pub last_progress_at: u64,
    /// Cycle of the most recent flit delivery.
    pub last_delivery_at: u64,
    /// Packets delivered before everything wedged.
    pub delivered_packets: u64,
}

impl fmt::Display for LivelockDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no flit moved for {} cycles (cycle {}, last progress at {}, last \
             delivery at {}): {} live packets, {} full buffers, {} VCs awaiting \
             the recovery token, recovery {}, {} packets delivered",
            self.window,
            self.cycle,
            self.last_progress_at,
            self.last_delivery_at,
            self.live_packets,
            self.full_buffers,
            self.token_queue,
            if self.recovery_active {
                "active"
            } else {
                "idle"
            },
            self.delivered_packets,
        )
    }
}

/// Soft limits for a guarded run ([`Simulation::run_to_end_guarded`]).
///
/// The default guard watches only for livelock, with a window generous
/// enough (200 000 cycles) that even a deeply saturated-but-functioning
/// network never trips it: the Disha drain moves at least one flit per
/// recovery step, and any functioning configuration delivers far more often
/// than that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunGuard {
    /// Declare [`SimError::Livelock`] when live packets exist but no flit
    /// has moved anywhere for this many cycles (`None` disables).
    pub livelock_window: Option<u64>,
    /// Maximum cycles this call may step before
    /// [`SimError::DeadlineExceeded`] (`None` disables).
    pub max_cycles: Option<u64>,
    /// Wall-clock deadline, checked every 1024 cycles (`None` disables).
    pub deadline: Option<Instant>,
}

/// Default no-progress window (cycles) before declaring a livelock.
pub const DEFAULT_LIVELOCK_WINDOW: u64 = 200_000;

impl Default for RunGuard {
    fn default() -> Self {
        RunGuard {
            livelock_window: Some(DEFAULT_LIVELOCK_WINDOW),
            max_cycles: None,
            deadline: None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Net(e)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

/// Error producing a [`RunSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryError {
    /// The run has not yet reached the end of its warm-up window, so there
    /// is no measured window to summarize.
    BeforeWarmup {
        /// Current simulation cycle.
        now: u64,
        /// Configured warm-up length.
        warmup: u64,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::BeforeWarmup { now, warmup } => write!(
                f,
                "summary requested at cycle {now}, before the warm-up window ({warmup} cycles) elapsed"
            ),
        }
    }
}

impl std::error::Error for SummaryError {}

/// Fault-injection and degradation counters of one run, aggregated across
/// the network and the controller. All zero when no fault plan is installed
/// (and for fault-free plans).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Side-band loss/delay/corruption/rejection counters, when the scheme
    /// has a side-band (`None` for `Base` and `Alo`).
    pub sideband: Option<SidebandStats>,
    /// Times the controller's staleness watchdog tripped (froze it).
    pub watchdog_trips: u64,
    /// Times a valid aggregate re-armed the tripped watchdog.
    pub watchdog_rearms: u64,
    /// Whether the watchdog is tripped right now.
    pub watchdog_active: bool,
    /// The controller's full decision/watchdog counters (raises, cuts,
    /// resets, …), so degradation reports can show decision activity
    /// alongside the fault counters without a second query.
    pub controller: crate::ControllerCounters,
    /// Cycles flits stalled on faulted network links.
    pub link_stall_cycles: u64,
    /// Cycles flits stalled on hotspot-faulted delivery channels.
    pub hotspot_stall_cycles: u64,
}

impl FaultReport {
    /// True when no fault or degradation event was observed at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.sideband.unwrap_or_default() == SidebandStats::default()
            && self.watchdog_trips == 0
            && self.watchdog_rearms == 0
            && !self.watchdog_active
            && self.link_stall_cycles == 0
            && self.hotspot_stall_cycles == 0
    }
}

/// A wired-up simulation: network + workload + congestion control +
/// statistics, stepped one cycle at a time (or run to completion).
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    // Kept for the checkpoint fingerprint: a snapshot from a faulted run
    // must not restore into a fault-free one (or vice versa).
    faults: Option<FaultPlan>,
    net: Network,
    runner: WorkloadRunner,
    ctl: Control,
    // Statistics over the measured (post-warm-up) window.
    net_latency: LatencyStats,
    total_latency: LatencyStats,
    base_delivered_flits: u64,
    base_delivered_packets: u64,
    base_recovered: u64,
    base_throttled: u64,
    warmup_snapped: bool,
    /// Packets delivered per source node during the measured window (for
    /// Jain's fairness index).
    src_delivered: Vec<u64>,
    /// Invariant-audit cadence in cycles (`None` = off). Resolved from
    /// `STCC_AUDIT` at construction; the chaos harness overrides it
    /// programmatically via [`Simulation::set_audit_every`].
    audit_every: Option<u64>,
}

/// Parses `STCC_AUDIT`: unset, empty or `0` disables the audit; any
/// positive integer `N` audits every `N` cycles (`1` = every cycle).
/// Anything else warns once (per process) and disables.
fn audit_cadence() -> Option<u64> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("STCC_AUDIT") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!("ignoring STCC_AUDIT={v} (want a cycle cadence, e.g. STCC_AUDIT=64)");
                });
                None
            }
        },
        Err(_) => None,
    }
}

/// Parses `STCC_SHARDS`: unset, empty, `0` or `1` steps the network
/// unsharded; any larger integer `N` shards the step loop across `N`
/// threads (results are bit-identical for any value). Anything else
/// warns once (per process) and falls back to 1.
fn shards_from_env() -> usize {
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("STCC_SHARDS") {
        Ok(v) if v.is_empty() || v == "0" => 1,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!("ignoring STCC_SHARDS={v} (want a thread count, e.g. STCC_SHARDS=4)");
                });
                1
            }
        },
        Err(_) => 1,
    }
}

impl Simulation {
    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid network, workload or window
    /// parameters.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        if cfg.warmup >= cfg.cycles {
            return Err(SimError::WarmupTooLong {
                warmup: cfg.warmup,
                cycles: cfg.cycles,
            });
        }
        let mut net = Network::new(cfg.net.clone())?;
        net.set_shards(shards_from_env());
        let nodes = net.torus().node_count();
        let runner = WorkloadRunner::new(&cfg.workload, nodes, cfg.seed)?;
        let ctl = cfg.scheme.build();
        Ok(Simulation {
            cfg,
            faults: None,
            net,
            runner,
            ctl,
            net_latency: LatencyStats::new(),
            total_latency: LatencyStats::new(),
            base_delivered_flits: 0,
            base_delivered_packets: 0,
            base_recovered: 0,
            base_throttled: 0,
            warmup_snapped: false,
            src_delivered: vec![0; nodes],
            audit_every: audit_cadence(),
        })
    }

    /// Builds the simulation with a fault plan installed on the network and
    /// (when the scheme has one) the controller's side-band.
    ///
    /// A quiet plan leaves every fault-free fast path untouched, so the run
    /// is bit-identical to [`Simulation::new`] with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid parameters, including a fault plan
    /// that names nodes or ports outside the configured topology
    /// ([`SimError::Faults`]).
    pub fn with_faults(cfg: SimConfig, plan: FaultPlan) -> Result<Self, SimError> {
        let mut sim = Simulation::new(cfg)?;
        sim.net.install_faults(plan.clone())?;
        sim.ctl.set_faults(plan.clone());
        sim.faults = Some(plan);
        Ok(sim)
    }

    /// Advances one cycle and folds deliveries into the statistics.
    ///
    /// Draining the network's delivery queue *every* step is what bounds a
    /// long (guarded or not) run's memory at the per-cycle delivery
    /// high-water mark instead of the whole run's delivery count: the
    /// network buffers undrained records in a ring that only grows while a
    /// consumer lets them pile up.
    pub fn step(&mut self) {
        let now = self.net.now();
        if !self.warmup_snapped && now >= self.cfg.warmup {
            let c = self.net.counters();
            self.base_delivered_flits = c.delivered_flits;
            self.base_delivered_packets = c.delivered_packets;
            self.base_recovered = c.recovered_packets;
            self.base_throttled = c.throttled_injections;
            self.warmup_snapped = true;
        }
        let runner = &mut self.runner;
        self.net
            .cycle(&mut |t, node| runner.poll(t, node), &mut self.ctl);
        let warmup = self.cfg.warmup;
        for rec in self.net.drain_deliveries() {
            if rec.generated_at >= warmup {
                self.net_latency.record(rec.network_latency());
                self.total_latency.record(rec.total_latency());
                self.src_delivered[rec.src] += 1;
            }
        }
        if let Some(every) = self.audit_every {
            if self.net.now().is_multiple_of(every) {
                let report = self.net.audit();
                assert!(report.is_clean(), "{report}");
            }
        }
    }

    /// The cycle a quiescence fast-forward may jump to, if any.
    ///
    /// A jump is legal only when every party certifies the skipped cycles
    /// are no-ops: the network is quiescent (nothing buffered, queued or
    /// recovering — so every pipeline stage would do nothing), the
    /// workload's next effective poll is in the future
    /// ([`WorkloadRunner::next_arrival`]; Bernoulli workloads return `now`
    /// and never skip, because polling consumes RNG state), and the
    /// controller does not need its per-cycle hook
    /// ([`wormsim::CongestionControl::next_wakeup`]; the side-band schemes
    /// keep the conservative default). The jump is additionally clamped to
    /// the warm-up boundary and the end of the run, so the skipped window
    /// never straddles a measurement edge. Skipping is therefore
    /// *cycle-exact*: the post-jump state is bit-identical to stepping.
    fn fast_forward_target(&self) -> Option<u64> {
        if !self.net.quiescent() {
            return None;
        }
        let now = self.net.now();
        let mut target = self
            .cfg
            .cycles
            .min(self.runner.next_arrival(now))
            .min(self.ctl.next_wakeup(now));
        if !self.warmup_snapped {
            target = target.min(self.cfg.warmup);
        }
        (target > now).then_some(target)
    }

    /// Runs until `cfg.cycles` cycles have elapsed, fast-forwarding over
    /// provably empty stretches (see [`Simulation::fast_forward_target`]).
    pub fn run_to_end(&mut self) {
        while self.net.now() < self.cfg.cycles {
            if let Some(to) = self.fast_forward_target() {
                self.net.fast_forward(to);
                continue;
            }
            self.step();
        }
    }

    /// Runs until `cfg.cycles` cycles have elapsed, or until `guard`
    /// declares a livelock or an exhausted budget.
    ///
    /// A guarded run that completes is bit-identical to
    /// [`Simulation::run_to_end`]: the guard only observes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] (with a [`LivelockDiag`]) when live
    /// packets exist but no flit has moved for the guard's window, or
    /// [`SimError::DeadlineExceeded`] when the cycle budget or wall-clock
    /// deadline runs out first.
    pub fn run_to_end_guarded(&mut self, guard: &RunGuard) -> Result<(), SimError> {
        let mut stepped: u64 = 0;
        while self.net.now() < self.cfg.cycles {
            if let Some(max) = guard.max_cycles {
                if stepped >= max {
                    return Err(SimError::DeadlineExceeded {
                        at_cycle: self.net.now(),
                        kind: BudgetKind::Cycles,
                    });
                }
            }
            if let Some(deadline) = guard.deadline {
                if stepped.is_multiple_of(1024) && Instant::now() >= deadline {
                    return Err(SimError::DeadlineExceeded {
                        at_cycle: self.net.now(),
                        kind: BudgetKind::WallClock,
                    });
                }
            }
            if let Some(to) = self.fast_forward_target() {
                // Skipped cycles still count against the cycle budget (the
                // guard limits simulated time, not work performed), and a
                // quiescent network cannot be livelocked, so the guard
                // checks below stay equivalent to stepping.
                stepped = stepped.saturating_add(to - self.net.now());
                self.net.fast_forward(to);
                continue;
            }
            self.step();
            stepped += 1;
            if let Some(window) = guard.livelock_window {
                if self.net.livelocked(window) {
                    return Err(SimError::Livelock(self.livelock_diag(window)));
                }
            }
        }
        Ok(())
    }

    fn livelock_diag(&self, window: u64) -> LivelockDiag {
        LivelockDiag {
            cycle: self.net.now(),
            window,
            live_packets: self.net.live_packets(),
            full_buffers: self.net.full_buffer_count(),
            token_queue: self.net.token_queue_len(),
            recovery_active: self.net.recovery_active(),
            last_progress_at: self.net.last_progress_at(),
            last_delivery_at: self.net.last_delivery_at(),
            delivered_packets: self.net.counters().delivered_packets,
        }
    }

    fn fingerprint(cfg: &SimConfig, faults: Option<&FaultPlan>) -> u64 {
        checkpoint::fnv1a64(format!("{cfg:?}|{faults:?}").as_bytes())
    }

    /// Serializes the complete simulation state — network, workload,
    /// controller and statistics — into a self-validating byte container.
    ///
    /// The container is fingerprinted against the configuration (and fault
    /// plan), so it can only be restored by [`Simulation::restore`] with the
    /// exact same [`SimConfig`] and faults. Restoring and running to the end
    /// is bit-identical to never having checkpointed at all.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        // When auditing is on, a checkpoint boundary is always audited: a
        // snapshot of a desynced network would poison every later resume.
        if self.audit_every.is_some() {
            let report = self.net.audit();
            assert!(report.is_clean(), "pre-checkpoint {report}");
        }
        let mut enc = checkpoint::Enc::new();
        self.net.save_state(&mut enc);
        self.runner.save_state(&mut enc);
        self.ctl.save_state(&mut enc);
        self.net_latency.save_state(&mut enc);
        self.total_latency.save_state(&mut enc);
        enc.u64(self.base_delivered_flits);
        enc.u64(self.base_delivered_packets);
        enc.u64(self.base_recovered);
        enc.u64(self.base_throttled);
        enc.bool(self.warmup_snapped);
        // Fixed length (one count per node): restore knows it from the
        // rebuilt topology, so no length prefix is needed.
        for &v in &self.src_delivered {
            enc.u64(v);
        }
        checkpoint::seal(
            Self::fingerprint(&self.cfg, self.faults.as_ref()),
            &enc.into_vec(),
        )
    }

    /// Rebuilds a simulation from `cfg` (+ optional fault plan) and restores
    /// the state captured by [`Simulation::checkpoint`] on an identically
    /// configured run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the container is damaged,
    /// truncated, from a different configuration
    /// ([`CheckpointError::ConfigMismatch`]) or structurally inconsistent
    /// with the rebuilt network; all the [`Simulation::new`] /
    /// [`Simulation::with_faults`] errors apply too.
    pub fn restore(
        cfg: SimConfig,
        faults: Option<FaultPlan>,
        bytes: &[u8],
    ) -> Result<Self, SimError> {
        let mut sim = match faults {
            Some(plan) => Simulation::with_faults(cfg, plan)?,
            None => Simulation::new(cfg)?,
        };
        let payload = checkpoint::open(bytes, Self::fingerprint(&sim.cfg, sim.faults.as_ref()))?;
        let mut dec = checkpoint::Dec::new(payload);
        sim.net.restore_state(&mut dec)?;
        sim.runner.restore_state(&mut dec)?;
        sim.ctl.restore_state(&mut dec)?;
        sim.net_latency = LatencyStats::restore_state(&mut dec)?;
        sim.total_latency = LatencyStats::restore_state(&mut dec)?;
        sim.base_delivered_flits = dec.u64()?;
        sim.base_delivered_packets = dec.u64()?;
        sim.base_recovered = dec.u64()?;
        sim.base_throttled = dec.u64()?;
        sim.warmup_snapped = dec.bool()?;
        for v in &mut sim.src_delivered {
            *v = dec.u64()?;
        }
        dec.finish()?;
        // A restore boundary is always audited, flag or no flag: the codec
        // validates structure (counts, tags, ranges) but only the invariant
        // audit catches a payload that decodes cleanly into a state the
        // simulator could never have reached.
        let report = sim.net.audit();
        if !report.is_clean() {
            return Err(SimError::Audit(report));
        }
        Ok(sim)
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Runs one full invariant audit over the network (see
    /// [`wormsim::AuditReport`]). Read-only; call between steps.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        self.net.audit()
    }

    /// Overrides the `STCC_AUDIT` cadence: audit every `every` cycles
    /// during [`Simulation::step`] and at every checkpoint (`None` = off).
    /// A cadence audit failure panics — the simulator found itself in a
    /// state it can't explain, and nothing downstream is trustworthy.
    pub fn set_audit_every(&mut self, every: Option<u64>) {
        self.audit_every = every;
    }

    /// The active audit cadence, if any.
    #[must_use]
    pub fn audit_every(&self) -> Option<u64> {
        self.audit_every
    }

    /// Overrides the `STCC_SHARDS` step-loop shard count (clamped to
    /// `[1, nodes]` by the network). Results are bit-identical for any
    /// value; call between steps.
    pub fn set_shards(&mut self, shards: usize) {
        self.net.set_shards(shards);
    }

    /// The active step-loop shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.net.shards()
    }

    /// Toggles per-cycle phase timing (decide / apply / barrier wall time,
    /// accumulated across route and switch passes). Observability only:
    /// simulated state is unaffected. Enabling resets the accumulators.
    pub fn set_phase_stats(&mut self, enabled: bool) {
        self.net.set_phase_stats(enabled);
    }

    /// The accumulated phase timings, if [`Simulation::set_phase_stats`]
    /// is on.
    #[must_use]
    pub fn phase_stats(&self) -> Option<PhaseStats> {
        self.net.phase_stats()
    }

    /// Read access to the network (counters, census, topology).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The configuration this simulation was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The self-tuned controller, when the scheme is [`Scheme::Tuned`]
    /// (lets experiments sample the threshold over time, as in Figure 4).
    #[must_use]
    pub fn tuned(&self) -> Option<&SelfTuned> {
        self.ctl.as_tuned()
    }

    /// Fault and degradation counters accumulated so far (all zero when no
    /// faults are installed).
    #[must_use]
    pub fn fault_report(&self) -> FaultReport {
        let c = self.net.counters();
        let counters = Controller::counters(&self.ctl);
        FaultReport {
            sideband: self.ctl.sideband_stats(),
            watchdog_trips: counters.watchdog_trips,
            watchdog_rearms: counters.watchdog_rearms,
            watchdog_active: Controller::watchdog_active(&self.ctl),
            controller: counters,
            link_stall_cycles: c.link_stall_cycles,
            hotspot_stall_cycles: c.hotspot_stall_cycles,
        }
    }

    /// The controller's typed decision/watchdog counters (uniform across
    /// every scheme in the zoo; all zero for `Base`).
    #[must_use]
    pub fn controller_counters(&self) -> crate::ControllerCounters {
        Controller::counters(&self.ctl)
    }

    /// Trait-object-free access to the controller, for scheme-agnostic
    /// inspection (threshold, throttling, side-band, watchdog).
    #[must_use]
    pub fn controller(&self) -> &Control {
        &self.ctl
    }

    /// Summary over the measured window. Meaningful once the run is past
    /// warm-up; normally called after [`Simulation::run_to_end`].
    ///
    /// # Errors
    ///
    /// Returns [`SummaryError::BeforeWarmup`] if called before the warm-up
    /// window has elapsed.
    pub fn summary(&self) -> Result<RunSummary, SummaryError> {
        if !self.warmup_snapped {
            return Err(SummaryError::BeforeWarmup {
                now: self.net.now(),
                warmup: self.cfg.warmup,
            });
        }
        let c = self.net.counters();
        let measured_cycles = self.net.now() - self.cfg.warmup;
        // Mean offered rate over the measured window, integrated exactly
        // over phase boundaries (sampling every k-th cycle mis-weights
        // windows that are short or not a multiple of the stride).
        let offered = self
            .cfg
            .workload
            .mean_offered_rate(self.cfg.warmup, self.net.now());
        Ok(RunSummary {
            measured_cycles,
            nodes: self.net.torus().node_count(),
            packet_len: self.cfg.net.packet_len,
            offered_rate: offered,
            delivered_flits: c.delivered_flits - self.base_delivered_flits,
            delivered_packets: c.delivered_packets - self.base_delivered_packets,
            network_latency: self.net_latency.clone(),
            total_latency: self.total_latency.clone(),
            recovered_packets: c.recovered_packets - self.base_recovered,
            throttled_injections: c.throttled_injections - self.base_throttled,
            fairness: simstats::jain_fairness(&self.src_delivered),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{Pattern, Process};
    use wormsim::DeadlockMode;

    fn quick(scheme: Scheme, rate: f64, deadlock: DeadlockMode) -> RunSummary {
        let cfg = SimConfig {
            net: NetConfig::small(deadlock),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
            scheme,
            cycles: 12_000,
            warmup: 2_000,
            seed: 7,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        sim.summary().unwrap()
    }

    #[test]
    fn summary_before_warmup_is_an_error() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
            scheme: Scheme::Base,
            cycles: 10_000,
            warmup: 2_000,
            seed: 0,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        for _ in 0..100 {
            sim.step();
        }
        assert!(matches!(
            sim.summary(),
            Err(SummaryError::BeforeWarmup { warmup: 2_000, .. })
        ));
        sim.run_to_end();
        assert!(sim.summary().is_ok());
    }

    #[test]
    fn offered_rate_is_exact_for_odd_windows() {
        // Measured window of 10 000 - 2 000 = 8 000 cycles on a steady
        // workload: the reported offered rate must equal the configured
        // rate exactly, regardless of window length or stride artifacts.
        let s = quick(Scheme::Base, 0.013, DeadlockMode::Avoidance);
        assert!(
            (s.offered_rate - 0.013).abs() < 1e-12,
            "offered rate {} drifted from configured 0.013",
            s.offered_rate
        );
    }

    #[test]
    fn light_load_delivers_everything_offered() {
        for deadlock in [DeadlockMode::Avoidance, DeadlockMode::PAPER_RECOVERY] {
            let s = quick(Scheme::Base, 0.002, deadlock);
            assert!(
                s.acceptance() > 0.9,
                "acceptance {} too low under light load ({deadlock:?})",
                s.acceptance()
            );
            assert!(s.recovered_packets == 0 || matches!(deadlock, DeadlockMode::Recovery { .. }));
        }
    }

    #[test]
    fn latency_reasonable_at_low_load() {
        let s = quick(Scheme::Base, 0.001, DeadlockMode::Avoidance);
        let mean = s.network_latency.mean().unwrap();
        // 8-ary 2-cube: avg distance ~4 hops, ~3 cycles/hop + 15 cycles of
        // body flits + delivery; far under 100 at zero contention.
        assert!((15.0..100.0).contains(&mean), "zero-load latency {mean}");
    }

    #[test]
    fn tuned_scheme_runs_and_exposes_threshold() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.02)),
            scheme: Scheme::tuned_paper(),
            cycles: 5_000,
            warmup: 1_000,
            seed: 3,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        let t = sim.tuned().expect("tuned scheme");
        assert!(t.threshold().unwrap() > 0.0);
        assert!(t.tune_events() > 10);
    }

    #[test]
    fn warmup_must_be_shorter_than_run() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
            scheme: Scheme::Base,
            cycles: 100,
            warmup: 100,
            seed: 0,
        };
        assert!(matches!(
            Simulation::new(cfg),
            Err(SimError::WarmupTooLong { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        let b = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        assert_eq!(a.delivered_flits, b.delivered_flits);
        assert_eq!(a.network_latency.mean(), b.network_latency.mean());
    }

    // -- quiescence fast-forward --

    use traffic::Phase;

    /// On an avoidance network (no timer wheel) the fast-forwarded run
    /// must be *byte-identical* to the stepped run: the skipped cycles are
    /// provable no-ops.
    #[test]
    fn fast_forward_is_cycle_exact() {
        let wl = Workload::phased(vec![
            Phase {
                duration: 3_000,
                pattern: Pattern::UniformRandom,
                process: Process::Silent,
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::periodic(700),
            },
        ]);
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: wl,
            scheme: Scheme::Base,
            cycles: 30_000,
            warmup: 1_000,
            seed: 5,
        };
        let mut ff = Simulation::new(cfg.clone()).unwrap();
        // Cycle 0 of the silent opening phase is skippable (up to the
        // warm-up boundary) — the test is not vacuous.
        assert_eq!(ff.fast_forward_target(), Some(1_000));
        ff.run_to_end();
        let mut stepped = Simulation::new(cfg).unwrap();
        while stepped.now() < 30_000 {
            stepped.step();
        }
        assert_eq!(ff.checkpoint(), stepped.checkpoint());
        let s = ff.summary().unwrap();
        assert!(s.delivered_flits > 0, "vacuous: nothing was delivered");
        assert_eq!(
            s.delivered_flits,
            stepped.summary().unwrap().delivered_flits
        );
    }

    /// In recovery mode a stepped run performs timer-wheel bookkeeping
    /// during idle scan cycles that a fast-forwarded run provably skips
    /// (stale entries are dropped lazily), so the comparison is scoped to
    /// the observables: deliveries, latencies and every counter except the
    /// wheel's evaluation count.
    #[test]
    fn fast_forward_matches_stepping_under_recovery_mode() {
        let wl = Workload::phased(vec![
            Phase {
                duration: 2_000,
                pattern: Pattern::UniformRandom,
                process: Process::periodic(40),
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::Silent,
            },
        ]);
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
            workload: wl,
            scheme: Scheme::Alo,
            cycles: 40_000,
            warmup: 500,
            seed: 9,
        };
        let mut ff = Simulation::new(cfg.clone()).unwrap();
        ff.run_to_end();
        let mut st = Simulation::new(cfg).unwrap();
        while st.now() < 40_000 {
            st.step();
        }
        let (a, b) = (ff.summary().unwrap(), st.summary().unwrap());
        assert!(a.delivered_flits > 0, "vacuous: nothing was delivered");
        assert_eq!(a.delivered_flits, b.delivered_flits);
        assert_eq!(a.network_latency.mean(), b.network_latency.mean());
        assert_eq!(a.total_latency.mean(), b.total_latency.mean());
        let mut ca = *ff.network().counters();
        let mut cb = *st.network().counters();
        ca.stage_starvation_checks = 0;
        cb.stage_starvation_checks = 0;
        assert_eq!(ca, cb);
    }

    /// The guard only observes; with fast-forward in both paths a guarded
    /// run over a skippable workload still matches the unguarded one.
    #[test]
    fn guarded_fast_forward_matches_unguarded() {
        let wl = Workload::phased(vec![
            Phase {
                duration: 1_000,
                pattern: Pattern::UniformRandom,
                process: Process::periodic(200),
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::Silent,
            },
        ]);
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: wl,
            scheme: Scheme::Base,
            cycles: 50_000,
            warmup: 100,
            seed: 3,
        };
        let mut a = Simulation::new(cfg.clone()).unwrap();
        a.run_to_end();
        let mut b = Simulation::new(cfg).unwrap();
        b.run_to_end_guarded(&RunGuard::default()).unwrap();
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    // -- checkpoint/restore --

    use crate::TuneConfig;
    use faults::{HotspotFault, SidebandFaults};
    use sideband::SidebandConfig;

    /// A saturating tuned run on the small recovery network: exercises the
    /// side-band, the tuner, Disha recovery and the latency statistics all
    /// at once — everything a checkpoint must capture.
    fn ckpt_cfg(rate: f64) -> SimConfig {
        SimConfig {
            net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
            scheme: Scheme::Tuned(TuneConfig {
                sideband: SidebandConfig {
                    radix: 8,
                    ..SidebandConfig::paper()
                },
                ..TuneConfig::paper()
            }),
            cycles: 8_000,
            warmup: 2_000,
            seed: 11,
        }
    }

    fn step_to(sim: &mut Simulation, cycle: u64) {
        while sim.now() < cycle {
            sim.step();
        }
    }

    /// The golden property: snapshot at cycle `C` + restore + run to the end
    /// must be bit-for-bit identical to the uninterrupted run — proven by
    /// comparing final checkpoints, which cover every byte of state.
    #[test]
    fn checkpoint_restore_resume_is_bit_identical() {
        let cfg = ckpt_cfg(0.10);
        let mut golden = Simulation::new(cfg.clone()).unwrap();
        golden.run_to_end();
        let golden_end = golden.checkpoint();
        let golden_summary = golden.summary().unwrap();

        // 1 001 and 3 333 fall mid-gather (not multiples of the 32-cycle
        // gather period); 2 000 is the warm-up boundary itself.
        for c in [500u64, 1_001, 2_000, 3_333] {
            let mut sim = Simulation::new(cfg.clone()).unwrap();
            step_to(&mut sim, c);
            let snap = sim.checkpoint();
            drop(sim);
            let mut resumed = Simulation::restore(cfg.clone(), None, &snap).unwrap();
            assert_eq!(resumed.now(), c, "restore resumes at the snapped cycle");
            resumed.run_to_end();
            assert_eq!(
                resumed.checkpoint(),
                golden_end,
                "resume from cycle {c} diverged from the uninterrupted run"
            );
            let s = resumed.summary().unwrap();
            assert_eq!(s.delivered_flits, golden_summary.delivered_flits);
            assert_eq!(
                s.network_latency.mean(),
                golden_summary.network_latency.mean()
            );
        }
    }

    /// Checkpoints are shard-agnostic: a snapshot taken while stepping at
    /// S shards restores at any S′, audits clean, re-serializes to the
    /// same bytes, and resumes to a final state bit-identical to the
    /// unsharded uninterrupted run. The shard plan is runtime
    /// configuration, never state — this pins that.
    #[test]
    fn checkpoint_crosses_shard_counts() {
        let cfg = ckpt_cfg(0.10);
        let mut golden = Simulation::new(cfg.clone()).unwrap();
        golden.run_to_end();
        let golden_end = golden.checkpoint();

        let mut sharded = Simulation::new(cfg.clone()).unwrap();
        sharded.set_shards(3);
        step_to(&mut sharded, 2_500);
        let snap = sharded.checkpoint();

        for restore_shards in [1usize, 2, 4] {
            let mut resumed = Simulation::restore(cfg.clone(), None, &snap).unwrap();
            resumed.set_shards(restore_shards);
            assert!(
                resumed.audit().is_clean(),
                "restore at {restore_shards} shards audits dirty"
            );
            assert_eq!(
                resumed.checkpoint(),
                snap,
                "re-serialize at {restore_shards} shards changed bytes"
            );
            resumed.run_to_end();
            assert_eq!(
                resumed.checkpoint(),
                golden_end,
                "resume at {restore_shards} shards diverged"
            );
        }
    }

    /// Same property with the snapshot taken *mid-recovery*: a Disha drain
    /// holds the token and a partially drained packet sits in the deadlock
    /// buffers at the moment of capture.
    #[test]
    fn checkpoint_mid_recovery_is_bit_identical() {
        let cfg = ckpt_cfg(0.14);
        let mut sim = Simulation::new(cfg.clone()).unwrap();
        while !sim.network().recovery_active() && sim.now() < cfg.cycles - 1 {
            sim.step();
        }
        assert!(
            sim.network().recovery_active(),
            "rate 0.14 must wedge the small recovery network at least once"
        );
        let c = sim.now();
        let snap = sim.checkpoint();
        sim.run_to_end();
        let golden_end = sim.checkpoint();

        let mut resumed = Simulation::restore(cfg, None, &snap).unwrap();
        assert!(resumed.network().recovery_active());
        resumed.run_to_end();
        assert_eq!(
            resumed.checkpoint(),
            golden_end,
            "mid-recovery resume (cycle {c}) diverged"
        );
    }

    /// Checkpointing composes with fault plans: the fingerprint binds the
    /// plan, and a faulted run resumes bit-identically.
    #[test]
    fn checkpoint_with_faults_is_bit_identical_and_plan_bound() {
        let cfg = ckpt_cfg(0.08);
        let plan = FaultPlan::sideband_only(
            23,
            SidebandFaults {
                loss_rate: 0.3,
                ..SidebandFaults::none()
            },
        );
        let mut golden = Simulation::with_faults(cfg.clone(), plan.clone()).unwrap();
        golden.run_to_end();
        let golden_end = golden.checkpoint();

        let mut sim = Simulation::with_faults(cfg.clone(), plan.clone()).unwrap();
        step_to(&mut sim, 1_777);
        let snap = sim.checkpoint();
        let mut resumed = Simulation::restore(cfg.clone(), Some(plan), &snap).unwrap();
        resumed.run_to_end();
        assert_eq!(resumed.checkpoint(), golden_end);

        // The same bytes must not restore without the plan (or with any
        // other config): the fingerprint catches it.
        assert!(matches!(
            Simulation::restore(cfg, None, &snap),
            Err(SimError::Checkpoint(CheckpointError::ConfigMismatch { .. }))
        ));
    }

    #[test]
    fn restore_rejects_mismatched_config_and_garbage() {
        let cfg = ckpt_cfg(0.02);
        let mut sim = Simulation::new(cfg.clone()).unwrap();
        step_to(&mut sim, 100);
        let snap = sim.checkpoint();
        let other = SimConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert!(matches!(
            Simulation::restore(other, None, &snap),
            Err(SimError::Checkpoint(CheckpointError::ConfigMismatch { .. }))
        ));
        let mut bad = snap.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            Simulation::restore(cfg.clone(), None, &bad),
            Err(SimError::Checkpoint(CheckpointError::BadChecksum))
        ));
        assert!(Simulation::restore(cfg, None, &snap).is_ok());
    }

    // -- guarded runs --

    /// The guard only observes: a guarded run that completes is bit-identical
    /// to an unguarded one.
    #[test]
    fn guarded_run_is_bit_identical_when_it_completes() {
        let cfg = ckpt_cfg(0.06);
        let mut a = Simulation::new(cfg.clone()).unwrap();
        a.run_to_end();
        let mut b = Simulation::new(cfg).unwrap();
        b.run_to_end_guarded(&RunGuard::default()).unwrap();
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    /// A deliberately wedged configuration — every delivery channel stalled
    /// forever under recovery mode — must terminate with a typed livelock
    /// diagnosis, never hang.
    #[test]
    fn wedged_hotspot_terminates_with_livelock() {
        let net = NetConfig::small(DeadlockMode::PAPER_RECOVERY);
        let plan = FaultPlan {
            seed: 1,
            sideband: SidebandFaults::none(),
            links: Vec::new(),
            hotspots: (0..64)
                .map(|node| HotspotFault {
                    node,
                    start: 0,
                    end: u64::MAX,
                })
                .collect(),
        };
        let cfg = SimConfig {
            net,
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.05)),
            scheme: Scheme::Base,
            cycles: 500_000,
            warmup: 1_000,
            seed: 2,
        };
        let mut sim = Simulation::with_faults(cfg, plan).unwrap();
        let guard = RunGuard {
            livelock_window: Some(3_000),
            ..RunGuard::default()
        };
        match sim.run_to_end_guarded(&guard) {
            Err(SimError::Livelock(d)) => {
                assert!(d.live_packets > 0, "a livelock needs stuck packets");
                assert!(d.cycle.saturating_sub(d.last_progress_at) >= 3_000);
                assert!(d.cycle < 500_000, "declared long before the run's end");
                let msg = d.to_string();
                assert!(msg.contains("live packets"), "diagnostic: {msg}");
            }
            other => panic!("expected a livelock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_budget_trips_deadline() {
        let cfg = ckpt_cfg(0.02);
        let mut sim = Simulation::new(cfg).unwrap();
        let guard = RunGuard {
            max_cycles: Some(100),
            ..RunGuard::default()
        };
        assert_eq!(
            sim.run_to_end_guarded(&guard),
            Err(SimError::DeadlineExceeded {
                at_cycle: 100,
                kind: BudgetKind::Cycles
            })
        );
        assert_eq!(sim.now(), 100, "the run stops where the budget ran out");
    }

    #[test]
    fn wall_clock_deadline_trips() {
        let cfg = ckpt_cfg(0.02);
        let mut sim = Simulation::new(cfg).unwrap();
        let guard = RunGuard {
            deadline: Some(Instant::now()),
            ..RunGuard::default()
        };
        assert!(matches!(
            sim.run_to_end_guarded(&guard),
            Err(SimError::DeadlineExceeded {
                kind: BudgetKind::WallClock,
                ..
            })
        ));
    }
}
