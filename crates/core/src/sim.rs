use crate::scheme::{Control, Scheme};
use crate::SelfTuned;
use core::fmt;
use simstats::{LatencyStats, RunSummary};
use traffic::{TrafficError, Workload, WorkloadRunner};
use wormsim::{ConfigError, NetConfig, Network};

/// Everything needed to run one simulation: a network, a workload, a
/// congestion-control scheme and the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Network microarchitecture.
    pub net: NetConfig,
    /// Offered traffic.
    pub workload: Workload,
    /// Congestion-control policy.
    pub scheme: Scheme,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warm-up cycles excluded from all statistics (the paper ignores the
    /// first 100 000 of 600 000).
    pub warmup: u64,
    /// Seed for the (deterministic) traffic generator.
    pub seed: u64,
}

/// Error building a [`Simulation`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid network configuration.
    Net(ConfigError),
    /// Invalid workload.
    Traffic(TrafficError),
    /// Warm-up must be shorter than the simulation.
    WarmupTooLong {
        /// Requested warm-up.
        warmup: u64,
        /// Requested total cycles.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Net(e) => write!(f, "network configuration: {e}"),
            SimError::Traffic(e) => write!(f, "workload: {e}"),
            SimError::WarmupTooLong { warmup, cycles } => {
                write!(f, "warm-up ({warmup}) must be shorter than the run ({cycles})")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            SimError::Traffic(e) => Some(e),
            SimError::WarmupTooLong { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Net(e)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

/// A wired-up simulation: network + workload + congestion control +
/// statistics, stepped one cycle at a time (or run to completion).
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    net: Network,
    runner: WorkloadRunner,
    ctl: Control,
    // Statistics over the measured (post-warm-up) window.
    net_latency: LatencyStats,
    total_latency: LatencyStats,
    base_delivered_flits: u64,
    base_delivered_packets: u64,
    base_recovered: u64,
    base_throttled: u64,
    warmup_snapped: bool,
}

impl Simulation {
    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid network, workload or window
    /// parameters.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        if cfg.warmup >= cfg.cycles {
            return Err(SimError::WarmupTooLong {
                warmup: cfg.warmup,
                cycles: cfg.cycles,
            });
        }
        let net = Network::new(cfg.net.clone())?;
        let runner = WorkloadRunner::new(&cfg.workload, net.torus().node_count(), cfg.seed)?;
        let ctl = cfg.scheme.build();
        Ok(Simulation {
            cfg,
            net,
            runner,
            ctl,
            net_latency: LatencyStats::new(),
            total_latency: LatencyStats::new(),
            base_delivered_flits: 0,
            base_delivered_packets: 0,
            base_recovered: 0,
            base_throttled: 0,
            warmup_snapped: false,
        })
    }

    /// Advances one cycle and folds deliveries into the statistics.
    pub fn step(&mut self) {
        let now = self.net.now();
        if !self.warmup_snapped && now >= self.cfg.warmup {
            let c = self.net.counters();
            self.base_delivered_flits = c.delivered_flits;
            self.base_delivered_packets = c.delivered_packets;
            self.base_recovered = c.recovered_packets;
            self.base_throttled = c.throttled_injections;
            self.warmup_snapped = true;
        }
        let runner = &mut self.runner;
        self.net
            .cycle(&mut |t, node| runner.poll(t, node), &mut self.ctl);
        let warmup = self.cfg.warmup;
        for rec in self.net.drain_deliveries() {
            if rec.generated_at >= warmup {
                self.net_latency.record(rec.network_latency());
                self.total_latency.record(rec.total_latency());
            }
        }
    }

    /// Runs until `cfg.cycles` cycles have elapsed.
    pub fn run_to_end(&mut self) {
        while self.net.now() < self.cfg.cycles {
            self.step();
        }
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Read access to the network (counters, census, topology).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The configuration this simulation was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The self-tuned controller, when the scheme is [`Scheme::Tuned`]
    /// (lets experiments sample the threshold over time, as in Figure 4).
    #[must_use]
    pub fn tuned(&self) -> Option<&SelfTuned> {
        self.ctl.as_tuned()
    }

    /// Summary over the measured window. Meaningful once the run is past
    /// warm-up; normally called after [`Simulation::run_to_end`].
    ///
    /// # Panics
    ///
    /// Panics if called before the warm-up window has elapsed.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        assert!(
            self.warmup_snapped,
            "summary requested before the warm-up window elapsed"
        );
        let c = self.net.counters();
        let measured_cycles = self.net.now() - self.cfg.warmup;
        // Mean offered rate over the measured window (phases may vary).
        let mut offered = 0.0;
        let wl = &self.cfg.workload;
        for t in (self.cfg.warmup..self.net.now()).step_by(256) {
            offered += wl.offered_rate_at(t);
        }
        offered /= (measured_cycles as f64 / 256.0).max(1.0);
        RunSummary {
            measured_cycles,
            nodes: self.net.torus().node_count(),
            packet_len: self.cfg.net.packet_len,
            offered_rate: offered,
            delivered_flits: c.delivered_flits - self.base_delivered_flits,
            delivered_packets: c.delivered_packets - self.base_delivered_packets,
            network_latency: self.net_latency.clone(),
            total_latency: self.total_latency.clone(),
            recovered_packets: c.recovered_packets - self.base_recovered,
            throttled_injections: c.throttled_injections - self.base_throttled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{Pattern, Process};
    use wormsim::DeadlockMode;

    fn quick(scheme: Scheme, rate: f64, deadlock: DeadlockMode) -> RunSummary {
        let cfg = SimConfig {
            net: NetConfig::small(deadlock),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
            scheme,
            cycles: 12_000,
            warmup: 2_000,
            seed: 7,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        sim.summary()
    }

    #[test]
    fn light_load_delivers_everything_offered() {
        for deadlock in [DeadlockMode::Avoidance, DeadlockMode::PAPER_RECOVERY] {
            let s = quick(Scheme::Base, 0.002, deadlock);
            assert!(
                s.acceptance() > 0.9,
                "acceptance {} too low under light load ({deadlock:?})",
                s.acceptance()
            );
            assert!(s.recovered_packets == 0 || matches!(deadlock, DeadlockMode::Recovery { .. }));
        }
    }

    #[test]
    fn latency_reasonable_at_low_load() {
        let s = quick(Scheme::Base, 0.001, DeadlockMode::Avoidance);
        let mean = s.network_latency.mean().unwrap();
        // 8-ary 2-cube: avg distance ~4 hops, ~3 cycles/hop + 15 cycles of
        // body flits + delivery; far under 100 at zero contention.
        assert!((15.0..100.0).contains(&mean), "zero-load latency {mean}");
    }

    #[test]
    fn tuned_scheme_runs_and_exposes_threshold() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.02)),
            scheme: Scheme::tuned_paper(),
            cycles: 5_000,
            warmup: 1_000,
            seed: 3,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        let t = sim.tuned().expect("tuned scheme");
        assert!(t.threshold().unwrap() > 0.0);
        assert!(t.tune_events() > 10);
    }

    #[test]
    fn warmup_must_be_shorter_than_run() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
            scheme: Scheme::Base,
            cycles: 100,
            warmup: 100,
            seed: 0,
        };
        assert!(matches!(
            Simulation::new(cfg),
            Err(SimError::WarmupTooLong { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        let b = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        assert_eq!(a.delivered_flits, b.delivered_flits);
        assert_eq!(a.network_latency.mean(), b.network_latency.mean());
    }
}
