use crate::scheme::{Control, Scheme};
use crate::SelfTuned;
use core::fmt;
use faults::{FaultPlan, FaultPlanError};
use sideband::SidebandStats;
use simstats::{LatencyStats, RunSummary};
use traffic::{TrafficError, Workload, WorkloadRunner};
use wormsim::{ConfigError, NetConfig, Network};

/// Everything needed to run one simulation: a network, a workload, a
/// congestion-control scheme and the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Network microarchitecture.
    pub net: NetConfig,
    /// Offered traffic.
    pub workload: Workload,
    /// Congestion-control policy.
    pub scheme: Scheme,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warm-up cycles excluded from all statistics (the paper ignores the
    /// first 100 000 of 600 000).
    pub warmup: u64,
    /// Seed for the (deterministic) traffic generator.
    pub seed: u64,
}

/// Error building a [`Simulation`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid network configuration.
    Net(ConfigError),
    /// Invalid workload.
    Traffic(TrafficError),
    /// Warm-up must be shorter than the simulation.
    WarmupTooLong {
        /// Requested warm-up.
        warmup: u64,
        /// Requested total cycles.
        cycles: u64,
    },
    /// Invalid fault plan (only from [`Simulation::with_faults`]).
    Faults(FaultPlanError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Net(e) => write!(f, "network configuration: {e}"),
            SimError::Traffic(e) => write!(f, "workload: {e}"),
            SimError::WarmupTooLong { warmup, cycles } => {
                write!(
                    f,
                    "warm-up ({warmup}) must be shorter than the run ({cycles})"
                )
            }
            SimError::Faults(e) => write!(f, "fault plan: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            SimError::Traffic(e) => Some(e),
            SimError::WarmupTooLong { .. } => None,
            SimError::Faults(e) => Some(e),
        }
    }
}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::Faults(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Net(e)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

/// Error producing a [`RunSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryError {
    /// The run has not yet reached the end of its warm-up window, so there
    /// is no measured window to summarize.
    BeforeWarmup {
        /// Current simulation cycle.
        now: u64,
        /// Configured warm-up length.
        warmup: u64,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::BeforeWarmup { now, warmup } => write!(
                f,
                "summary requested at cycle {now}, before the warm-up window ({warmup} cycles) elapsed"
            ),
        }
    }
}

impl std::error::Error for SummaryError {}

/// Fault-injection and degradation counters of one run, aggregated across
/// the network and the controller. All zero when no fault plan is installed
/// (and for fault-free plans).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Side-band loss/delay/corruption/rejection counters, when the scheme
    /// has a side-band (`None` for `Base` and `Alo`).
    pub sideband: Option<SidebandStats>,
    /// Times the self-tuner's staleness watchdog tripped (froze tuning).
    pub watchdog_trips: u64,
    /// Times a valid aggregate re-armed the tripped watchdog.
    pub watchdog_rearms: u64,
    /// Whether the watchdog is tripped right now.
    pub watchdog_active: bool,
    /// Cycles flits stalled on faulted network links.
    pub link_stall_cycles: u64,
    /// Cycles flits stalled on hotspot-faulted delivery channels.
    pub hotspot_stall_cycles: u64,
}

impl FaultReport {
    /// True when no fault or degradation event was observed at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.sideband.unwrap_or_default() == SidebandStats::default()
            && self.watchdog_trips == 0
            && self.watchdog_rearms == 0
            && !self.watchdog_active
            && self.link_stall_cycles == 0
            && self.hotspot_stall_cycles == 0
    }
}

/// A wired-up simulation: network + workload + congestion control +
/// statistics, stepped one cycle at a time (or run to completion).
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    net: Network,
    runner: WorkloadRunner,
    ctl: Control,
    // Statistics over the measured (post-warm-up) window.
    net_latency: LatencyStats,
    total_latency: LatencyStats,
    base_delivered_flits: u64,
    base_delivered_packets: u64,
    base_recovered: u64,
    base_throttled: u64,
    warmup_snapped: bool,
}

impl Simulation {
    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid network, workload or window
    /// parameters.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        if cfg.warmup >= cfg.cycles {
            return Err(SimError::WarmupTooLong {
                warmup: cfg.warmup,
                cycles: cfg.cycles,
            });
        }
        let net = Network::new(cfg.net.clone())?;
        let runner = WorkloadRunner::new(&cfg.workload, net.torus().node_count(), cfg.seed)?;
        let ctl = cfg.scheme.build();
        Ok(Simulation {
            cfg,
            net,
            runner,
            ctl,
            net_latency: LatencyStats::new(),
            total_latency: LatencyStats::new(),
            base_delivered_flits: 0,
            base_delivered_packets: 0,
            base_recovered: 0,
            base_throttled: 0,
            warmup_snapped: false,
        })
    }

    /// Builds the simulation with a fault plan installed on the network and
    /// (when the scheme has one) the controller's side-band.
    ///
    /// A quiet plan leaves every fault-free fast path untouched, so the run
    /// is bit-identical to [`Simulation::new`] with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid parameters, including a fault plan
    /// that names nodes or ports outside the configured topology
    /// ([`SimError::Faults`]).
    pub fn with_faults(cfg: SimConfig, plan: FaultPlan) -> Result<Self, SimError> {
        let mut sim = Simulation::new(cfg)?;
        sim.net.install_faults(plan.clone())?;
        sim.ctl.set_faults(plan);
        Ok(sim)
    }

    /// Advances one cycle and folds deliveries into the statistics.
    pub fn step(&mut self) {
        let now = self.net.now();
        if !self.warmup_snapped && now >= self.cfg.warmup {
            let c = self.net.counters();
            self.base_delivered_flits = c.delivered_flits;
            self.base_delivered_packets = c.delivered_packets;
            self.base_recovered = c.recovered_packets;
            self.base_throttled = c.throttled_injections;
            self.warmup_snapped = true;
        }
        let runner = &mut self.runner;
        self.net
            .cycle(&mut |t, node| runner.poll(t, node), &mut self.ctl);
        let warmup = self.cfg.warmup;
        for rec in self.net.drain_deliveries() {
            if rec.generated_at >= warmup {
                self.net_latency.record(rec.network_latency());
                self.total_latency.record(rec.total_latency());
            }
        }
    }

    /// Runs until `cfg.cycles` cycles have elapsed.
    pub fn run_to_end(&mut self) {
        while self.net.now() < self.cfg.cycles {
            self.step();
        }
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Read access to the network (counters, census, topology).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The configuration this simulation was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The self-tuned controller, when the scheme is [`Scheme::Tuned`]
    /// (lets experiments sample the threshold over time, as in Figure 4).
    #[must_use]
    pub fn tuned(&self) -> Option<&SelfTuned> {
        self.ctl.as_tuned()
    }

    /// Fault and degradation counters accumulated so far (all zero when no
    /// faults are installed).
    #[must_use]
    pub fn fault_report(&self) -> FaultReport {
        let c = self.net.counters();
        let tuned = self.ctl.as_tuned();
        FaultReport {
            sideband: self.ctl.sideband_stats(),
            watchdog_trips: tuned.map_or(0, SelfTuned::watchdog_trips),
            watchdog_rearms: tuned.map_or(0, SelfTuned::watchdog_rearms),
            watchdog_active: tuned.is_some_and(SelfTuned::watchdog_active),
            link_stall_cycles: c.link_stall_cycles,
            hotspot_stall_cycles: c.hotspot_stall_cycles,
        }
    }

    /// Summary over the measured window. Meaningful once the run is past
    /// warm-up; normally called after [`Simulation::run_to_end`].
    ///
    /// # Errors
    ///
    /// Returns [`SummaryError::BeforeWarmup`] if called before the warm-up
    /// window has elapsed.
    pub fn summary(&self) -> Result<RunSummary, SummaryError> {
        if !self.warmup_snapped {
            return Err(SummaryError::BeforeWarmup {
                now: self.net.now(),
                warmup: self.cfg.warmup,
            });
        }
        let c = self.net.counters();
        let measured_cycles = self.net.now() - self.cfg.warmup;
        // Mean offered rate over the measured window, integrated exactly
        // over phase boundaries (sampling every k-th cycle mis-weights
        // windows that are short or not a multiple of the stride).
        let offered = self
            .cfg
            .workload
            .mean_offered_rate(self.cfg.warmup, self.net.now());
        Ok(RunSummary {
            measured_cycles,
            nodes: self.net.torus().node_count(),
            packet_len: self.cfg.net.packet_len,
            offered_rate: offered,
            delivered_flits: c.delivered_flits - self.base_delivered_flits,
            delivered_packets: c.delivered_packets - self.base_delivered_packets,
            network_latency: self.net_latency.clone(),
            total_latency: self.total_latency.clone(),
            recovered_packets: c.recovered_packets - self.base_recovered,
            throttled_injections: c.throttled_injections - self.base_throttled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{Pattern, Process};
    use wormsim::DeadlockMode;

    fn quick(scheme: Scheme, rate: f64, deadlock: DeadlockMode) -> RunSummary {
        let cfg = SimConfig {
            net: NetConfig::small(deadlock),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
            scheme,
            cycles: 12_000,
            warmup: 2_000,
            seed: 7,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        sim.summary().unwrap()
    }

    #[test]
    fn summary_before_warmup_is_an_error() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
            scheme: Scheme::Base,
            cycles: 10_000,
            warmup: 2_000,
            seed: 0,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        for _ in 0..100 {
            sim.step();
        }
        assert!(matches!(
            sim.summary(),
            Err(SummaryError::BeforeWarmup { warmup: 2_000, .. })
        ));
        sim.run_to_end();
        assert!(sim.summary().is_ok());
    }

    #[test]
    fn offered_rate_is_exact_for_odd_windows() {
        // Measured window of 10 000 - 2 000 = 8 000 cycles on a steady
        // workload: the reported offered rate must equal the configured
        // rate exactly, regardless of window length or stride artifacts.
        let s = quick(Scheme::Base, 0.013, DeadlockMode::Avoidance);
        assert!(
            (s.offered_rate - 0.013).abs() < 1e-12,
            "offered rate {} drifted from configured 0.013",
            s.offered_rate
        );
    }

    #[test]
    fn light_load_delivers_everything_offered() {
        for deadlock in [DeadlockMode::Avoidance, DeadlockMode::PAPER_RECOVERY] {
            let s = quick(Scheme::Base, 0.002, deadlock);
            assert!(
                s.acceptance() > 0.9,
                "acceptance {} too low under light load ({deadlock:?})",
                s.acceptance()
            );
            assert!(s.recovered_packets == 0 || matches!(deadlock, DeadlockMode::Recovery { .. }));
        }
    }

    #[test]
    fn latency_reasonable_at_low_load() {
        let s = quick(Scheme::Base, 0.001, DeadlockMode::Avoidance);
        let mean = s.network_latency.mean().unwrap();
        // 8-ary 2-cube: avg distance ~4 hops, ~3 cycles/hop + 15 cycles of
        // body flits + delivery; far under 100 at zero contention.
        assert!((15.0..100.0).contains(&mean), "zero-load latency {mean}");
    }

    #[test]
    fn tuned_scheme_runs_and_exposes_threshold() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.02)),
            scheme: Scheme::tuned_paper(),
            cycles: 5_000,
            warmup: 1_000,
            seed: 3,
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_to_end();
        let t = sim.tuned().expect("tuned scheme");
        assert!(t.threshold().unwrap() > 0.0);
        assert!(t.tune_events() > 10);
    }

    #[test]
    fn warmup_must_be_shorter_than_run() {
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.01)),
            scheme: Scheme::Base,
            cycles: 100,
            warmup: 100,
            seed: 0,
        };
        assert!(matches!(
            Simulation::new(cfg),
            Err(SimError::WarmupTooLong { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        let b = quick(Scheme::Alo, 0.01, DeadlockMode::PAPER_RECOVERY);
        assert_eq!(a.delivered_flits, b.delivered_flits);
        assert_eq!(a.network_latency.mean(), b.network_latency.mean());
    }
}
