//! `stcc` — **S**elf-**T**uned **C**ongestion **C**ontrol for multiprocessor
//! networks, reproducing Thottethodi, Lebeck & Mukherjee (HPCA 2001).
//!
//! The paper prevents wormhole-network saturation by **source throttling**
//! driven by two mechanisms:
//!
//! 1. **Global congestion estimation** ([`SelfTuned`], backed by the
//!    [`sideband`] crate): every node learns the network-wide count of full
//!    VC buffers through a dedicated side-band, linearly extrapolates the
//!    delayed snapshots, and blocks new-packet injection while the estimate
//!    exceeds a threshold.
//! 2. **Self-tuning of that threshold** ([`TuneConfig`], [`decide`]): a
//!    hill-climbing loop evaluates the tuning decision table (Table 1) once
//!    per tuning period on global throughput feedback, plus a
//!    local-maximum-avoidance rule that restores the conditions of the best
//!    throughput seen so far and forgets a stale maximum after `r`
//!    consecutive corrections.
//!
//! Alongside the paper's scheme this crate implements its comparison
//! points: [`wormsim::NoControl`] (the `Base` curves), the locally-estimated
//! [`AloControl`] of Baydal et al., and fixed-threshold throttling
//! ([`StaticThreshold`], Figure 5), and a [`Simulation`] facade that wires a
//! network, a workload and a policy together and measures what the paper
//! plots.
//!
//! # Quick start
//!
//! ```
//! use stcc::{Scheme, SimConfig, Simulation};
//! use traffic::{Pattern, Process, Workload};
//! use wormsim::{DeadlockMode, NetConfig};
//!
//! let cfg = SimConfig {
//!     net: NetConfig::small(DeadlockMode::Avoidance),
//!     workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.005)),
//!     scheme: Scheme::tuned_paper(),
//!     cycles: 20_000,
//!     warmup: 4_000,
//!     seed: 1,
//! };
//! let mut sim = Simulation::new(cfg)?;
//! sim.run_to_end();
//! let s = sim.summary().expect("run is past warm-up");
//! assert!(s.delivered_packets > 0);
//! # Ok::<(), stcc::SimError>(())
//! ```

mod aimd;
mod alo;
mod bbr;
mod controller;
mod decbit;
mod scheme;
mod sim;
mod statik;
mod tuned;

pub use aimd::{AimdConfig, AimdControl};
pub use alo::AloControl;
pub use bbr::{bbr_phase_gain, BbrConfig, BbrControl};
pub use controller::{Controller, ControllerCounters};
pub use decbit::{DecBitConfig, DecBitControl};
pub use scheme::{Control, Scheme};
pub use sim::{
    BudgetKind, FaultReport, LivelockDiag, RunGuard, SimConfig, SimError, Simulation, SummaryError,
    DEFAULT_LIVELOCK_WINDOW,
};
pub use statik::StaticThreshold;
pub use tuned::{decide, SelfTuned, TuneAction, TuneConfig};
// The audit layer's types, so `SimError::Audit` and `Simulation::audit`
// are usable without importing `wormsim` directly.
pub use wormsim::{AuditKind, AuditReport, AuditViolation, PhaseStats};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::{Scheme, SimConfig, Simulation, TuneConfig};
    pub use traffic::{Pattern, Process, Workload};
    pub use wormsim::{DeadlockMode, NetConfig};
}
