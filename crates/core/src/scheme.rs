use crate::{AloControl, SelfTuned, StaticThreshold, TuneConfig};
use faults::FaultPlan;
use sideband::{SidebandConfig, SidebandStats};
use wormsim::{CongestionControl, Network, NoControl};

/// A congestion-control scheme selector, covering every configuration the
/// paper evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// No congestion control (the paper's `Base`).
    Base,
    /// The At-Least-One local baseline.
    Alo,
    /// Globally informed throttling with a fixed threshold (Figure 5).
    Static {
        /// Threshold in full buffers.
        threshold: u32,
        /// Side-band parameters.
        sideband: SidebandConfig,
    },
    /// The paper's self-tuned scheme.
    Tuned(TuneConfig),
}

impl Scheme {
    /// The self-tuned scheme with the paper's parameters.
    #[must_use]
    pub fn tuned_paper() -> Self {
        Scheme::Tuned(TuneConfig::paper())
    }

    /// Label used in experiment tables (e.g. `static-250`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Scheme::Base => "base".to_owned(),
            Scheme::Alo => "alo".to_owned(),
            Scheme::Static { threshold, .. } => format!("static-{threshold}"),
            Scheme::Tuned(_) => "tune".to_owned(),
        }
    }

    /// Instantiates the controller.
    #[must_use]
    pub fn build(&self) -> Control {
        match self {
            Scheme::Base => Control::Base(NoControl),
            Scheme::Alo => Control::Alo(AloControl::new()),
            Scheme::Static {
                threshold,
                sideband,
            } => Control::Static(StaticThreshold::new(*threshold, sideband.clone())),
            Scheme::Tuned(cfg) => Control::Tuned(SelfTuned::new(cfg.clone())),
        }
    }
}

/// A constructed congestion controller (closed set, so simulations can still
/// reach scheme-specific state such as the self-tuner's threshold).
// One Control exists per simulation (never arrays of them), so the size
// spread between `Base` and the stateful controllers costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Control {
    /// No control.
    Base(NoControl),
    /// At-Least-One baseline.
    Alo(AloControl),
    /// Fixed global threshold.
    Static(StaticThreshold),
    /// The paper's self-tuned controller.
    Tuned(SelfTuned),
}

impl Control {
    /// The self-tuned controller, if that is what this is.
    #[must_use]
    pub fn as_tuned(&self) -> Option<&SelfTuned> {
        match self {
            Control::Tuned(t) => Some(t),
            _ => None,
        }
    }

    /// Installs a side-band fault plan. A no-op for the locally informed
    /// schemes (`Base`, `Alo`), which have no side-band to fault.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        match self {
            Control::Base(_) | Control::Alo(_) => {}
            Control::Static(c) => c.set_faults(plan),
            Control::Tuned(c) => c.set_faults(plan),
        }
    }

    /// Side-band fault/rejection counters, if this scheme has a side-band.
    #[must_use]
    pub fn sideband_stats(&self) -> Option<SidebandStats> {
        match self {
            Control::Base(_) | Control::Alo(_) => None,
            Control::Static(c) => Some(c.sideband().stats()),
            Control::Tuned(c) => Some(c.sideband().stats()),
        }
    }

    fn variant_tag(&self) -> u8 {
        match self {
            Control::Base(_) => 0,
            Control::Alo(_) => 1,
            Control::Static(_) => 2,
            Control::Tuned(_) => 3,
        }
    }

    /// Serializes the controller state into `enc` (for checkpointing). The
    /// stream records the variant so a restore into a controller built from
    /// a different [`Scheme`] fails loudly rather than silently misreading.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        enc.u8(self.variant_tag());
        match self {
            Control::Base(_) => {}
            Control::Alo(c) => c.save_state(enc),
            Control::Static(c) => c.save_state(enc),
            Control::Tuned(c) => c.save_state(enc),
        }
    }

    /// Restores state captured with [`Control::save_state`] into a controller
    /// built from the same [`Scheme`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] if the recorded variant does
    /// not match this controller or the stream is truncated/invalid.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        if dec.u8()? != self.variant_tag() {
            return Err(checkpoint::CheckpointError::Corrupt(
                "controller variant does not match the scheme",
            ));
        }
        match self {
            Control::Base(_) => Ok(()),
            Control::Alo(c) => c.restore_state(dec),
            Control::Static(c) => c.restore_state(dec),
            Control::Tuned(c) => c.restore_state(dec),
        }
    }
}

impl CongestionControl for Control {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        match self {
            Control::Base(c) => c.on_cycle(now, net),
            Control::Alo(c) => c.on_cycle(now, net),
            Control::Static(c) => c.on_cycle(now, net),
            Control::Tuned(c) => c.on_cycle(now, net),
        }
    }

    fn allow_injection(&mut self, now: u64, node: usize, dst: usize, net: &Network) -> bool {
        match self {
            Control::Base(c) => c.allow_injection(now, node, dst, net),
            Control::Alo(c) => c.allow_injection(now, node, dst, net),
            Control::Static(c) => c.allow_injection(now, node, dst, net),
            Control::Tuned(c) => c.allow_injection(now, node, dst, net),
        }
    }

    fn throttled_recently(&self) -> bool {
        match self {
            Control::Base(c) => c.throttled_recently(),
            Control::Alo(c) => c.throttled_recently(),
            Control::Static(c) => c.throttled_recently(),
            Control::Tuned(c) => c.throttled_recently(),
        }
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        match self {
            Control::Base(c) => c.next_wakeup(now),
            Control::Alo(c) => c.next_wakeup(now),
            // The side-band schemes gather/distribute on fixed per-cycle
            // pipelines, so they keep the conservative default (no skip).
            Control::Static(c) => c.next_wakeup(now),
            Control::Tuned(c) => c.next_wakeup(now),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Control::Base(c) => c.name(),
            Control::Alo(c) => c.name(),
            Control::Static(c) => c.name(),
            Control::Tuned(c) => c.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scheme::Base.label(), "base");
        assert_eq!(Scheme::Alo.label(), "alo");
        assert_eq!(
            Scheme::Static {
                threshold: 250,
                sideband: SidebandConfig::paper()
            }
            .label(),
            "static-250"
        );
        assert_eq!(Scheme::tuned_paper().label(), "tune");
    }

    #[test]
    fn build_produces_matching_controllers() {
        assert!(matches!(Scheme::Base.build(), Control::Base(_)));
        assert!(matches!(Scheme::Alo.build(), Control::Alo(_)));
        let tuned = Scheme::tuned_paper().build();
        assert!(tuned.as_tuned().is_some());
        assert_eq!(tuned.name(), "tune");
        assert!(Scheme::Base.build().as_tuned().is_none());
    }
}
