use crate::{
    AimdConfig, AimdControl, AloControl, BbrConfig, BbrControl, Controller, ControllerCounters,
    DecBitConfig, DecBitControl, SelfTuned, StaticThreshold, TuneConfig,
};
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig, SidebandStats};
use wormsim::{CongestionControl, Network, NoControl};

/// A congestion-control scheme selector: the paper's configurations plus
/// the rival controllers of the zoo.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// No congestion control (the paper's `Base`).
    Base,
    /// The At-Least-One local baseline.
    Alo,
    /// Globally informed throttling with a fixed threshold (Figure 5).
    Static {
        /// Threshold in full buffers.
        threshold: u32,
        /// Side-band parameters.
        sideband: SidebandConfig,
    },
    /// The paper's self-tuned scheme.
    Tuned(TuneConfig),
    /// Additive-increase / multiplicative-decrease on the threshold.
    Aimd(AimdConfig),
    /// DEC-bit-style windowed congestion-bit feedback.
    DecBit(DecBitConfig),
    /// BBR-flavored delivery-rate operating point.
    Bbr(BbrConfig),
}

impl Scheme {
    /// The self-tuned scheme with the paper's parameters.
    #[must_use]
    pub fn tuned_paper() -> Self {
        Scheme::Tuned(TuneConfig::paper())
    }

    /// Resolves a scheme by its registry name on the given side-band
    /// configuration: `base`, `alo`, `tune`, `aimd`, `decbit`, `bbr`, or
    /// `static-<threshold>` (e.g. `static-250`). Returns `None` for an
    /// unknown name.
    #[must_use]
    pub fn by_name(name: &str, sideband: &SidebandConfig) -> Option<Self> {
        match name {
            "base" => Some(Scheme::Base),
            "alo" => Some(Scheme::Alo),
            "tune" => Some(Scheme::Tuned(TuneConfig {
                sideband: sideband.clone(),
                ..TuneConfig::paper()
            })),
            "aimd" => Some(Scheme::Aimd(AimdConfig {
                sideband: sideband.clone(),
                ..AimdConfig::paper()
            })),
            "decbit" => Some(Scheme::DecBit(DecBitConfig {
                sideband: sideband.clone(),
                ..DecBitConfig::paper()
            })),
            "bbr" => Some(Scheme::Bbr(BbrConfig {
                sideband: sideband.clone(),
                ..BbrConfig::paper()
            })),
            _ => {
                let threshold = name.strip_prefix("static-")?.parse().ok()?;
                Some(Scheme::Static {
                    threshold,
                    sideband: sideband.clone(),
                })
            }
        }
    }

    /// The registry's adaptive-roster names (everything `by_name` resolves
    /// except the parameterized `static-<threshold>` family), in display
    /// order.
    #[must_use]
    pub fn registry_names() -> &'static [&'static str] {
        &["base", "alo", "tune", "aimd", "decbit", "bbr"]
    }

    /// Label used in experiment tables (e.g. `static-250`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Scheme::Base => "base".to_owned(),
            Scheme::Alo => "alo".to_owned(),
            Scheme::Static { threshold, .. } => format!("static-{threshold}"),
            Scheme::Tuned(_) => "tune".to_owned(),
            Scheme::Aimd(_) => "aimd".to_owned(),
            Scheme::DecBit(_) => "decbit".to_owned(),
            Scheme::Bbr(_) => "bbr".to_owned(),
        }
    }

    /// Instantiates the controller.
    #[must_use]
    pub fn build(&self) -> Control {
        match self {
            Scheme::Base => Control::Base(NoControl),
            Scheme::Alo => Control::Alo(AloControl::new()),
            Scheme::Static {
                threshold,
                sideband,
            } => Control::Static(StaticThreshold::new(*threshold, sideband.clone())),
            Scheme::Tuned(cfg) => Control::Tuned(SelfTuned::new(cfg.clone())),
            Scheme::Aimd(cfg) => Control::Aimd(AimdControl::new(cfg.clone())),
            Scheme::DecBit(cfg) => Control::DecBit(DecBitControl::new(cfg.clone())),
            Scheme::Bbr(cfg) => Control::Bbr(BbrControl::new(cfg.clone())),
        }
    }
}

/// A constructed congestion controller (closed set, so simulations can still
/// reach scheme-specific state such as the self-tuner's threshold).
// One Control exists per simulation (never arrays of them), so the size
// spread between `Base` and the stateful controllers costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Control {
    /// No control.
    Base(NoControl),
    /// At-Least-One baseline.
    Alo(AloControl),
    /// Fixed global threshold.
    Static(StaticThreshold),
    /// The paper's self-tuned controller.
    Tuned(SelfTuned),
    /// AIMD rival.
    Aimd(AimdControl),
    /// DEC-bit rival.
    DecBit(DecBitControl),
    /// BBR-flavored rival.
    Bbr(BbrControl),
}

/// Applies one expression to whichever controller this `Control` holds.
/// Every [`CongestionControl`] and [`Controller`] hook dispatches through
/// this, so registering a controller means adding one enum variant and one
/// macro arm-list entry.
macro_rules! for_each_control {
    ($self:expr, $c:pat => $body:expr) => {
        match $self {
            Control::Base($c) => $body,
            Control::Alo($c) => $body,
            Control::Static($c) => $body,
            Control::Tuned($c) => $body,
            Control::Aimd($c) => $body,
            Control::DecBit($c) => $body,
            Control::Bbr($c) => $body,
        }
    };
}

impl Control {
    /// The self-tuned controller, if that is what this is.
    #[must_use]
    pub fn as_tuned(&self) -> Option<&SelfTuned> {
        match self {
            Control::Tuned(t) => Some(t),
            _ => None,
        }
    }

    /// Installs a side-band fault plan. A no-op for the locally informed
    /// schemes (`Base`, `Alo`), which have no side-band to fault.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        for_each_control!(self, c => Controller::set_faults(c, plan));
    }

    /// Side-band fault/rejection counters, if this scheme has a side-band.
    #[must_use]
    pub fn sideband_stats(&self) -> Option<SidebandStats> {
        for_each_control!(self, c => Controller::sideband_stats(c))
    }

    fn variant_tag(&self) -> u8 {
        match self {
            Control::Base(_) => 0,
            Control::Alo(_) => 1,
            Control::Static(_) => 2,
            Control::Tuned(_) => 3,
            Control::Aimd(_) => 4,
            Control::DecBit(_) => 5,
            Control::Bbr(_) => 6,
        }
    }

    /// Serializes the controller state into `enc` (for checkpointing). The
    /// stream records the variant so a restore into a controller built from
    /// a different [`Scheme`] fails loudly rather than silently misreading.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        enc.u8(self.variant_tag());
        for_each_control!(self, c => Controller::save_state(c, enc));
    }

    /// Restores state captured with [`Control::save_state`] into a controller
    /// built from the same [`Scheme`].
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] if the recorded variant does
    /// not match this controller or the stream is truncated/invalid.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        if dec.u8()? != self.variant_tag() {
            return Err(checkpoint::CheckpointError::Corrupt(
                "controller variant does not match the scheme",
            ));
        }
        for_each_control!(self, c => Controller::restore_state(c, dec))
    }
}

impl CongestionControl for Control {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        for_each_control!(self, c => c.on_cycle(now, net));
    }

    fn allow_injection(&mut self, now: u64, node: usize, dst: usize, net: &Network) -> bool {
        for_each_control!(self, c => c.allow_injection(now, node, dst, net))
    }

    fn throttled_recently(&self) -> bool {
        for_each_control!(self, c => c.throttled_recently())
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        // The side-band schemes gather/distribute on fixed per-cycle
        // pipelines, so they keep the conservative default (no skip);
        // `Base`/`Alo` return `u64::MAX` and fast-forward freely.
        for_each_control!(self, c => c.next_wakeup(now))
    }

    fn name(&self) -> &'static str {
        for_each_control!(self, c => c.name())
    }
}

impl Controller for Control {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        for_each_control!(self, c => Controller::observe_census(c, now, census, delivered_cum));
    }

    fn throttling(&self) -> bool {
        for_each_control!(self, c => Controller::throttling(c))
    }

    fn threshold(&self) -> Option<f64> {
        for_each_control!(self, c => Controller::threshold(c))
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        Control::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        for_each_control!(self, c => Controller::sideband(c))
    }

    fn watchdog_active(&self) -> bool {
        for_each_control!(self, c => Controller::watchdog_active(c))
    }

    fn counters(&self) -> ControllerCounters {
        for_each_control!(self, c => Controller::counters(c))
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        Control::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        Control::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scheme::Base.label(), "base");
        assert_eq!(Scheme::Alo.label(), "alo");
        assert_eq!(
            Scheme::Static {
                threshold: 250,
                sideband: SidebandConfig::paper()
            }
            .label(),
            "static-250"
        );
        assert_eq!(Scheme::tuned_paper().label(), "tune");
        assert_eq!(Scheme::Aimd(AimdConfig::paper()).label(), "aimd");
        assert_eq!(Scheme::DecBit(DecBitConfig::paper()).label(), "decbit");
        assert_eq!(Scheme::Bbr(BbrConfig::paper()).label(), "bbr");
    }

    #[test]
    fn build_produces_matching_controllers() {
        assert!(matches!(Scheme::Base.build(), Control::Base(_)));
        assert!(matches!(Scheme::Alo.build(), Control::Alo(_)));
        let tuned = Scheme::tuned_paper().build();
        assert!(tuned.as_tuned().is_some());
        assert_eq!(tuned.name(), "tune");
        assert!(Scheme::Base.build().as_tuned().is_none());
        assert!(matches!(
            Scheme::Aimd(AimdConfig::paper()).build(),
            Control::Aimd(_)
        ));
        assert!(matches!(
            Scheme::DecBit(DecBitConfig::paper()).build(),
            Control::DecBit(_)
        ));
        assert!(matches!(
            Scheme::Bbr(BbrConfig::paper()).build(),
            Control::Bbr(_)
        ));
    }

    #[test]
    fn by_name_round_trips_every_registry_name() {
        let sb = SidebandConfig {
            radix: 8,
            ..SidebandConfig::paper()
        };
        for &name in Scheme::registry_names() {
            let scheme = Scheme::by_name(name, &sb)
                .unwrap_or_else(|| panic!("registry name {name} must resolve"));
            assert_eq!(scheme.label(), name);
            assert_eq!(scheme.build().name(), name);
        }
    }

    #[test]
    fn by_name_parses_static_thresholds_and_rejects_junk() {
        let sb = SidebandConfig::paper();
        assert_eq!(
            Scheme::by_name("static-250", &sb),
            Some(Scheme::Static {
                threshold: 250,
                sideband: sb.clone()
            })
        );
        assert_eq!(Scheme::by_name("static-", &sb), None);
        assert_eq!(Scheme::by_name("static-x", &sb), None);
        assert_eq!(Scheme::by_name("cubic", &sb), None);
        assert_eq!(Scheme::by_name("", &sb), None);
    }

    #[test]
    fn by_name_installs_the_given_sideband() {
        let sb = SidebandConfig {
            radix: 8,
            ..SidebandConfig::paper()
        };
        for name in ["tune", "aimd", "decbit", "bbr"] {
            let ctl = Scheme::by_name(name, &sb).unwrap().build();
            let got = Controller::sideband(&ctl)
                .unwrap_or_else(|| panic!("{name} has a side-band"))
                .config()
                .clone();
            assert_eq!(got, sb, "{name} must run on the requested side-band");
        }
    }

    /// Every variant's checkpoint stream is tagged: restoring one scheme's
    /// stream into another must fail loudly.
    #[test]
    fn cross_scheme_restore_fails_loudly() {
        let sb = SidebandConfig {
            radix: 8,
            ..SidebandConfig::paper()
        };
        let names = ["base", "alo", "tune", "aimd", "decbit", "bbr"];
        for a in names {
            let mut enc = checkpoint::Enc::new();
            Scheme::by_name(a, &sb)
                .unwrap()
                .build()
                .save_state(&mut enc);
            let bytes = enc.into_vec();
            for b in names {
                let mut ctl = Scheme::by_name(b, &sb).unwrap().build();
                let mut dec = checkpoint::Dec::new(&bytes);
                let result = ctl.restore_state(&mut dec);
                if a == b {
                    assert!(result.is_ok(), "{a} -> {b}");
                } else {
                    assert!(result.is_err(), "{a} -> {b} must be rejected");
                }
            }
        }
    }
}
