use crate::{Controller, ControllerCounters};
use faults::FaultPlan;
use sideband::{Sideband, SidebandConfig};
use wormsim::{CongestionControl, Network};

/// Configuration of the BBR-flavored delivery-rate controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BbrConfig {
    /// Side-band gather network parameters. Each snapshot's
    /// `delivered_flits` is one delivery-rate sample (flits per gather
    /// window).
    pub sideband: SidebandConfig,
    /// Length of the max-delivery-rate filter, in gathers (samples older
    /// than this fall out of the max).
    pub filter_gathers: u32,
    /// Length of the gain cycle, in gathers: each cycle starts with one
    /// probe sample (threshold raised above the operating point), then one
    /// drain sample (lowered below it), then cruising at gain 1.
    pub cycle_gathers: u32,
    /// Threshold gain during the probe phase (1.25, BBR's probe_bw up
    /// gain).
    pub probe_gain: f64,
    /// Threshold gain during the drain phase (0.75, mirroring the probe).
    pub drain_gain: f64,
    /// Threshold floor as a fraction of all VC buffers (1%) — keeps the
    /// gate from pinning shut before the filter has a real operating point.
    pub initial_threshold_frac: f64,
    /// Staleness watchdog horizon, in gathers (0 disables it).
    pub watchdog_gathers: u32,
}

impl BbrConfig {
    /// Defaults on the paper's network: an eight-gather filter and gain
    /// cycle with BBR's 1.25/0.75 probe/drain gains.
    #[must_use]
    pub fn paper() -> Self {
        BbrConfig {
            sideband: SidebandConfig::paper(),
            filter_gathers: 8,
            cycle_gathers: 8,
            probe_gain: 1.25,
            drain_gain: 0.75,
            initial_threshold_frac: 0.01,
            watchdog_gathers: 8,
        }
    }
}

/// The threshold gain for delivery-rate sample number `seq` (0-based):
/// sample 0 of each gain cycle probes, sample 1 drains, the rest cruise.
///
/// ```
/// use stcc::{bbr_phase_gain, BbrConfig};
/// let c = BbrConfig::paper();
/// assert_eq!(bbr_phase_gain(0, &c), 1.25);
/// assert_eq!(bbr_phase_gain(1, &c), 0.75);
/// assert_eq!(bbr_phase_gain(2, &c), 1.0);
/// assert_eq!(bbr_phase_gain(8, &c), 1.25);
/// ```
#[must_use]
pub fn bbr_phase_gain(seq: u64, cfg: &BbrConfig) -> f64 {
    if cfg.cycle_gathers == 0 {
        return 1.0;
    }
    match seq % u64::from(cfg.cycle_gathers) {
        0 => cfg.probe_gain,
        1 => cfg.drain_gain,
        _ => 1.0,
    }
}

/// One delivery-rate sample in the max filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RateSample {
    /// Sample sequence number (snapshots observed before it).
    seq: u64,
    /// Flits delivered network-wide in the sample's gather window.
    rate: u32,
    /// Full-buffer census at the sample's snapshot — the operating point
    /// that produced this rate.
    census: u32,
}

/// **BBR-flavored** delivery-rate control (Cardwell et al., "BBR:
/// Congestion-Based Congestion Control") adapted to the interconnect: a
/// windowed-max filter over the side-band's per-gather delivered-flit
/// counts finds the highest delivery rate seen recently *and the
/// full-buffer census that produced it*, then gates injection at that
/// operating point instead of hill-climbing a threshold.
///
/// The periodic gain cycle is BBR's probe/drain schedule: one sample per
/// cycle the threshold is raised above the operating point (probing whether
/// more in-flight buffers buy more delivery rate — if they do, the max
/// filter adopts the new operating point), then lowered below it to drain
/// the queues the probe built.
#[derive(Debug, Clone)]
pub struct BbrControl {
    cfg: BbrConfig,
    sideband: Sideband,
    state: Option<BbrState>,
}

#[derive(Debug, Clone)]
struct BbrState {
    total_buffers: f64,
    floor: f64,
    /// Delivery-rate samples observed (drives the gain cycle).
    seq: u64,
    /// Windowed-max filter: samples in rate-decreasing order, front = max.
    filter: Vec<RateSample>,
    threshold: f64,
    throttling_now: bool,
    last_snapshot_seen: Option<u64>,
    last_good_threshold: f64,
    frozen: bool,
    rejected_seen: u64,
    probes: u64,
    drains: u64,
    watchdog_trips: u64,
    watchdog_rearms: u64,
}

impl BbrControl {
    /// Creates a controller; buffer-count-dependent state initializes on
    /// the first [`CongestionControl::on_cycle`] call.
    #[must_use]
    pub fn new(cfg: BbrConfig) -> Self {
        BbrControl {
            sideband: Sideband::new(cfg.sideband.clone()),
            cfg,
            state: None,
        }
    }

    /// The current threshold, in full buffers (`None` before the first
    /// cycle).
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.threshold)
    }

    /// Whether injection is currently blocked network-wide.
    #[must_use]
    pub fn throttling(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.throttling_now)
    }

    /// Installs a fault plan on the underlying side-band.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sideband.set_faults(plan);
    }

    /// Whether the staleness watchdog has currently frozen the controller.
    #[must_use]
    pub fn watchdog_active(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.frozen)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BbrConfig {
        &self.cfg
    }

    /// Read access to the underlying side-band model.
    #[must_use]
    pub fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// Serializes the controller state (side-band + filter) into `enc`.
    pub fn save_state(&self, enc: &mut checkpoint::Enc) {
        self.sideband.save_state(enc);
        enc.bool(self.state.is_some());
        if let Some(st) = &self.state {
            enc.f64(st.total_buffers);
            enc.f64(st.floor);
            enc.u64(st.seq);
            enc.u32(st.filter.len() as u32);
            for s in &st.filter {
                enc.u64(s.seq);
                enc.u32(s.rate);
                enc.u32(s.census);
            }
            enc.f64(st.threshold);
            enc.bool(st.throttling_now);
            enc.opt_u64(st.last_snapshot_seen);
            enc.f64(st.last_good_threshold);
            enc.bool(st.frozen);
            enc.u64(st.rejected_seen);
            enc.u64(st.probes);
            enc.u64(st.drains);
            enc.u64(st.watchdog_trips);
            enc.u64(st.watchdog_rearms);
        }
    }

    /// Restores state captured with [`BbrControl::save_state`] into a
    /// controller built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`checkpoint::CheckpointError`] on a truncated or
    /// structurally invalid stream.
    pub fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        self.sideband.restore_state(dec)?;
        self.state = if dec.bool()? {
            let total_buffers = dec.f64()?;
            let floor = dec.f64()?;
            let seq = dec.u64()?;
            let len = dec.u32()?;
            let mut filter = Vec::with_capacity(len as usize);
            for _ in 0..len {
                filter.push(RateSample {
                    seq: dec.u64()?,
                    rate: dec.u32()?,
                    census: dec.u32()?,
                });
            }
            Some(BbrState {
                total_buffers,
                floor,
                seq,
                filter,
                threshold: dec.f64()?,
                throttling_now: dec.bool()?,
                last_snapshot_seen: dec.opt_u64()?,
                last_good_threshold: dec.f64()?,
                frozen: dec.bool()?,
                rejected_seen: dec.u64()?,
                probes: dec.u64()?,
                drains: dec.u64()?,
                watchdog_trips: dec.u64()?,
                watchdog_rearms: dec.u64()?,
            })
        } else {
            None
        };
        Ok(())
    }

    fn state_for(cfg: &BbrConfig, total_buffers: f64) -> BbrState {
        let floor = cfg.initial_threshold_frac * total_buffers;
        BbrState {
            total_buffers,
            floor,
            seq: 0,
            filter: Vec::new(),
            threshold: floor,
            throttling_now: false,
            last_snapshot_seen: None,
            last_good_threshold: floor,
            frozen: false,
            rejected_seen: 0,
            probes: 0,
            drains: 0,
            watchdog_trips: 0,
            watchdog_rearms: 0,
        }
    }

    /// Folds one delivery-rate sample into the max filter and recomputes
    /// the threshold from the filtered operating point and the phase gain.
    fn sample(cfg: &BbrConfig, st: &mut BbrState, rate: u32, census: u32) {
        let seq = st.seq;
        st.seq += 1;
        // Expire samples older than the filter window, then maintain the
        // rate-decreasing deque invariant (ties go to the newer sample, so
        // the operating point tracks current conditions).
        let horizon = u64::from(cfg.filter_gathers.max(1));
        st.filter.retain(|s| s.seq + horizon > seq);
        while st.filter.last().is_some_and(|s| s.rate <= rate) {
            st.filter.pop();
        }
        st.filter.push(RateSample { seq, rate, census });

        let gain = bbr_phase_gain(seq, cfg);
        if cfg.cycle_gathers > 0 {
            match seq % u64::from(cfg.cycle_gathers) {
                0 => st.probes += 1,
                1 => st.drains += 1,
                _ => {}
            }
        }
        let operating_point = f64::from(st.filter[0].census);
        st.threshold = (gain * operating_point).max(st.floor).min(st.total_buffers);
    }
}

impl CongestionControl for BbrControl {
    fn on_cycle(&mut self, now: u64, net: &Network) {
        self.state
            .get_or_insert_with(|| Self::state_for(&self.cfg, f64::from(net.total_vc_buffers())));
        Controller::observe_census(
            self,
            now,
            net.full_buffer_count(),
            net.delivered_flits_cum(),
        );
    }

    fn allow_injection(&mut self, _now: u64, _node: usize, _dst: usize, _net: &Network) -> bool {
        !self.throttling()
    }

    fn throttled_recently(&self) -> bool {
        self.throttling()
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

impl Controller for BbrControl {
    fn observe_census(&mut self, now: u64, census: u32, delivered_cum: u64) {
        let st = self.state.get_or_insert_with(|| {
            Self::state_for(&self.cfg, f64::from(self.sideband.max_full_buffers()))
        });

        self.sideband.on_cycle(now, census, delivered_cum);

        if let Some(snap) = self.sideband.latest() {
            if st.last_snapshot_seen != Some(snap.taken_at) {
                st.last_snapshot_seen = Some(snap.taken_at);
                if st.frozen {
                    // Rate samples spanning the outage are garbage: re-arm
                    // with an empty filter at the restored threshold.
                    st.frozen = false;
                    st.watchdog_rearms += 1;
                    st.filter.clear();
                    st.rejected_seen = self.sideband.stats().rejected();
                }
                Self::sample(&self.cfg, st, snap.delivered_flits, snap.full_buffers);
                let rejected = self.sideband.stats().rejected();
                if rejected == st.rejected_seen {
                    st.last_good_threshold = st.threshold;
                }
                st.rejected_seen = rejected;
            }
        }

        if !st.frozen
            && self.cfg.watchdog_gathers > 0
            && self.sideband.gathers_overdue(now) >= u64::from(self.cfg.watchdog_gathers)
        {
            st.frozen = true;
            st.watchdog_trips += 1;
            st.threshold = st.last_good_threshold;
        }

        st.throttling_now = !st.frozen && self.sideband.estimate(now) > st.threshold;
    }

    fn throttling(&self) -> bool {
        BbrControl::throttling(self)
    }

    fn threshold(&self) -> Option<f64> {
        BbrControl::threshold(self)
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        BbrControl::set_faults(self, plan);
    }

    fn sideband(&self) -> Option<&Sideband> {
        Some(BbrControl::sideband(self))
    }

    fn watchdog_active(&self) -> bool {
        BbrControl::watchdog_active(self)
    }

    fn counters(&self) -> ControllerCounters {
        self.state
            .as_ref()
            .map_or_else(ControllerCounters::default, |st| ControllerCounters {
                decisions: st.seq,
                raises: st.probes,
                cuts: st.drains,
                resets: 0,
                watchdog_trips: st.watchdog_trips,
                watchdog_rearms: st.watchdog_rearms,
            })
    }

    fn save_state(&self, enc: &mut checkpoint::Enc) {
        BbrControl::save_state(self, enc);
    }

    fn restore_state(
        &mut self,
        dec: &mut checkpoint::Dec<'_>,
    ) -> Result<(), checkpoint::CheckpointError> {
        BbrControl::restore_state(self, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::SidebandFaults;
    use wormsim::{DeadlockMode, NetConfig};

    fn cfg() -> BbrConfig {
        BbrConfig::paper()
    }

    /// BBR's gain cycle: probe on sample 0 of each cycle, drain on sample
    /// 1, cruise otherwise — for every sample of the first three cycles.
    #[test]
    fn probe_phase_scheduling() {
        let c = cfg();
        for cycle in 0..3u64 {
            let base = cycle * u64::from(c.cycle_gathers);
            assert_eq!(bbr_phase_gain(base, &c), c.probe_gain, "cycle {cycle}");
            assert_eq!(bbr_phase_gain(base + 1, &c), c.drain_gain);
            for s in 2..u64::from(c.cycle_gathers) {
                assert_eq!(bbr_phase_gain(base + s, &c), 1.0, "cruise sample {s}");
            }
        }
    }

    #[test]
    fn zero_length_cycle_always_cruises() {
        let c = BbrConfig {
            cycle_gathers: 0,
            ..cfg()
        };
        for seq in 0..16 {
            assert_eq!(bbr_phase_gain(seq, &c), 1.0);
        }
    }

    /// The max filter adopts the census of the highest-rate sample in the
    /// window, expires it once it ages out, and gives ties to the newer
    /// sample.
    #[test]
    fn max_filter_tracks_operating_point() {
        let c = cfg();
        let mut st = BbrControl::state_for(&c, 3072.0);
        // Cruise-phase sample indices would complicate the gain; use
        // sample 2 (gain 1.0) by discarding the first two.
        BbrControl::sample(&c, &mut st, 10, 100);
        BbrControl::sample(&c, &mut st, 50, 300);
        BbrControl::sample(&c, &mut st, 20, 900);
        // Max rate is 50 at census 300: the cruise threshold sits there.
        assert_eq!(st.filter[0].rate, 50);
        assert_eq!(st.threshold, 300.0);
        // A tie replaces the older sample (newer census wins).
        BbrControl::sample(&c, &mut st, 50, 400);
        assert_eq!(st.threshold, 400.0);
        // Age the max out of the eight-sample window: the best survivor
        // (rate 20, census 900) becomes the operating point. The last
        // sample lands on seq 11, a cruise phase, so the threshold sits
        // exactly at the surviving census.
        for _ in 0..8 {
            BbrControl::sample(&c, &mut st, 20, 900);
        }
        assert_eq!(st.filter[0].rate, 20);
        assert_eq!(st.threshold, 900.0);
    }

    /// Probe and drain phases scale the same operating point by their
    /// gains; the floor backstops an empty-ish filter.
    #[test]
    fn gains_scale_the_operating_point() {
        let c = cfg();
        let mut st = BbrControl::state_for(&c, 3072.0);
        BbrControl::sample(&c, &mut st, 100, 800); // seq 0: probe
        assert_eq!(st.threshold, 800.0 * c.probe_gain);
        assert_eq!(st.probes, 1);
        BbrControl::sample(&c, &mut st, 100, 800); // seq 1: drain (tie, newer)
        assert_eq!(st.threshold, 800.0 * c.drain_gain);
        assert_eq!(st.drains, 1);
        BbrControl::sample(&c, &mut st, 100, 800); // seq 2: cruise
        assert_eq!(st.threshold, 800.0);
    }

    #[test]
    fn threshold_floor_holds() {
        let c = cfg();
        let mut st = BbrControl::state_for(&c, 3072.0);
        st.seq = 2; // cruise phase
        BbrControl::sample(&c, &mut st, 5, 0); // idle network: census 0
        assert_eq!(st.threshold, st.floor, "floor backstops a zero census");
    }

    fn small_cfg() -> BbrConfig {
        BbrConfig {
            sideband: SidebandConfig {
                radix: 8,
                ..SidebandConfig::paper()
            },
            ..BbrConfig::paper()
        }
    }

    fn flood(ctl: &mut BbrControl, cycles: u64) {
        let mut net = Network::new(NetConfig::small(DeadlockMode::PAPER_RECOVERY)).unwrap();
        let nodes = net.torus().node_count();
        let mut i = 0usize;
        let mut source = move |_now: u64, node: usize| {
            i = i.wrapping_add(node + 1);
            Some((node + 1 + i) % nodes)
        };
        for _ in 0..cycles {
            net.cycle(&mut source, ctl);
        }
    }

    #[test]
    fn watchdog_trips_on_blackout_and_fails_open() {
        let mut ctl = BbrControl::new(small_cfg());
        ctl.set_faults(FaultPlan::sideband_only(
            11,
            SidebandFaults {
                loss_rate: 1.0,
                ..SidebandFaults::none()
            },
        ));
        flood(&mut ctl, 5_000);
        assert!(ctl.watchdog_active());
        assert!(!ctl.throttling(), "a frozen controller fails open");
        let c = Controller::counters(&ctl);
        assert_eq!(c.watchdog_trips, 1);
        assert_eq!(c.decisions, 0, "no aggregates, no rate samples");
    }

    #[test]
    fn fault_free_run_samples_and_probes() {
        let mut ctl = BbrControl::new(small_cfg());
        flood(&mut ctl, 10_000);
        let c = Controller::counters(&ctl);
        assert_eq!(c.watchdog_trips, 0);
        assert!(c.decisions > 16, "one sample per gather");
        assert!(c.raises >= 2, "probe phases recur");
        assert!(c.cuts >= 2, "drain phases recur");
    }
}
