//! Cross-controller conformance battery (DESIGN.md §6).
//!
//! Every controller in the registry — plus a representative static
//! threshold — runs through the same five properties. A controller that
//! passes here is safe to hand to `experiments`, `chaos` and the golden
//! figures: checkpointing, fast-forward, auditing, fault storms and the
//! throttle gate all behave.

use faults::{FaultPlan, SidebandFaults};
use sideband::SidebandConfig;
use stcc::{Controller, Scheme, SimConfig, Simulation};
use traffic::{Pattern, Phase, Process, Workload};
use wormsim::{CongestionControl, DeadlockMode, NetConfig};

/// One registered controller plus the contract flags the battery checks
/// against (what the controller *promises*, not what it happens to do).
struct Entry {
    /// Name as resolved by `Scheme::by_name`.
    name: &'static str,
    /// Gates injection from the global side-band estimate: must throttle
    /// at some point while a synthetic census ramps to saturation.
    gates: bool,
    /// Consumes the side-band census: must veto quiescence fast-forward
    /// (`next_wakeup(now) == now`) because gathers tick every cycle.
    has_sideband: bool,
    /// Runs a staleness watchdog: must trip and fail open under a
    /// side-band blackout.
    has_watchdog: bool,
}

/// The full roster: every `Scheme::registry_names()` entry plus a static
/// threshold (static is parameterized, so it is not in the name registry).
const ROSTER: &[Entry] = &[
    Entry {
        name: "base",
        gates: false,
        has_sideband: false,
        has_watchdog: false,
    },
    Entry {
        name: "alo",
        gates: false,
        has_sideband: false,
        has_watchdog: false,
    },
    Entry {
        name: "static-12",
        gates: true,
        has_sideband: true,
        has_watchdog: false,
    },
    Entry {
        name: "tune",
        gates: true,
        has_sideband: true,
        has_watchdog: true,
    },
    Entry {
        name: "aimd",
        gates: true,
        has_sideband: true,
        has_watchdog: true,
    },
    Entry {
        name: "decbit",
        gates: true,
        has_sideband: true,
        has_watchdog: true,
    },
    Entry {
        name: "bbr",
        gates: true,
        has_sideband: true,
        has_watchdog: true,
    },
];

fn small_sideband() -> SidebandConfig {
    SidebandConfig {
        radix: 8,
        ..SidebandConfig::paper()
    }
}

fn scheme_for(e: &Entry) -> Scheme {
    Scheme::by_name(e.name, &small_sideband()).expect("roster name resolves")
}

fn cfg(e: &Entry, seed: u64, cycles: u64, rate: f64) -> SimConfig {
    SimConfig {
        net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme: scheme_for(e),
        cycles,
        warmup: 1_000,
        seed,
    }
}

/// The registry itself is covered: every name the battery pins must be in
/// `registry_names()` and vice versa (static is the one deliberate extra).
#[test]
fn roster_covers_the_whole_registry() {
    let covered: Vec<&str> = ROSTER
        .iter()
        .filter(|e| !e.name.starts_with("static-"))
        .map(|e| e.name)
        .collect();
    assert_eq!(covered, Scheme::registry_names());
    assert_eq!(
        ROSTER.len(),
        Scheme::registry_names().len() + 1,
        "exactly one static representative rides along"
    );
}

/// Property 1 — checkpoint/restore is bit-exact mid-tune: splitting a run
/// at a cycle that is neither a gather nor a tune boundary and resuming
/// from the checkpoint reproduces the uninterrupted run's final
/// checkpoint byte for byte.
#[test]
fn checkpoint_restore_mid_tune_is_bit_exact() {
    for e in ROSTER {
        let cfg = cfg(e, 11, 6_000, 0.05);
        let mut golden = Simulation::new(cfg.clone()).unwrap();
        golden.run_to_end();
        let want = golden.checkpoint();

        let mut head = Simulation::new(cfg.clone()).unwrap();
        // 2501 is prime to every cadence in play: off the 16-cycle gather
        // grid, off every tune period, mid-measurement-window.
        while head.now() < 2_501 {
            head.step();
        }
        let snap = head.checkpoint();
        let mut resumed = Simulation::restore(cfg, None, &snap).unwrap();
        resumed.run_to_end();
        assert_eq!(
            resumed.checkpoint(),
            want,
            "{}: resumed run diverged from uninterrupted run",
            e.name
        );
    }
}

/// Property 2 — fast-forward is either vetoed or exact: side-band
/// controllers must return `next_wakeup(now) == now` (gathers tick every
/// cycle, so no cycle is provably empty); controllers that permit
/// skipping must produce a byte-identical run when the engine uses it.
#[test]
fn fast_forward_is_vetoed_or_cycle_exact() {
    for e in ROSTER {
        let ctl = scheme_for(e).build();
        let wake = CongestionControl::next_wakeup(&ctl, 123);
        if e.has_sideband {
            assert_eq!(wake, 123, "{}: side-band controllers must veto", e.name);
        } else {
            assert_eq!(wake, u64::MAX, "{}: wakes on traffic only", e.name);
        }

        // Phased workload with a silent opening and long periodic gaps:
        // maximal fast-forward opportunity for the controllers that allow
        // it, and a veto exercise for the ones that don't.
        let wl = Workload::phased(vec![
            Phase {
                duration: 3_000,
                pattern: Pattern::UniformRandom,
                process: Process::Silent,
            },
            Phase {
                duration: u64::MAX,
                pattern: Pattern::UniformRandom,
                process: Process::periodic(700),
            },
        ]);
        let cfg = SimConfig {
            net: NetConfig::small(DeadlockMode::Avoidance),
            workload: wl,
            scheme: scheme_for(e),
            cycles: 20_000,
            warmup: 1_000,
            seed: 5,
        };
        let mut ff = Simulation::new(cfg.clone()).unwrap();
        ff.run_to_end();
        let mut stepped = Simulation::new(cfg).unwrap();
        while stepped.now() < 20_000 {
            stepped.step();
        }
        assert_eq!(
            ff.checkpoint(),
            stepped.checkpoint(),
            "{}: fast-forwarded run diverged from stepped run",
            e.name
        );
    }
}

/// Property 3 — audit-clean stepping: a saturated run with the invariant
/// audit on a 64-cycle cadence (the `STCC_AUDIT=64` contract) neither
/// panics nor ends in an unexplained state, and the final checkpoint
/// (itself audited) seals cleanly.
#[test]
fn saturated_run_is_audit_clean_at_cadence_64() {
    for e in ROSTER {
        let mut sim = Simulation::new(cfg(e, 7, 3_000, 0.08)).unwrap();
        sim.set_audit_every(Some(64));
        while sim.now() < 3_000 {
            sim.step();
        }
        let _ = sim.checkpoint();
        assert!(sim.audit().is_clean(), "{}: dirty final audit", e.name);
    }
}

/// Property 4 — staleness watchdog under a side-band blackout: with every
/// gather lost, watchdog controllers trip at least once, stay tripped,
/// and fail open (no throttling on frozen data); watchdog-free
/// controllers record zero trips and keep running.
#[test]
fn blackout_storm_trips_watchdogs_and_fails_open() {
    for e in ROSTER {
        let plan = FaultPlan::sideband_only(
            99,
            SidebandFaults {
                loss_rate: 1.0,
                ..SidebandFaults::none()
            },
        );
        let mut sim = Simulation::with_faults(cfg(e, 21, 6_000, 0.05), plan).unwrap();
        sim.run_to_end();
        let rep = sim.fault_report();
        if e.has_sideband {
            let stats = rep.sideband.expect("side-band stats present");
            assert!(stats.lost_snapshots > 0, "{}: storm was vacuous", e.name);
        } else {
            assert!(rep.sideband.is_none(), "{}: phantom side-band", e.name);
        }
        if e.has_watchdog {
            assert!(
                rep.watchdog_trips >= 1,
                "{}: watchdog never tripped",
                e.name
            );
            assert!(
                rep.watchdog_active,
                "{}: blackout persists, must stay tripped",
                e.name
            );
            assert!(
                !Controller::throttling(sim.controller()),
                "{}: must fail open on stale data",
                e.name
            );
        } else {
            assert_eq!(rep.watchdog_trips, 0, "{}: phantom watchdog", e.name);
            assert!(!rep.watchdog_active, "{}: phantom watchdog", e.name);
        }
    }
}

/// Property 5 — throttle gate tracks the census: fed a synthetic census
/// that sits at zero and then ramps to buffer saturation (while delivery
/// collapses), no controller throttles an idle network, every gating
/// controller throttles at some point during the ramp, and the local-only
/// baselines never engage the global gate.
///
/// "At some point" is deliberate: the self-tuner and the BBR max-filter
/// both legitimately re-open the gate as they re-anchor to the new
/// operating point, so strict monotonicity is not part of the contract.
#[test]
fn synthetic_census_ramp_engages_exactly_the_gating_controllers() {
    for e in ROSTER {
        let mut ctl = scheme_for(e).build();
        let max = 768_u32; // 64 nodes x 4 ports x 3 VCs on the small net
        let ramp_start = 1_000_u64;
        let mut throttled_at_zero = false;
        let mut throttled_in_ramp = false;
        for now in 0..6_000_u64 {
            let census = if now < ramp_start {
                0
            } else {
                (u32::try_from((now - ramp_start) / 2).unwrap()).min(max)
            };
            // Healthy delivery while idle, collapse once congestion ramps.
            let delivered = 8 * now.min(ramp_start);
            Controller::observe_census(&mut ctl, now, census, delivered);
            if Controller::throttling(&ctl) {
                if now < ramp_start {
                    throttled_at_zero = true;
                } else {
                    throttled_in_ramp = true;
                }
            }
        }
        assert!(!throttled_at_zero, "{}: throttled an idle network", e.name);
        assert_eq!(
            throttled_in_ramp, e.gates,
            "{}: gate response does not match its contract",
            e.name
        );
    }
}
