//! Stress and lifecycle gates for the persistent shard worker pool.
//!
//! Two properties ride here, serialized through one lock because both
//! probe process-global thread state:
//!
//! * **Barrier stress** — 10 000 audited cycles at eight shards on a
//!   64-node torus, interrupted by a mid-run checkpoint/restore, must land
//!   on the exact bytes of an uninterrupted single-shard run.
//! * **Teardown** — no worker thread outlives its pool: `set_shards`
//!   rebuilds the plan (joining the old workers first) and dropping the
//!   simulation joins the last pool, verified with a thread-count probe.

use std::sync::Mutex;

use stcc::{Scheme, SimConfig, Simulation};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn cfg(rate: f64) -> SimConfig {
    SimConfig {
        net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme: Scheme::Base,
        cycles: 10_000,
        warmup: 2_000,
        seed: 17,
    }
}

/// Ten thousand cycles at eight shards on the 64-node torus with the full
/// invariant audit every 64 cycles, a checkpoint taken mid-run, the
/// simulation (and with it the worker pool) destroyed, and the run resumed
/// from the snapshot — the final state must be byte-identical to an
/// uninterrupted single-shard run. This is the epoch barrier's endurance
/// test: ~20 000 dispatch/claim rounds with every audit in between.
#[test]
fn barrier_stress_audited_eight_shard_run_survives_interruption() {
    let _g = LOCK.lock().unwrap();
    let cfg = cfg(0.10);

    let mut golden = Simulation::new(cfg.clone()).unwrap();
    golden.set_shards(1);
    golden.set_audit_every(Some(64));
    golden.run_to_end();
    let golden_end = golden.checkpoint();

    let mut sharded = Simulation::new(cfg.clone()).unwrap();
    sharded.set_shards(8);
    sharded.set_audit_every(Some(64));
    while sharded.now() < 4_321 {
        sharded.step();
    }
    let snap = sharded.checkpoint();
    drop(sharded); // the simulated kill: pool and workers die here

    let mut resumed = Simulation::restore(cfg, None, &snap).unwrap();
    resumed.set_shards(8);
    resumed.set_audit_every(Some(64));
    resumed.run_to_end();
    assert_eq!(
        resumed.checkpoint(),
        golden_end,
        "interrupted eight-shard run diverged from the single-shard reference"
    );
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("/proc/self/status has a Threads: line")
        .trim()
        .parse()
        .unwrap()
}

/// Re-reads the thread count until it drops to `target` (or a generous
/// deadline passes): joins are synchronous, but the harness's own test
/// threads come and go underneath the probe.
#[cfg(target_os = "linux")]
fn settle(target: usize) -> usize {
    let mut n = thread_count();
    for _ in 0..200 {
        if n <= target {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        n = thread_count();
    }
    n
}

#[test]
#[cfg(target_os = "linux")]
fn no_worker_thread_outlives_the_simulation() {
    let _g = LOCK.lock().unwrap();
    let baseline = thread_count();

    let mut sim = Simulation::new(cfg(0.05)).unwrap();
    sim.set_shards(4);
    for _ in 0..64 {
        sim.step();
    }
    assert!(
        thread_count() >= baseline + 3,
        "four shards must spawn three persistent workers"
    );

    // Replacing the plan joins the old pool before anything else runs.
    sim.set_shards(1);
    assert!(
        settle(baseline) <= baseline,
        "set_shards(1) left worker threads behind"
    );

    sim.set_shards(4);
    for _ in 0..64 {
        sim.step();
    }
    drop(sim);
    assert!(
        settle(baseline) <= baseline,
        "dropping the simulation left worker threads behind"
    );
}
