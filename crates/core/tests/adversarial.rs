//! Adversarial checkpoint corpus: a valid snapshot is truncated at every
//! length and bit-flipped byte-by-byte in a seeded sweep, and restore must
//! always fail *typed* (or succeed cleanly) — never panic, never OOM on a
//! hostile length field.
//!
//! Two layers are attacked separately:
//!
//! 1. **Container layer** (`checkpoint::open`): every truncation and every
//!    single-byte flip of the sealed bytes must be rejected (CRC-32 covers
//!    the whole container, so any flip is detectable).
//! 2. **Payload layer** (`Simulation::restore` on a *re-sealed* mutated
//!    payload): the CRC is recomputed so the mutation reaches the decoders
//!    themselves. Structurally invalid payloads must fail with a typed
//!    `CheckpointError`; payloads that decode into an inconsistent state
//!    must be caught by the restore-boundary invariant audit
//!    (`SimError::Audit`); genuinely benign mutations may succeed.

use stcc::{Scheme, SimConfig, SimError, Simulation};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny (16-node) mid-traffic snapshot, small enough for every-byte
/// sweeps to stay fast.
fn snapshot() -> (SimConfig, Vec<u8>) {
    let cfg = SimConfig {
        net: NetConfig {
            radix: 4,
            dimensions: 2,
            vcs: 2,
            buf_depth: 2,
            packet_len: 4,
            source_queue_cap: 4,
            ..NetConfig::small(DeadlockMode::Recovery { timeout: 8 })
        },
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.1)),
        scheme: Scheme::Base,
        cycles: 2_000,
        warmup: 200,
        seed: 3,
    };
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    while sim.now() < 600 {
        sim.step();
    }
    let snap = sim.checkpoint();
    (cfg, snap)
}

#[test]
fn container_rejects_every_truncation_and_bit_flip() {
    let (_, snap) = snapshot();
    let fp = checkpoint::peek_fingerprint(&snap).unwrap();
    assert!(checkpoint::open(&snap, fp).is_ok(), "baseline must open");
    for len in 0..snap.len() {
        assert!(
            checkpoint::open(&snap[..len], fp).is_err(),
            "truncation to {len} bytes accepted"
        );
    }
    for i in 0..snap.len() {
        let mut bytes = snap.clone();
        // Seeded nonzero mask: a different flip pattern per offset.
        bytes[i] ^= (mix(0xc0ffee ^ i as u64) | 1) as u8;
        assert!(
            checkpoint::open(&bytes, fp).is_err(),
            "bit flip at byte {i} accepted"
        );
    }
}

#[test]
fn restore_survives_payload_mutations_without_panicking() {
    let (cfg, snap) = snapshot();
    let fp = checkpoint::peek_fingerprint(&snap).unwrap();
    let payload = checkpoint::open(&snap, fp).unwrap().to_vec();

    // Re-sealing the pristine payload must restore cleanly.
    assert!(Simulation::restore(cfg.clone(), None, &checkpoint::seal(fp, &payload)).is_ok());

    // Every proper payload prefix, re-sealed with a correct CRC, must be
    // rejected by the structural decoders (typed, no panic).
    for len in 0..payload.len() {
        let sealed = checkpoint::seal(fp, &payload[..len]);
        assert!(
            Simulation::restore(cfg.clone(), None, &sealed).is_err(),
            "payload truncated to {len} bytes restored"
        );
    }

    // Byte-by-byte seeded flips of the payload, re-sealed so the mutation
    // reaches the decoders. Any outcome but a panic/abort is acceptable;
    // typed errors and audit rejections are counted to prove the sweep
    // actually exercises both defense layers.
    let (mut typed, mut audited, mut clean) = (0u32, 0u32, 0u32);
    for i in 0..payload.len() {
        let mut mutated = payload.clone();
        mutated[i] ^= (mix(0xbadc0de ^ i as u64) | 1) as u8;
        let sealed = checkpoint::seal(fp, &mutated);
        match Simulation::restore(cfg.clone(), None, &sealed) {
            Ok(_) => clean += 1,
            Err(SimError::Audit(_)) => audited += 1,
            Err(_) => typed += 1,
        }
    }
    assert!(typed > 0, "sweep never hit a structural decoder error");
    assert!(audited > 0, "sweep never hit the restore-boundary audit");
    // `clean` may be zero; benign bytes (e.g. latency-stat accumulators)
    // usually exist, but nothing guarantees the seed hits one.
    let total = typed + audited + clean;
    assert_eq!(total as usize, payload.len());
}
