//! Acceptance gate for the invariant audit layer: a sustained audited run
//! over every scheme class × fault condition must report zero violations,
//! with checkpoint/restore boundaries audited along the way.

use faults::{FaultPlan, HotspotFault, LinkFault, SidebandFaults};
use sideband::SidebandConfig;
use stcc::{Scheme, SimConfig, Simulation, TuneConfig};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

const CYCLES: u64 = 10_000;

fn cfg(scheme: Scheme, seed: u64) -> SimConfig {
    SimConfig {
        net: NetConfig::small(DeadlockMode::PAPER_RECOVERY),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(0.06)),
        scheme,
        cycles: CYCLES,
        warmup: 2_000,
        seed,
    }
}

fn tuned_small() -> Scheme {
    Scheme::Tuned(TuneConfig {
        sideband: SidebandConfig {
            radix: 8,
            ..SidebandConfig::paper()
        },
        ..TuneConfig::paper()
    })
}

/// A storm touching every fault class: scheduled link stalls, two hot
/// destinations, and a lossy/corrupting side-band. All windows close well
/// before the run ends so the network can drain.
fn storm() -> FaultPlan {
    FaultPlan {
        seed: 99,
        sideband: SidebandFaults {
            loss_rate: 0.2,
            delay_rate: 0.2,
            max_delay: 8,
            corrupt_rate: 0.1,
            corrupt_bits: 2,
        },
        links: (0..6)
            .map(|i| LinkFault {
                node: i * 9 + 2,
                port: i % 4,
                start: 2_000 + 200 * i as u64,
                end: 5_000 + 200 * i as u64,
            })
            .collect(),
        hotspots: vec![
            HotspotFault {
                node: 11,
                start: 2_500,
                end: 4_500,
            },
            HotspotFault {
                node: 44,
                start: 3_000,
                end: 5_500,
            },
        ],
    }
}

/// Steps an audited simulation to the end, exercising a checkpoint/restore
/// boundary mid-run (both boundaries audit), and requires a clean final
/// report. The per-step cadence audits panic on any violation.
fn run_audited(scheme: Scheme, plan: Option<FaultPlan>, seed: u64) {
    let label = scheme.label();
    let cfg = cfg(scheme, seed);
    let mut sim = match &plan {
        Some(p) => Simulation::with_faults(cfg.clone(), p.clone()).unwrap(),
        None => Simulation::new(cfg.clone()).unwrap(),
    };
    sim.set_audit_every(Some(64));
    while sim.now() < CYCLES / 2 {
        sim.step();
    }
    // Boundary audits: checkpoint() audits because the cadence is on;
    // restore() audits unconditionally and fails typed, not loud.
    let snap = sim.checkpoint();
    let mut sim = Simulation::restore(cfg, plan, &snap)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    sim.set_audit_every(Some(64));
    while sim.now() < CYCLES {
        sim.step();
    }
    let report = sim.audit();
    assert!(report.is_clean(), "{label}: {report}");
    let s = sim.summary().unwrap();
    assert!(s.delivered_packets > 0, "{label}: vacuous run");
}

#[test]
fn base_runs_clean_audited() {
    run_audited(Scheme::Base, None, 7);
}

#[test]
fn base_runs_clean_audited_under_fault_storm() {
    run_audited(Scheme::Base, Some(storm()), 7);
}

#[test]
fn alo_runs_clean_audited() {
    run_audited(Scheme::Alo, None, 8);
}

#[test]
fn alo_runs_clean_audited_under_fault_storm() {
    run_audited(Scheme::Alo, Some(storm()), 8);
}

#[test]
fn tuned_runs_clean_audited() {
    run_audited(tuned_small(), None, 9);
}

#[test]
fn tuned_runs_clean_audited_under_fault_storm() {
    run_audited(tuned_small(), Some(storm()), 9);
}
