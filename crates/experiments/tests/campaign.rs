//! End-to-end tests of the `campaign` orchestrator binary: the exit-code
//! contract, retry/quarantine supervision, and the crash-safety guarantee —
//! a campaign SIGKILLed mid-flight and resumed must produce a report
//! byte-identical to an uninterrupted run (see EXPERIMENTS.md, "Campaigns").
//!
//! Each test drives the real binary (`CARGO_BIN_EXE_campaign`) in its own
//! temp directory, so the worker-process supervision, the ledger, and the
//! `STCC_CAMPAIGN_FAIL` crash rig are all exercised exactly as a user or
//! `scripts/ci.sh` would.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_campaign");

/// A fresh scratch directory for one test, pre-cleaned of prior runs.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stcc-campaign-test-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small single-scenario manifest (`jobs` = schemes × rates below).
fn manifest(dir: &Path, extra_scenarios: &str) -> PathBuf {
    let path = dir.join("campaign.toml");
    let text = format!(
        r#"[campaign]
name = "it"
seed = 11
retries = 1
backoff_ms = 1
timeout_s = 60
workers = 2

[scenario.steady]
net = "small"
scale = "tiny"
schemes = ["base", "tune"]
patterns = ["uniform-random"]
rates = [0.005]
{extra_scenarios}"#
    );
    fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str], rig: Option<&str>) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    // Scrub any rig inherited from the ambient environment, then apply the
    // test's own (the orchestrator passes its env down to every worker).
    cmd.env_remove("STCC_CAMPAIGN_FAIL");
    if let Some(rig) = rig {
        cmd.env("STCC_CAMPAIGN_FAIL", rig);
    }
    cmd.output().expect("spawn campaign binary")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("campaign exited without a code")
}

#[test]
fn clean_campaign_exits_zero_and_retires_its_ledger() {
    let dir = scratch("clean");
    let m = manifest(&dir, "");
    let out_dir = dir.join("out");
    let out = run(
        &[
            "--manifest",
            m.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = fs::read_to_string(out_dir.join("campaign.report")).unwrap();
    assert!(report.contains("jobs 2 | ok 2 | quarantined 0"), "{report}");
    assert!(out_dir.join("campaign.csv").exists());
    assert!(
        !out_dir.join("campaign.ledger").exists(),
        "a fully successful campaign must retire its ledger"
    );
}

#[test]
fn flaky_job_is_retried_to_success() {
    let dir = scratch("flaky");
    let m = manifest(&dir, "");
    let out_dir = dir.join("out");
    // The rig crashes every `steady` worker on attempt 0; the retry (attempt
    // 1) runs clean, so the campaign still succeeds end to end.
    let out = run(
        &[
            "--manifest",
            m.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
        ],
        Some("steady:1"),
    );
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = fs::read_to_string(out_dir.join("campaign.report")).unwrap();
    assert!(report.contains("ok-retried"), "{report}");
    assert!(report.contains("retries 2"), "{report}");
    assert!(report.contains("quarantined 0"), "{report}");
}

#[test]
fn doomed_job_is_quarantined_and_resume_reproduces_the_report() {
    let dir = scratch("doomed");
    let m = manifest(
        &dir,
        r#"
[scenario.doomed]
net = "small"
scale = "tiny"
schemes = ["alo"]
patterns = ["transpose"]
rates = [0.005]
"#,
    );
    let out_dir = dir.join("out");
    let args = [
        "--manifest",
        m.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ];
    let out = run(&args, Some("doomed:all"));
    assert_eq!(
        code(&out),
        4,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = fs::read_to_string(out_dir.join("campaign.report")).unwrap();
    assert!(report.contains("quarantined 1"), "{report}");
    assert!(report.contains("doomed/alo/transpose"), "{report}");
    assert!(
        out_dir.join("campaign.ledger").exists(),
        "a quarantining campaign must keep its ledger for --resume"
    );

    // Resuming replays the completed jobs verbatim and re-runs the
    // quarantined one; under the same rig the report is byte-identical.
    let resume = run(&[&args[..], &["--resume"]].concat(), Some("doomed:all"));
    assert_eq!(code(&resume), 4);
    let report2 = fs::read_to_string(out_dir.join("campaign.report")).unwrap();
    assert_eq!(
        report, report2,
        "resume must reproduce the report byte-for-byte"
    );
}

#[test]
fn manifest_and_usage_errors_use_their_contracted_exit_codes() {
    let dir = scratch("errors");

    // Unreadable manifest → 3.
    let missing = dir.join("nope.toml");
    assert_eq!(
        code(&run(&["--manifest", missing.to_str().unwrap()], None)),
        3
    );

    // Invalid manifest (unknown scheme) → 3, naming the registry.
    let bad = dir.join("bad.toml");
    fs::write(
        &bad,
        "[scenario.s]\nschemes = [\"warp-drive\"]\npatterns = [\"uniform-random\"]\nrates = [0.005]\n",
    )
    .unwrap();
    let out = run(&["--manifest", bad.to_str().unwrap()], None);
    assert_eq!(code(&out), 3);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warp-drive"), "{err}");

    // Bad flags → 2.
    assert_eq!(code(&run(&["--bogus"], None)), 2);
    assert_eq!(code(&run(&[], None)), 2);
}

#[test]
fn sigkilled_campaign_resumes_to_a_byte_identical_report() {
    let dir = scratch("kill");
    let m = manifest(
        &dir,
        r#"
[scenario.wide]
net = "small"
scale = "tiny"
schemes = ["base", "aimd"]
patterns = ["transpose"]
rates = [0.005, 0.028]
"#,
    );

    // Reference: the same campaign run to completion without interference.
    let ref_dir = dir.join("ref");
    let out = run(
        &[
            "--manifest",
            m.to_str().unwrap(),
            "--out",
            ref_dir.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = fs::read_to_string(ref_dir.join("campaign.report")).unwrap();

    // Victim: SIGKILL the orchestrator once the ledger holds some rows.
    let kill_dir = dir.join("killed");
    let ledger = kill_dir.join("campaign.ledger");
    let mut child = Command::new(BIN)
        .args([
            "--manifest",
            m.to_str().unwrap(),
            "--out",
            kill_dir.to_str().unwrap(),
        ])
        .env_remove("STCC_CAMPAIGN_FAIL")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut progressed = false;
    for _ in 0..2000 {
        let lines = fs::read_to_string(&ledger)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        // Header + at least one completed row, but not yet the whole matrix.
        if lines >= 2 {
            progressed = true;
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().ok(); // SIGKILL on unix
    child.wait().unwrap();
    assert!(
        progressed,
        "campaign finished before it could be killed — enlarge the matrix"
    );

    // Resume after the hard kill: completed rows replay from the ledger,
    // the rest re-run, and the merged report matches the reference exactly.
    let resumed = run(
        &[
            "--manifest",
            m.to_str().unwrap(),
            "--out",
            kill_dir.to_str().unwrap(),
            "--resume",
        ],
        None,
    );
    assert_eq!(
        code(&resumed),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let report = fs::read_to_string(kill_dir.join("campaign.report")).unwrap();
    assert_eq!(report, reference, "kill + resume must reproduce the report");
    let csv = fs::read_to_string(kill_dir.join("campaign.csv")).unwrap();
    let ref_csv = fs::read_to_string(ref_dir.join("campaign.csv")).unwrap();
    assert_eq!(csv, ref_csv);
}
