//! SIGINT semantics of the pool: once the flag is up, workers stop
//! claiming jobs and every unstarted slot surfaces as
//! [`JobError::Interrupted`] — the sweep flushes instead of hanging.
//!
//! Lives in its own integration-test binary because the interrupt flag is
//! process-global; sharing a process with the golden/resume tests would
//! race them.

use experiments::journal::Journal;
use experiments::runner::{JobError, Pool};
use experiments::{sigint, SweepCtx};
use std::fs;

#[test]
fn interrupt_stops_unstarted_jobs_and_keeps_journaled_ones() {
    let path = std::env::temp_dir().join("stcc-interrupt-test/x.journal");
    let _ = fs::remove_file(&path);
    let (journal, load) = Journal::begin(&path, 5, false).unwrap();
    let ctx = SweepCtx::with_journal(Pool::new(1), journal, load);

    // Job 0 completes (and is journaled), then raises the interrupt flag;
    // the single worker must refuse to claim job 1.
    let err = ctx
        .try_run_rows(
            vec![0u32, 1],
            |j| format!("job{j}"),
            |j| {
                if j == 0 {
                    sigint::trigger();
                    Ok(vec![vec!["done-0".to_owned()]])
                } else {
                    Err::<_, String>("job 1 must never run".to_owned())
                }
            },
        )
        .unwrap_err();
    assert_eq!(err.error, JobError::Interrupted);
    sigint::reset();

    // The completed point survived the interrupt: a resume replays it.
    let (_, load) = Journal::begin(&path, 5, true).unwrap();
    assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![0]);
    assert_eq!(load.done[&0], vec![vec!["done-0".to_owned()]]);
    assert!(
        load.failed.is_empty(),
        "interrupted jobs never ran, so they must not be recorded as failed"
    );
    let _ = fs::remove_file(&path);
}
