//! Crash-safety proofs for the resumable sweep machinery (ISSUE 3):
//!
//! 1. A sweep resumed from a journal is **byte-identical** to an
//!    uninterrupted run — including a partial journal, where un-journaled
//!    points are re-simulated and journaled ones are replayed from disk.
//! 2. Journaled points really are *replayed, not re-run*: a sentinel
//!    payload planted in the journal surfaces verbatim in the output.
//! 3. A Figure 4 simulation snapshotted mid-run with
//!    [`Simulation::checkpoint`], restored, and driven to the end lands in
//!    bit-identical final state to the uninterrupted simulation.

use experiments::figures::fig4;
use experiments::journal::Journal;
use experiments::runner::Pool;
use experiments::{NetPreset, Scale, SweepCtx};
use stcc::Simulation;
use std::fs;
use std::path::PathBuf;

const FP: u64 = 0xF1604_71417;

fn journal_at(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stcc-resume-test-{name}/fig4.tiny.journal"))
}

fn fig4_csv(ctx: &SweepCtx) -> String {
    fig4::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        .expect("fig4 tiny sweep")
        .to_csv()
}

#[test]
fn resume_from_partial_journal_is_bit_identical() {
    let path = journal_at("partial");
    let _ = fs::remove_file(&path);

    // Uninterrupted reference at --jobs 1.
    let want = fig4_csv(&SweepCtx::bare(Pool::new(1)));

    // A full run with a journal: completes and records both variants.
    let (journal, load) = Journal::begin(&path, FP, false).unwrap();
    assert!(load.done.is_empty());
    let first = fig4_csv(&SweepCtx::with_journal(Pool::new(2), journal, load));
    assert_eq!(first, want, "journaling must not perturb the output");

    // Simulate a crash after only job 1 finished: reload the full journal,
    // keep just one record, and resume. Job 0 re-simulates, job 1 replays.
    let (_, full) = Journal::begin(&path, FP, true).unwrap();
    assert_eq!(full.done.len(), 2, "both fig4 variants journaled");
    let (mut journal, _) = Journal::begin(&path, FP, false).unwrap();
    journal.append(1, &full.done[&1]).unwrap();
    drop(journal);
    let (journal, load) = Journal::begin(&path, FP, true).unwrap();
    assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![1]);
    let resumed = fig4_csv(&SweepCtx::with_journal(Pool::new(2), journal, load));
    assert_eq!(
        resumed, want,
        "resume from a partial journal must be byte-identical to an uninterrupted run"
    );

    let _ = fs::remove_file(&path);
}

#[test]
fn journaled_points_are_replayed_not_rerun() {
    let path = journal_at("sentinel");
    let _ = fs::remove_file(&path);

    // Plant a sentinel payload as job 0's journaled rows. A real run can
    // never produce it, so its appearance proves the journal was replayed
    // instead of the point being re-simulated.
    let sentinel: Vec<Vec<String>> = vec![vec![
        "sentinel-from-journal".to_owned(),
        "0".to_owned(),
        "0".to_owned(),
        "0".to_owned(),
    ]];
    let (mut journal, _) = Journal::begin(&path, FP, false).unwrap();
    journal.append(0, &sentinel).unwrap();
    drop(journal);

    let (journal, load) = Journal::begin(&path, FP, true).unwrap();
    let csv = fig4_csv(&SweepCtx::with_journal(Pool::new(2), journal, load));
    assert!(
        csv.contains("sentinel-from-journal"),
        "journaled rows must be replayed verbatim"
    );

    let _ = fs::remove_file(&path);
}

#[test]
fn fig4_checkpoint_restore_finish_is_bit_identical() {
    let cfg = fig4::sim_config(NetPreset::Small, Scale::Tiny, true);

    // Uninterrupted run.
    let mut straight = Simulation::new(cfg.clone()).unwrap();
    straight.run_to_end();

    // Snapshot mid-run (past warm-up, mid-measurement), restore, finish.
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    while sim.now() < 2_500 {
        sim.step();
    }
    let snap = sim.checkpoint();
    drop(sim);
    let mut restored = Simulation::restore(cfg, None, &snap).unwrap();
    assert_eq!(restored.now(), 2_500);
    restored.run_to_end();

    assert_eq!(
        restored.checkpoint(),
        straight.checkpoint(),
        "snapshot + restore + finish must be bit-identical to an uninterrupted run"
    );
    let a = restored.summary().unwrap();
    let b = straight.summary().unwrap();
    assert_eq!(a.delivered_flits, b.delivered_flits);
    assert_eq!(a.network_latency.count(), b.network_latency.count());
}

#[test]
fn resume_ignores_a_foreign_fingerprint() {
    let path = journal_at("foreign");
    let _ = fs::remove_file(&path);
    let (mut journal, _) = Journal::begin(&path, FP, false).unwrap();
    journal.append(0, &vec![vec!["junk".to_owned()]]).unwrap();
    drop(journal);
    // A different sweep identity must not pick these rows up.
    let (_, load) = Journal::begin(&path, FP ^ 1, true).unwrap();
    assert!(
        load.done.is_empty(),
        "foreign journal records must be ignored"
    );
    let _ = fs::remove_file(&path);
}
