//! Golden snapshot tests: the committed `tests/golden/*.tiny.csv` files
//! are the reference outputs of fig2/fig4/fig5/fig_controllers/resilience
//! on the small network preset (8-ary 2-cube) at tiny scale. Each test re-simulates and
//! asserts the CSV rendering is **byte-identical** to the snapshot —
//! at `--jobs 1`, `2` and `8`, and across two runs at the same seed —
//! which is the determinism guarantee the parallel runner advertises.
//!
//! Regenerate after an intentional simulator change with:
//!
//! ```text
//! for f in fig2 fig4 fig5 fig_controllers resilience; do
//!   cargo run --release -p experiments --bin $f -- \
//!     --scale tiny --net small --out crates/experiments/tests/golden
//! done
//! ```

use experiments::figures::{controllers, fig2, fig4, fig5, resilience};
use experiments::runner::{Pool, SweepError};
use experiments::{NetPreset, Scale, SweepCtx, Table};

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

fn check(
    name: &str,
    job_counts: &[usize],
    generate: impl Fn(&SweepCtx) -> Result<Table, SweepError>,
) {
    let want = golden(name);
    for &jobs in job_counts {
        let ctx = SweepCtx::bare(Pool::new(jobs));
        let t = generate(&ctx).unwrap_or_else(|e| panic!("{name} @ jobs={jobs}: {e}"));
        assert_eq!(
            t.to_csv(),
            want,
            "{name} differs from golden snapshot at jobs={jobs}"
        );
    }
}

#[test]
fn fig2_matches_golden_at_every_job_count() {
    check("fig2.tiny.csv", &[1, 2, 8], |ctx| {
        fig2::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn fig4_matches_golden_at_every_job_count() {
    check("fig4.tiny.csv", &[1, 2, 8], |ctx| {
        fig4::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn fig5_matches_golden_at_every_job_count() {
    check("fig5.tiny.csv", &[1, 8], |ctx| {
        fig5::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn controllers_matches_golden_at_every_job_count() {
    check("fig_controllers.tiny.csv", &[1, 2, 8], |ctx| {
        controllers::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn resilience_matches_golden_at_every_job_count() {
    check("resilience.tiny.csv", &[1, 2, 8], |ctx| {
        resilience::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn two_runs_same_seed_are_identical() {
    let run = || {
        fig2::generate_on(NetPreset::Small, Scale::Tiny, &SweepCtx::bare(Pool::new(8)))
            .expect("fig2 tiny sweep")
            .to_csv()
    };
    assert_eq!(run(), run(), "same-seed reruns must be byte-identical");
}
