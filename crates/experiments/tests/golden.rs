//! Golden snapshot tests: the committed `tests/golden/*.tiny.csv` files
//! are the reference outputs of fig2/fig4/fig5/fig_controllers/resilience
//! on the small network preset (8-ary 2-cube) at tiny scale. Each test re-simulates and
//! asserts the CSV rendering is **byte-identical** to the snapshot —
//! at `--jobs 1`, `2` and `8`, and across two runs at the same seed —
//! which is the determinism guarantee the parallel runner advertises.
//!
//! Regenerate after an intentional simulator change with:
//!
//! ```text
//! for f in fig2 fig4 fig5 fig_controllers resilience; do
//!   cargo run --release -p experiments --bin $f -- \
//!     --scale tiny --net small --out crates/experiments/tests/golden
//! done
//! ```

use experiments::figures::{controllers, fig2, fig4, fig5, resilience};
use experiments::runner::{Pool, SweepError};
use experiments::{NetPreset, Scale, SweepCtx, Table};

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

fn check(
    name: &str,
    job_counts: &[usize],
    generate: impl Fn(&SweepCtx) -> Result<Table, SweepError>,
) {
    let want = golden(name);
    for &jobs in job_counts {
        let ctx = SweepCtx::bare(Pool::new(jobs));
        let t = generate(&ctx).unwrap_or_else(|e| panic!("{name} @ jobs={jobs}: {e}"));
        assert_eq!(
            t.to_csv(),
            want,
            "{name} differs from golden snapshot at jobs={jobs}"
        );
    }
}

#[test]
fn fig2_matches_golden_at_every_job_count() {
    check("fig2.tiny.csv", &[1, 2, 8], |ctx| {
        fig2::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn fig4_matches_golden_at_every_job_count() {
    check("fig4.tiny.csv", &[1, 2, 8], |ctx| {
        fig4::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn fig5_matches_golden_at_every_job_count() {
    check("fig5.tiny.csv", &[1, 8], |ctx| {
        fig5::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn controllers_matches_golden_at_every_job_count() {
    check("fig_controllers.tiny.csv", &[1, 2, 8], |ctx| {
        controllers::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn resilience_matches_golden_at_every_job_count() {
    check("resilience.tiny.csv", &[1, 2, 8], |ctx| {
        resilience::generate_on(NetPreset::Small, Scale::Tiny, ctx)
    });
}

#[test]
fn two_runs_same_seed_are_identical() {
    let run = || {
        fig2::generate_on(NetPreset::Small, Scale::Tiny, &SweepCtx::bare(Pool::new(8)))
            .expect("fig2 tiny sweep")
            .to_csv()
    };
    assert_eq!(run(), run(), "same-seed reruns must be byte-identical");
}

/// Shard invariance, end to end: every figure's tiny CSV must be
/// byte-identical to the committed golden when each simulation steps
/// across 1, 2, 4 or 8 intra-network shards (`STCC_SHARDS`, the analogue of
/// the `--jobs` axis above). The env var is process-global; tests in this
/// binary run concurrently, but any value another thread reads still
/// produces identical bytes — that's the invariant itself — so the races
/// are benign. Values are restored to "1" (not unset) to keep the
/// variable's lifetime simple.
#[test]
fn every_figure_matches_golden_at_every_shard_count() {
    type Generate = fn(&SweepCtx) -> Result<Table, SweepError>;
    let figures: &[(&str, Generate)] = &[
        ("fig2.tiny.csv", |ctx| {
            fig2::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        }),
        ("fig4.tiny.csv", |ctx| {
            fig4::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        }),
        ("fig5.tiny.csv", |ctx| {
            fig5::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        }),
        ("fig_controllers.tiny.csv", |ctx| {
            controllers::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        }),
        ("resilience.tiny.csv", |ctx| {
            resilience::generate_on(NetPreset::Small, Scale::Tiny, ctx)
        }),
    ];
    for shards in [1usize, 2, 4, 8] {
        std::env::set_var("STCC_SHARDS", shards.to_string());
        for (name, generate) in figures {
            let want = golden(name);
            let ctx = SweepCtx::bare(Pool::new(2));
            let t = generate(&ctx).unwrap_or_else(|e| panic!("{name} @ shards={shards}: {e}"));
            assert_eq!(
                t.to_csv(),
                want,
                "{name} differs from golden snapshot at shards={shards}"
            );
        }
    }
    std::env::set_var("STCC_SHARDS", "1");
}
