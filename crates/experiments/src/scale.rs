/// Simulation length presets.
///
/// The paper runs every experiment for 600 000 cycles and discards the first
/// 100 000. That is `Scale::Paper`; the reduced scales keep the same warm-up
/// fraction and are used where wall-clock time matters (this reproduction's
/// recorded runs, and the Criterion benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 600 000 cycles, 100 000 warm-up (the paper's setting).
    Paper,
    /// 150 000 cycles, 25 000 warm-up.
    Reduced,
    /// 24 000 cycles, 4 000 warm-up (CI/bench smoke runs).
    Smoke,
    /// 6 000 cycles, 1 000 warm-up (golden snapshot tests; pair with the
    /// small network preset so the suite re-simulates in seconds).
    Tiny,
}

impl Scale {
    /// Total simulated cycles.
    #[must_use]
    pub fn cycles(self) -> u64 {
        match self {
            Scale::Paper => 600_000,
            Scale::Reduced => 150_000,
            Scale::Smoke => 24_000,
            Scale::Tiny => 6_000,
        }
    }

    /// Warm-up cycles excluded from statistics.
    #[must_use]
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Paper => 100_000,
            Scale::Reduced => 25_000,
            Scale::Smoke => 4_000,
            Scale::Tiny => 1_000,
        }
    }

    /// Length of each bursty-workload phase (Figure 6 uses 50 000-cycle
    /// phases over a 450 000-cycle run; reduced scales shrink
    /// proportionally).
    #[must_use]
    pub fn bursty_phase(self) -> u64 {
        match self {
            Scale::Paper => 50_000,
            Scale::Reduced => 12_500,
            Scale::Smoke => 2_500,
            Scale::Tiny => 600,
        }
    }

    /// Parses `paper` / `reduced` / `smoke`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "reduced" => Some(Scale::Reduced),
            "smoke" => Some(Scale::Smoke),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }

    /// Label used in output files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Reduced => "reduced",
            Scale::Smoke => "smoke",
            Scale::Tiny => "tiny",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [Scale::Paper, Scale::Reduced, Scale::Smoke, Scale::Tiny] {
            assert_eq!(Scale::parse(s.label()), Some(s));
            assert!(s.warmup() < s.cycles());
        }
        assert_eq!(Scale::parse("bogus"), None);
    }
}
