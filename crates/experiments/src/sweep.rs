//! Resumable sweep execution: a [`Pool`] plus an optional journal of
//! completed points.
//!
//! Figure modules render their final row strings *inside* the worker
//! closure and fan out through [`SweepCtx::try_run_rows`]; each finished
//! job's rows are journaled (fsync'd) before the job counts as done, and on
//! `--resume` journaled jobs are replayed from disk instead of
//! re-simulated. Jobs are numbered by a context-global counter in issue
//! order, so a binary that runs several sweeps (e.g. `fig7`) gets stable
//! indices across runs.

use crate::journal::{FailureKind, Journal, JournalLoad, Rows};
use crate::runner::{JobError, Pool, SweepError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Execution context of one sweep binary: worker pool, resume state and the
/// journal of completed points.
#[derive(Debug)]
pub struct SweepCtx {
    pool: Pool,
    journal: Option<Mutex<Journal>>,
    done: BTreeMap<u64, Rows>,
    retried: usize,
    next_id: AtomicU64,
}

impl SweepCtx {
    /// A journal-less context (tests and library callers): every job runs.
    #[must_use]
    pub fn bare(pool: Pool) -> SweepCtx {
        SweepCtx {
            pool,
            journal: None,
            done: BTreeMap::new(),
            retried: 0,
            next_id: AtomicU64::new(0),
        }
    }

    /// A journaling context seeded with a previous run's load: completed
    /// jobs are replayed, journaled failures are *retried*
    /// (see [`Journal::begin`]).
    #[must_use]
    pub fn with_journal(pool: Pool, journal: Journal, load: JournalLoad) -> SweepCtx {
        SweepCtx {
            pool,
            journal: Some(Mutex::new(journal)),
            done: load.done,
            retried: load.failed.len(),
            next_id: AtomicU64::new(0),
        }
    }

    /// The worker pool.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Number of journaled (already completed) jobs this context resumed
    /// with.
    #[must_use]
    pub fn resumed_jobs(&self) -> usize {
        self.done.len()
    }

    /// Number of journaled *failed* jobs this context resumed with — they
    /// are re-run, not replayed.
    #[must_use]
    pub fn retried_jobs(&self) -> usize {
        self.retried
    }

    /// Runs `work(job)` for every job not already journaled, fanned across
    /// the pool, and returns every job's rendered rows — journaled and
    /// fresh alike — flattened in input order.
    ///
    /// `work` must render the job's final table rows: they are what the
    /// journal replays on resume, byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns the first failing point's [`SweepError`]; completed points
    /// stay journaled and failed points get a typed failure record
    /// ([`FailureKind`]), so a resume replays the former and retries the
    /// latter.
    pub fn try_run_rows<J, L, F, E>(
        &self,
        jobs: Vec<J>,
        label: L,
        work: F,
    ) -> Result<Vec<Vec<String>>, SweepError>
    where
        J: Send,
        L: Fn(&J) -> String + Sync,
        F: Fn(J) -> Result<Rows, E> + Sync,
        E: Into<JobError>,
    {
        let base = self.next_id.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let mut slots: Vec<Option<Rows>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(u64, usize, J)> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            let id = base + i as u64;
            if let Some(rows) = self.done.get(&id) {
                slots.push(Some(rows.clone()));
            } else {
                slots.push(None);
                pending.push((id, i, job));
            }
        }
        let ids: Vec<u64> = pending.iter().map(|(id, _, _)| *id).collect();
        // `run`, not `try_run`: every job's outcome is needed so each
        // failure (not just the first) gets its typed journal record.
        let outcomes = self.pool.run(
            pending,
            |(_, _, job)| label(job),
            |(id, i, job)| {
                let rows = work(job).map_err(Into::into)?;
                if let Some(journal) = &self.journal {
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(id, &rows)
                        .map_err(|e| JobError::Failed(format!("journal write: {e}")))?;
                }
                Ok::<_, JobError>((i, rows))
            },
        );
        let mut first_err: Option<SweepError> = None;
        for (outcome, id) in outcomes.into_iter().zip(ids) {
            match outcome {
                Ok((i, rows)) => slots[i] = Some(rows),
                Err(err) => {
                    if let (Some(journal), Some(kind)) =
                        (&self.journal, FailureKind::of(&err.error))
                    {
                        let message = format!("{}: {}", err.label, err.error);
                        // Best-effort: a failed failure record just means
                        // the point re-runs without its diagnosis.
                        let _ = journal
                            .lock()
                            .expect("journal lock")
                            .append_failure(id, kind, &message);
                    }
                    first_err.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        Ok(slots
            .into_iter()
            .flat_map(|s| s.expect("done or freshly run: every slot is filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn rowset(tag: &str) -> Rows {
        vec![vec![tag.to_owned(), "1".to_owned()]]
    }

    #[test]
    fn bare_context_runs_everything_in_order() {
        let ctx = SweepCtx::bare(Pool::new(4));
        let rows = ctx
            .try_run_rows(
                (0..10u32).collect(),
                |j| format!("j{j}"),
                |j| Ok::<_, String>(vec![vec![j.to_string()]]),
            )
            .unwrap();
        assert_eq!(
            rows,
            (0..10).map(|j| vec![j.to_string()]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn journaled_jobs_are_replayed_not_rerun() {
        let dir = std::env::temp_dir().join("stcc-sweep-test-replay");
        let path = dir.join("x.tiny.journal");
        let _ = fs::remove_file(&path);
        // Seed the journal with job 1's rows — but a *sentinel* payload a
        // fresh run would never produce, proving the journal is the source.
        let (mut j, _) = Journal::begin(&path, 42, false).unwrap();
        j.append(1, &rowset("from-journal")).unwrap();
        drop(j);
        let (j, load) = Journal::begin(&path, 42, true).unwrap();
        let ctx = SweepCtx::with_journal(Pool::new(2), j, load);
        let rows = ctx
            .try_run_rows(
                vec!["a", "b", "c"],
                |j| (*j).to_owned(),
                |j| Ok::<_, String>(rowset(&format!("ran-{j}"))),
            )
            .unwrap();
        assert_eq!(rows[0][0], "ran-a");
        assert_eq!(rows[1][0], "from-journal", "job 1 came from the journal");
        assert_eq!(rows[2][0], "ran-c");
        // Jobs a and c were appended, so a second resume replays all three.
        let (j, load) = Journal::begin(&path, 42, true).unwrap();
        assert_eq!(load.done.len(), 3);
        let ctx = SweepCtx::with_journal(Pool::new(2), j, load);
        assert_eq!(ctx.resumed_jobs(), 3);
        let rows = ctx
            .try_run_rows(
                vec!["a", "b", "c"],
                |j| (*j).to_owned(),
                |_| Err::<Rows, _>("must not re-run".to_owned()),
            )
            .unwrap();
        assert_eq!(rows[1][0], "from-journal");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ids_advance_across_multiple_sweeps_in_one_context() {
        let dir = std::env::temp_dir().join("stcc-sweep-test-multi");
        let path = dir.join("m.tiny.journal");
        let _ = fs::remove_file(&path);
        let (j, load) = Journal::begin(&path, 7, false).unwrap();
        let ctx = SweepCtx::with_journal(Pool::new(1), j, load);
        ctx.try_run_rows(
            vec![0u32, 1],
            |j| j.to_string(),
            |j| Ok::<_, String>(rowset(&format!("first-{j}"))),
        )
        .unwrap();
        ctx.try_run_rows(
            vec![0u32],
            |j| j.to_string(),
            |j| Ok::<_, String>(rowset(&format!("second-{j}"))),
        )
        .unwrap();
        let (_, load) = Journal::begin(&path, 7, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(load.done[&2], rowset("second-0"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failures_are_journaled_typed_and_retried_on_resume() {
        let dir = std::env::temp_dir().join("stcc-sweep-test-failrec");
        let path = dir.join("f.tiny.journal");
        let _ = fs::remove_file(&path);
        let (j, load) = Journal::begin(&path, 99, false).unwrap();
        let ctx = SweepCtx::with_journal(Pool::new(2), j, load);
        // Job "b" times out, job "p" panics; "a" and "c" succeed. All four
        // outcomes must land in the journal even though only the first
        // failure is reported.
        let err = ctx
            .try_run_rows(
                vec!["a", "b", "p", "c"],
                |j| (*j).to_owned(),
                |j| match j {
                    "b" => Err(JobError::TimedOut("wedged at cycle 7".into())),
                    "p" => panic!("worker exploded"),
                    other => Ok(rowset(&format!("ran-{other}"))),
                },
            )
            .unwrap_err();
        assert_eq!(err.label, "b", "lowest-index failure is reported");
        assert!(matches!(err.error, JobError::TimedOut(_)));
        // Resume: successes replay, both failures come back typed and are
        // re-run (they are not in `done`).
        let (j, load) = Journal::begin(&path, 99, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(load.failed.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(load.failed[&1].kind, FailureKind::TimedOut);
        assert!(load.failed[&1].message.contains("wedged at cycle 7"));
        assert_eq!(load.failed[&2].kind, FailureKind::Panicked);
        assert!(load.failed[&2].message.contains("worker exploded"));
        let ctx = SweepCtx::with_journal(Pool::new(2), j, load);
        assert_eq!(ctx.resumed_jobs(), 2);
        assert_eq!(ctx.retried_jobs(), 2);
        let rows = ctx
            .try_run_rows(
                vec!["a", "b", "p", "c"],
                |j| (*j).to_owned(),
                |j| match j {
                    // This time they succeed: the retry supersedes the
                    // failure records.
                    "b" | "p" => Ok::<_, JobError>(rowset(&format!("retried-{j}"))),
                    other => Ok(rowset(&format!("must-not-rerun-{other}"))),
                },
            )
            .unwrap();
        assert_eq!(rows[0][0], "ran-a", "success replayed from journal");
        assert_eq!(rows[1][0], "retried-b");
        assert_eq!(rows[2][0], "retried-p");
        let (_, load) = Journal::begin(&path, 99, true).unwrap();
        assert_eq!(load.done.len(), 4);
        assert!(load.failed.is_empty());
        fs::remove_file(&path).unwrap();
    }
}
