//! Resumable sweep execution: a [`Pool`] plus an optional journal of
//! completed points.
//!
//! Figure modules render their final row strings *inside* the worker
//! closure and fan out through [`SweepCtx::try_run_rows`]; each finished
//! job's rows are journaled (fsync'd) before the job counts as done, and on
//! `--resume` journaled jobs are replayed from disk instead of
//! re-simulated. Jobs are numbered by a context-global counter in issue
//! order, so a binary that runs several sweeps (e.g. `fig7`) gets stable
//! indices across runs.

use crate::journal::{Journal, Rows};
use crate::runner::{JobError, Pool, SweepError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Execution context of one sweep binary: worker pool, resume state and the
/// journal of completed points.
#[derive(Debug)]
pub struct SweepCtx {
    pool: Pool,
    journal: Option<Mutex<Journal>>,
    done: BTreeMap<u64, Rows>,
    next_id: AtomicU64,
}

impl SweepCtx {
    /// A journal-less context (tests and library callers): every job runs.
    #[must_use]
    pub fn bare(pool: Pool) -> SweepCtx {
        SweepCtx {
            pool,
            journal: None,
            done: BTreeMap::new(),
            next_id: AtomicU64::new(0),
        }
    }

    /// A journaling context seeded with previously completed jobs
    /// (see [`Journal::begin`]).
    #[must_use]
    pub fn with_journal(pool: Pool, journal: Journal, done: BTreeMap<u64, Rows>) -> SweepCtx {
        SweepCtx {
            pool,
            journal: Some(Mutex::new(journal)),
            done,
            next_id: AtomicU64::new(0),
        }
    }

    /// The worker pool.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Number of journaled (already completed) jobs this context resumed
    /// with.
    #[must_use]
    pub fn resumed_jobs(&self) -> usize {
        self.done.len()
    }

    /// Runs `work(job)` for every job not already journaled, fanned across
    /// the pool, and returns every job's rendered rows — journaled and
    /// fresh alike — flattened in input order.
    ///
    /// `work` must render the job's final table rows: they are what the
    /// journal replays on resume, byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns the first failing point's [`SweepError`]; completed points
    /// stay journaled, so the sweep can be resumed.
    pub fn try_run_rows<J, L, F, E>(
        &self,
        jobs: Vec<J>,
        label: L,
        work: F,
    ) -> Result<Vec<Vec<String>>, SweepError>
    where
        J: Send,
        L: Fn(&J) -> String + Sync,
        F: Fn(J) -> Result<Rows, E> + Sync,
        E: Into<JobError>,
    {
        let base = self.next_id.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let mut slots: Vec<Option<Rows>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(u64, usize, J)> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            let id = base + i as u64;
            if let Some(rows) = self.done.get(&id) {
                slots.push(Some(rows.clone()));
            } else {
                slots.push(None);
                pending.push((id, i, job));
            }
        }
        let fresh = self.pool.try_run(
            pending,
            |(_, _, job)| label(job),
            |(id, i, job)| {
                let rows = work(job).map_err(Into::into)?;
                if let Some(journal) = &self.journal {
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(id, &rows)
                        .map_err(|e| JobError::Failed(format!("journal write: {e}")))?;
                }
                Ok::<_, JobError>((i, rows))
            },
        )?;
        for (i, rows) in fresh {
            slots[i] = Some(rows);
        }
        Ok(slots
            .into_iter()
            .flat_map(|s| s.expect("done or freshly run: every slot is filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn rowset(tag: &str) -> Rows {
        vec![vec![tag.to_owned(), "1".to_owned()]]
    }

    #[test]
    fn bare_context_runs_everything_in_order() {
        let ctx = SweepCtx::bare(Pool::new(4));
        let rows = ctx
            .try_run_rows(
                (0..10u32).collect(),
                |j| format!("j{j}"),
                |j| Ok::<_, String>(vec![vec![j.to_string()]]),
            )
            .unwrap();
        assert_eq!(
            rows,
            (0..10).map(|j| vec![j.to_string()]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn journaled_jobs_are_replayed_not_rerun() {
        let dir = std::env::temp_dir().join("stcc-sweep-test-replay");
        let path = dir.join("x.tiny.journal");
        let _ = fs::remove_file(&path);
        // Seed the journal with job 1's rows — but a *sentinel* payload a
        // fresh run would never produce, proving the journal is the source.
        let (mut j, _) = Journal::begin(&path, 42, false).unwrap();
        j.append(1, &rowset("from-journal")).unwrap();
        drop(j);
        let (j, done) = Journal::begin(&path, 42, true).unwrap();
        let ctx = SweepCtx::with_journal(Pool::new(2), j, done);
        let rows = ctx
            .try_run_rows(
                vec!["a", "b", "c"],
                |j| (*j).to_owned(),
                |j| Ok::<_, String>(rowset(&format!("ran-{j}"))),
            )
            .unwrap();
        assert_eq!(rows[0][0], "ran-a");
        assert_eq!(rows[1][0], "from-journal", "job 1 came from the journal");
        assert_eq!(rows[2][0], "ran-c");
        // Jobs a and c were appended, so a second resume replays all three.
        let (j, done) = Journal::begin(&path, 42, true).unwrap();
        assert_eq!(done.len(), 3);
        let ctx = SweepCtx::with_journal(Pool::new(2), j, done);
        assert_eq!(ctx.resumed_jobs(), 3);
        let rows = ctx
            .try_run_rows(
                vec!["a", "b", "c"],
                |j| (*j).to_owned(),
                |_| Err::<Rows, _>("must not re-run".to_owned()),
            )
            .unwrap();
        assert_eq!(rows[1][0], "from-journal");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ids_advance_across_multiple_sweeps_in_one_context() {
        let dir = std::env::temp_dir().join("stcc-sweep-test-multi");
        let path = dir.join("m.tiny.journal");
        let _ = fs::remove_file(&path);
        let (j, done) = Journal::begin(&path, 7, false).unwrap();
        let ctx = SweepCtx::with_journal(Pool::new(1), j, done);
        ctx.try_run_rows(
            vec![0u32, 1],
            |j| j.to_string(),
            |j| Ok::<_, String>(rowset(&format!("first-{j}"))),
        )
        .unwrap();
        ctx.try_run_rows(
            vec![0u32],
            |j| j.to_string(),
            |j| Ok::<_, String>(rowset(&format!("second-{j}"))),
        )
        .unwrap();
        let (_, done) = Journal::begin(&path, 7, true).unwrap();
        assert_eq!(done.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(done[&2], rowset("second-0"));
        fs::remove_file(&path).unwrap();
    }
}
