use crate::runner::{active_budget, JobError};
use crate::Scale;
use faults::FaultPlan;
use sideband::SidebandConfig;
use simstats::{GaugeSeries, RunSummary, WindowSeries};
use stcc::{FaultReport, LivelockDiag, Scheme, SimConfig, Simulation, DEFAULT_LIVELOCK_WINDOW};
use stcc::{RunGuard, TuneConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use std::{fs, io};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

/// The [`RunGuard`] for the job running on this worker thread: the default
/// livelock window (overridable via `STCC_LIVELOCK_WINDOW`; `0` disables)
/// plus whatever cycle/wall-clock budget the pool published
/// ([`crate::runner::JobBudget`]).
fn job_guard() -> RunGuard {
    let (deadline, max_cycles) = active_budget();
    let livelock_window = std::env::var("STCC_LIVELOCK_WINDOW")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Some(DEFAULT_LIVELOCK_WINDOW), |w| (w > 0).then_some(w));
    RunGuard {
        livelock_window,
        max_cycles,
        deadline,
    }
}

/// Checkpoint cadence from the environment: write a snapshot every
/// `STCC_CKPT_EVERY` cycles (0/unset disables) into `STCC_CKPT_DIR`
/// (default `checkpoints/`).
fn ckpt_cadence() -> Option<(u64, PathBuf)> {
    let every = std::env::var("STCC_CKPT_EVERY").ok()?.parse::<u64>().ok()?;
    if every == 0 {
        return None;
    }
    let dir =
        std::env::var("STCC_CKPT_DIR").map_or_else(|_| PathBuf::from("checkpoints"), PathBuf::from);
    Some((every, dir))
}

fn livelock_diag(sim: &Simulation, window: u64) -> LivelockDiag {
    let net = sim.network();
    LivelockDiag {
        cycle: sim.now(),
        window,
        live_packets: net.live_packets(),
        full_buffers: net.full_buffer_count(),
        token_queue: net.token_queue_len(),
        recovery_active: net.recovery_active(),
        last_progress_at: net.last_progress_at(),
        last_delivery_at: net.last_delivery_at(),
        delivered_packets: net.counters().delivered_packets,
    }
}

/// Atomically writes this job's snapshot (one file per job, keyed by a hash
/// of its label; overwritten at every cadence point). The temp name is
/// unique per process and writer so that two jobs whose labels collide
/// (e.g. fig4's two tuner variants share a point label) can never
/// interleave bytes in one temp file — each rename publishes a complete
/// snapshot, last writer wins.
fn write_checkpoint(dir: &Path, label: &str, sim: &Simulation) -> io::Result<()> {
    static WRITER: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let key = checkpoint::fnv1a64(label.as_bytes());
    let tmp = dir.join(format!(
        "ckpt-{key:016x}.{}-{}.tmp",
        std::process::id(),
        WRITER.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, sim.checkpoint())?;
    fs::rename(&tmp, dir.join(format!("ckpt-{key:016x}.bin")))
}

/// Steps `sim` to its configured end under the worker's [`RunGuard`],
/// calling `after_step` after every cycle (series sampling), honoring the
/// `STCC_CKPT_EVERY` checkpoint cadence and bailing promptly on SIGINT.
///
/// A guarded drive that completes is bit-identical to
/// [`Simulation::run_to_end`]: the guard and the checkpoints only observe.
pub(crate) fn drive(
    sim: &mut Simulation,
    label: &str,
    mut after_step: impl FnMut(&mut Simulation),
) -> Result<(), JobError> {
    let guard = job_guard();
    let cadence = ckpt_cadence();
    let cycles = sim.config().cycles;
    let mut stepped: u64 = 0;
    while sim.now() < cycles {
        if let Some(max) = guard.max_cycles {
            if stepped >= max {
                return Err(JobError::TimedOut(format!(
                    "{label}: cycle budget ({max}) exhausted at cycle {}",
                    sim.now()
                )));
            }
        }
        if stepped.is_multiple_of(1024) {
            if crate::sigint::interrupted() {
                return Err(JobError::Interrupted);
            }
            if let Some(deadline) = guard.deadline {
                if Instant::now() >= deadline {
                    return Err(JobError::TimedOut(format!(
                        "{label}: wall-clock budget exhausted at cycle {}",
                        sim.now()
                    )));
                }
            }
        }
        sim.step();
        stepped += 1;
        after_step(sim);
        if let Some(window) = guard.livelock_window {
            if sim.network().livelocked(window) {
                return Err(JobError::TimedOut(format!(
                    "{label}: livelock: {}",
                    livelock_diag(sim, window)
                )));
            }
        }
        if let Some((every, dir)) = &cadence {
            if sim.now().is_multiple_of(*every) && sim.now() < cycles {
                write_checkpoint(dir, label, sim)
                    .map_err(|e| JobError::Failed(format!("{label}: checkpoint write: {e}")))?;
            }
        }
    }
    Ok(())
}

/// The measurements of one sweep point, in the units the paper plots.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Offered load, packets/node/cycle.
    pub offered: f64,
    /// Delivered bandwidth, packets/node/cycle (normalized accepted
    /// traffic).
    pub tput_packets: f64,
    /// Delivered bandwidth, flits/node/cycle.
    pub tput_flits: f64,
    /// Mean network latency (cycles), `NaN` if nothing was delivered.
    pub latency: f64,
    /// Mean end-to-end latency including source queueing (cycles).
    pub latency_total: f64,
    /// Packets delivered via Disha recovery during the measured window.
    pub recovered: u64,
    /// Injection-gate denials during the measured window.
    pub throttled: u64,
    /// Jain's fairness index over per-source delivered packets (1.0 =
    /// perfectly equal service).
    pub fairness: f64,
}

/// Runs one simulation (guarded; see [`drive`]) and condenses its summary.
///
/// # Errors
///
/// Returns a typed [`JobError`] naming the offending point on an invalid
/// configuration, a summary taken before warm-up, a tripped
/// livelock/budget guard ([`JobError::TimedOut`]) or SIGINT
/// ([`JobError::Interrupted`]); the error crosses
/// [`crate::runner::Pool`] worker threads untouched.
pub fn try_run_point(cfg: SimConfig) -> Result<PointResult, JobError> {
    let label = point_label(&cfg);
    let mut sim = Simulation::new(cfg)
        .map_err(|e| JobError::Failed(format!("bad experiment ({label}): {e}")))?;
    drive(&mut sim, &label, |_| {})?;
    report_stage_stats(&label, &sim);
    let s = sim
        .summary()
        .map_err(|e| JobError::Failed(format!("summary failed ({label}): {e}")))?;
    Ok(condense(&s))
}

/// Runs one simulation and condenses its summary.
///
/// # Panics
///
/// Panics on an invalid configuration (the harness constructs only valid
/// ones; the error message names the offender). Worker code should prefer
/// [`try_run_point`].
#[must_use]
pub fn run_point(cfg: SimConfig) -> PointResult {
    try_run_point(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one simulation — under a fault plan when one is given — and
/// condenses its summary together with the run's fault/degradation report
/// (which carries the controller's full decision counters even on a
/// fault-free run).
///
/// # Errors
///
/// Returns a typed [`JobError`] naming the offending point on an invalid
/// configuration or fault plan, a tripped guard, or SIGINT.
pub fn try_run_point_instrumented(
    cfg: SimConfig,
    plan: Option<FaultPlan>,
) -> Result<(PointResult, FaultReport), JobError> {
    let label = point_label(&cfg);
    let mut sim = match plan {
        Some(plan) => Simulation::with_faults(cfg, plan),
        None => Simulation::new(cfg),
    }
    .map_err(|e| JobError::Failed(format!("bad experiment ({label}): {e}")))?;
    drive(&mut sim, &label, |_| {})?;
    report_stage_stats(&label, &sim);
    let report = sim.fault_report();
    let s = sim
        .summary()
        .map_err(|e| JobError::Failed(format!("summary failed ({label}): {e}")))?;
    Ok((condense(&s), report))
}

/// Runs one simulation under an installed fault plan and condenses its
/// summary together with the run's fault/degradation counters.
///
/// # Errors
///
/// Returns a typed [`JobError`] naming the offending point on an invalid
/// configuration or fault plan, a tripped guard, or SIGINT.
pub fn try_run_point_with_faults(
    cfg: SimConfig,
    plan: FaultPlan,
) -> Result<(PointResult, FaultReport), JobError> {
    try_run_point_instrumented(cfg, Some(plan))
}

/// Runs one simulation under an installed fault plan and condenses its
/// summary together with the run's fault/degradation counters.
///
/// # Panics
///
/// Panics on an invalid configuration or fault plan (the harness constructs
/// only valid ones). Worker code should prefer
/// [`try_run_point_with_faults`].
#[must_use]
pub fn run_point_with_faults(cfg: SimConfig, plan: FaultPlan) -> (PointResult, FaultReport) {
    try_run_point_with_faults(cfg, plan).unwrap_or_else(|e| panic!("{e}"))
}

/// Whether per-stage work-share reporting is on (`STCC_STAGE_STATS=1`).
///
/// Unset, empty and `0` disable it; anything else is reported (once per
/// run, to stderr) and treated as off rather than silently accepted.
fn stage_stats_enabled(label: &str) -> bool {
    match std::env::var("STCC_STAGE_STATS") {
        Ok(v) if v == "1" => true,
        Ok(v) if v.is_empty() || v == "0" => false,
        Ok(v) => {
            eprintln!("stage-stats ({label}): ignoring STCC_STAGE_STATS={v} (expected 0 or 1)");
            false
        }
        Err(_) => false,
    }
}

/// Prints the finished run's per-stage work breakdown
/// ([`wormsim::StageCycles`]) to stderr when `STCC_STAGE_STATS=1`.
/// Diagnostics only: the shares never enter a figure's CSV.
fn report_stage_stats(label: &str, sim: &Simulation) {
    if !stage_stats_enabled(label) {
        return;
    }
    let stages = sim.network().counters().stage_cycles();
    let total = stages.total();
    if total == 0 {
        eprintln!("stage-stats ({label}): no stage work recorded");
        return;
    }
    let share = |v: u64| 100.0 * (v as f64) / (total as f64);
    eprintln!(
        "stage-stats ({label}): inject {:.1}% route {:.1}% starvation {:.1}% \
         switch {:.1}% drain {:.1}% ({total} visits over {} cycles)",
        share(stages.inject),
        share(stages.route),
        share(stages.starvation),
        share(stages.switch),
        share(stages.drain),
        sim.now()
    );
}

pub(crate) fn point_label(cfg: &SimConfig) -> String {
    format!(
        "{} {} @ {:.4}",
        cfg.scheme.label(),
        cfg.workload.phases()[0].pattern.name(),
        cfg.workload.offered_rate_at(cfg.warmup)
    )
}

fn condense(s: &RunSummary) -> PointResult {
    PointResult {
        offered: s.offered_rate,
        tput_packets: s.throughput_packets(),
        tput_flits: s.throughput_flits(),
        latency: s.network_latency.mean().unwrap_or(f64::NAN),
        latency_total: s.total_latency.mean().unwrap_or(f64::NAN),
        recovered: s.recovered_packets,
        throttled: s.throttled_injections,
        fairness: s.fairness,
    }
}

/// Time-resolved measurements of one run (Figures 4 and 7).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    /// Window width used for the throughput series, in cycles.
    pub window: u64,
    /// Node count (for normalization).
    pub nodes: usize,
    /// Delivered flits per window.
    pub tput: WindowSeries,
    /// Self-tuner threshold samples (empty for other schemes).
    pub threshold: GaugeSeries,
    /// Full-buffer census samples (one per window).
    pub full_buffers: GaugeSeries,
    /// Mean network latency over the whole run (cycles).
    pub latency: f64,
    /// Mean end-to-end latency over the whole run (cycles).
    pub latency_total: f64,
    /// Packets recovered via the deadlock network.
    pub recovered: u64,
}

/// Runs one simulation collecting windowed time series (no warm-up
/// exclusion on the series; the latency means respect the configured
/// warm-up).
///
/// # Errors
///
/// Returns a typed [`JobError`] naming the offending point on an invalid
/// configuration, a summary taken before warm-up, a tripped guard, or
/// SIGINT.
pub fn try_run_series(cfg: SimConfig, window: u64) -> Result<SeriesResult, JobError> {
    let label = point_label(&cfg);
    let mut sim = Simulation::new(cfg)
        .map_err(|e| JobError::Failed(format!("bad experiment ({label}): {e}")))?;
    let nodes = sim.network().torus().node_count();
    let mut tput = WindowSeries::new(window);
    let mut threshold = GaugeSeries::new();
    let mut full = GaugeSeries::new();
    let mut last_flits = 0u64;
    drive(&mut sim, &label, |sim| {
        let now = sim.now() - 1;
        let cum = sim.network().delivered_flits_cum();
        tput.add(now, cum - last_flits);
        last_flits = cum;
        if now.is_multiple_of(window) {
            if let Some(t) = sim.tuned() {
                if let Some(v) = t.threshold() {
                    threshold.sample(now, v);
                }
            }
            full.sample(now, f64::from(sim.network().full_buffer_count()));
        }
    })?;
    report_stage_stats(&label, &sim);
    let s = sim
        .summary()
        .map_err(|e| JobError::Failed(format!("summary failed ({label}): {e}")))?;
    Ok(SeriesResult {
        window,
        nodes,
        tput,
        threshold,
        full_buffers: full,
        latency: s.network_latency.mean().unwrap_or(f64::NAN),
        latency_total: s.total_latency.mean().unwrap_or(f64::NAN),
        recovered: s.recovered_packets,
    })
}

/// Runs one simulation collecting windowed time series.
///
/// # Panics
///
/// Panics on an invalid configuration. Worker code should prefer
/// [`try_run_series`].
#[must_use]
pub fn run_series(cfg: SimConfig, window: u64) -> SeriesResult {
    try_run_series(cfg, window).unwrap_or_else(|e| panic!("{e}"))
}

/// The injection-rate sweep of the paper's load/throughput plots
/// (log-spaced from 0.001 to 0.1 packets/node/cycle).
#[must_use]
pub fn sweep_rates() -> Vec<f64> {
    vec![
        0.001, 0.0015, 0.002, 0.003, 0.005, 0.007, 0.010, 0.014, 0.020, 0.028, 0.040, 0.056, 0.080,
        0.100,
    ]
}

/// The sweep actually run at a given scale: the full 14 points at paper
/// scale, a 9-point subset otherwise (wall-clock economy on one core; the
/// subset still brackets the saturation cliff).
#[must_use]
pub fn sweep_rates_for(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => sweep_rates(),
        Scale::Reduced => {
            vec![
                0.001, 0.002, 0.005, 0.010, 0.014, 0.020, 0.028, 0.056, 0.100,
            ]
        }
        Scale::Smoke => vec![0.001, 0.005, 0.014, 0.028, 0.056, 0.100],
        // Golden snapshots: three points bracketing the knee are enough to
        // pin determinism while keeping the committed files small.
        Scale::Tiny => vec![0.005, 0.028, 0.100],
    }
}

/// Which network the figures run on: the paper's 16-ary 2-cube, or a
/// small 8-ary 2-cube used by the committed golden snapshots (fast enough
/// to re-simulate inside the test suite).
///
/// The preset bundles everything that must stay mutually consistent when
/// the topology changes: the side-band's radix (and hence its gather
/// period), the tuner's side-band, and Figure 5's static thresholds
/// (rescaled to the same occupancy fractions of the smaller buffer pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetPreset {
    /// The paper's 16-ary 2-cube (256 nodes, 3072 VC buffers).
    #[default]
    Paper,
    /// An 8-ary 2-cube (64 nodes, 768 VC buffers) for golden tests.
    Small,
}

impl NetPreset {
    /// The network configuration.
    #[must_use]
    pub fn net(self, deadlock: DeadlockMode) -> NetConfig {
        match self {
            NetPreset::Paper => NetConfig::paper(deadlock),
            NetPreset::Small => NetConfig::small(deadlock),
        }
    }

    /// The matching side-band configuration (radix follows the torus).
    #[must_use]
    pub fn sideband(self) -> SidebandConfig {
        SidebandConfig {
            radix: match self {
                NetPreset::Paper => 16,
                NetPreset::Small => 8,
            },
            ..SidebandConfig::paper()
        }
    }

    /// The matching self-tuned scheme.
    #[must_use]
    pub fn tuned(self) -> Scheme {
        Scheme::Tuned(TuneConfig {
            sideband: self.sideband(),
            ..TuneConfig::paper()
        })
    }

    /// Figure 5's static thresholds, in full buffers: the paper's 250/50
    /// (8% / 1.6% of 3072) rescaled to the preset's buffer pool.
    #[must_use]
    pub fn static_thresholds(self) -> [u32; 2] {
        match self {
            NetPreset::Paper => [250, 50],
            // Same occupancy fractions of 768 buffers.
            NetPreset::Small => [62, 12],
        }
    }

    /// Parses `paper` / `small`.
    #[must_use]
    pub fn parse(s: &str) -> Option<NetPreset> {
        match s {
            "paper" => Some(NetPreset::Paper),
            "small" => Some(NetPreset::Small),
            _ => None,
        }
    }

    /// Label used in messages.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetPreset::Paper => "paper",
            NetPreset::Small => "small",
        }
    }
}

/// Builds the [`SimConfig`] for one steady-load sweep point.
#[must_use]
pub fn steady_config(
    net: NetConfig,
    scheme: Scheme,
    pattern: Pattern,
    rate: f64,
    scale: Scale,
    seed: u64,
) -> SimConfig {
    SimConfig {
        net,
        workload: Workload::steady(pattern, Process::bernoulli(rate)),
        scheme,
        cycles: scale.cycles(),
        warmup: scale.warmup(),
        seed,
    }
}
