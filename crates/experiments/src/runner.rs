//! Deterministic parallel sweep runner.
//!
//! The paper's evaluation is a grid of independent (scheme × load ×
//! pattern) simulations, so the sweeps are embarrassingly parallel. This
//! module fans a list of jobs out across a fixed-size [`std::thread`] pool
//! (hermetic — no external dependencies) while keeping the output
//! **bit-identical to a sequential run**:
//!
//! - every job is a pure function of its own inputs (each simulation owns
//!   its RNG, seeded from the job's config — nothing is shared),
//! - each job writes into its own pre-allocated result slot, so the output
//!   order is the input order regardless of which worker ran what when,
//! - panics inside a job are caught per-slot and surfaced as
//!   [`JobError::Panicked`] instead of poisoning the whole sweep.
//!
//! The golden tests in `tests/golden.rs` lock this guarantee down: the
//! committed reference CSVs must match byte-for-byte at `--jobs 1`, `2`
//! and `8`.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why one job of a sweep produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job returned an error (e.g. an invalid configuration).
    Failed(String),
    /// The job panicked; the payload is the panic message.
    Panicked(String),
    /// The job's watchdog fired: a livelocked simulation or an exhausted
    /// cycle/wall-clock budget (see [`JobBudget`]); the payload is the
    /// diagnostic.
    TimedOut(String),
    /// The sweep was interrupted (SIGINT) before this job ran; completed
    /// points are journaled, so the sweep can be resumed with `--resume`.
    Interrupted,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(m) => write!(f, "job failed: {m}"),
            JobError::Panicked(m) => write!(f, "job panicked: {m}"),
            JobError::TimedOut(m) => write!(f, "job timed out: {m}"),
            JobError::Interrupted => f.write_str("interrupted before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<String> for JobError {
    fn from(m: String) -> Self {
        JobError::Failed(m)
    }
}

/// Per-job soft deadlines, enforced cooperatively by the guarded run
/// helpers (`try_run_point` & friends) on whichever worker thread picks the
/// job up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobBudget {
    /// Wall-clock limit per job, measured from when a worker starts it.
    pub wall: Option<Duration>,
    /// Simulated-cycle limit per job.
    pub cycles: Option<u64>,
}

impl JobBudget {
    /// The unlimited budget.
    #[must_use]
    pub fn none() -> Self {
        JobBudget::default()
    }

    fn is_none(&self) -> bool {
        self.wall.is_none() && self.cycles.is_none()
    }
}

thread_local! {
    // (wall-clock deadline, remaining-cycle budget) of the job currently
    // running on this worker thread.
    static ACTIVE_BUDGET: Cell<(Option<Instant>, Option<u64>)> = const { Cell::new((None, None)) };
}

/// The deadline and cycle budget of the job currently running on this
/// thread (both `None` outside a budgeted [`Pool::run`]). Guarded
/// simulation helpers fold this into their [`stcc::RunGuard`].
#[must_use]
pub fn active_budget() -> (Option<Instant>, Option<u64>) {
    ACTIVE_BUDGET.with(Cell::get)
}

/// A sweep-level error: which labelled point failed, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Human-readable label of the failing point.
    pub label: String,
    /// What went wrong.
    pub error: JobError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point '{}': {}", self.label, self.error)
    }
}

impl std::error::Error for SweepError {}

/// A fixed-size worker pool for deterministic fan-out of independent jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
    progress: bool,
    budget: JobBudget,
}

impl Pool {
    /// A pool of exactly `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Pool {
        Pool {
            jobs: jobs.max(1),
            progress: false,
            budget: JobBudget::none(),
        }
    }

    /// A pool sized from the environment: `STCC_JOBS` if set and positive,
    /// else the machine's available parallelism, else 1.
    #[must_use]
    pub fn from_env() -> Pool {
        let jobs = std::env::var("STCC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Pool::new(jobs)
    }

    /// Enables per-job progress lines on stderr (`[k/n] label`).
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> Pool {
        self.progress = on;
        self
    }

    /// Sets per-job soft deadlines. The budget is published to the worker
    /// thread ([`active_budget`]) for the duration of each job; the guarded
    /// simulation helpers turn it into [`JobError::TimedOut`].
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Pool {
        self.budget = budget;
        self
    }

    /// The per-job budget.
    #[must_use]
    pub fn budget(&self) -> JobBudget {
        self.budget
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work(job)` for every job, fanned across the pool, and returns
    /// the results **in input order**.
    ///
    /// `label(job)` names a job for progress/error reporting. Each job's
    /// outcome is independent: a failed or panicked job yields an `Err`
    /// slot without disturbing the others. Once a SIGINT is observed
    /// ([`crate::sigint`]) workers stop claiming jobs; every unstarted
    /// job's slot comes back as [`JobError::Interrupted`].
    pub fn run<J, R, F, L, E>(&self, jobs: Vec<J>, label: L, work: F) -> Vec<Result<R, SweepError>>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> Result<R, E> + Sync,
        L: Fn(&J) -> String + Sync,
        E: Into<JobError>,
    {
        let n = jobs.len();
        let labels: Vec<String> = jobs.iter().map(&label).collect();
        // Jobs move into per-slot cells; workers claim indices from a
        // shared cursor, so job `i`'s result always lands in slot `i`.
        let cells: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<Result<R, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = self.jobs.min(n.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if crate::sigint::interrupted() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = cells[i]
                        .lock()
                        .expect("job cell lock")
                        .take()
                        .expect("each job index is claimed once");
                    if !self.budget.is_none() {
                        let deadline = self.budget.wall.map(|w| Instant::now() + w);
                        ACTIVE_BUDGET.with(|b| b.set((deadline, self.budget.cycles)));
                    }
                    let outcome = match catch_unwind(AssertUnwindSafe(|| work(job))) {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(e)) => Err(e.into()),
                        // `&*payload`, not `&payload`: a `&Box<dyn Any>`
                        // would itself coerce to `&dyn Any` and hide the
                        // real payload behind a second indirection.
                        Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
                    };
                    if !self.budget.is_none() {
                        ACTIVE_BUDGET.with(|b| b.set((None, None)));
                    }
                    *slots[i].lock().expect("result slot lock") = Some(outcome);
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.progress {
                        eprintln!("[{k}/{n}] {}", labels[i]);
                    }
                });
            }
        });

        slots
            .into_iter()
            .zip(labels)
            .map(|(slot, label)| {
                slot.into_inner()
                    .expect("result slot lock")
                    // A slot left unfilled means no worker ever claimed the
                    // job: the sweep was interrupted.
                    .unwrap_or(Err(JobError::Interrupted))
                    .map_err(|error| SweepError { label, error })
            })
            .collect()
    }

    /// Like [`Pool::run`], but fails the whole sweep on the first (lowest
    /// input index) failing job.
    ///
    /// # Errors
    ///
    /// Returns the first failing point's [`SweepError`].
    pub fn try_run<J, R, F, L, E>(
        &self,
        jobs: Vec<J>,
        label: L,
        work: F,
    ) -> Result<Vec<R>, SweepError>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> Result<R, E> + Sync,
        L: Fn(&J) -> String + Sync,
        E: Into<JobError>,
    {
        self.run(jobs, label, work).into_iter().collect()
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = Pool::new(4);
        let out = pool
            .try_run(
                (0..100u64).collect(),
                |j| format!("job{j}"),
                |j| {
                    // Stagger completion so scheduling order differs from
                    // input order.
                    std::thread::sleep(std::time::Duration::from_micros(100 - j));
                    Ok::<_, String>(j * 2)
                },
            )
            .unwrap();
        assert_eq!(out, (0..100).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_pool_sizes() {
        let run = |jobs| {
            Pool::new(jobs)
                .try_run(
                    (0..37u64).collect(),
                    |j| j.to_string(),
                    |j| Ok::<_, String>(j.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
                .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn panic_is_contained_to_its_slot() {
        let pool = Pool::new(2);
        let out = pool.run(
            vec![1, 2, 3],
            |j| format!("p{j}"),
            |j| {
                assert!(j != 2, "boom on {j}");
                Ok::<_, String>(j)
            },
        );
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.label, "p2");
        assert!(matches!(&err.error, JobError::Panicked(m) if m.contains("boom on 2")));
    }

    #[test]
    fn failure_surfaces_first_failing_index() {
        let pool = Pool::new(3);
        let err = pool
            .try_run(
                vec![0, 1, 2, 3],
                |j| format!("p{j}"),
                |j| {
                    if j % 2 == 1 {
                        Err(format!("odd {j}"))
                    } else {
                        Ok(j)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err.label, "p1");
        assert_eq!(err.error, JobError::Failed("odd 1".to_owned()));
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = Pool::new(4)
            .try_run(Vec::<u32>::new(), |_| String::new(), Ok::<u32, String>)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn typed_errors_pass_through_untouched() {
        let pool = Pool::new(2);
        let err = pool
            .try_run(
                vec![0u32],
                |j| format!("t{j}"),
                |_| Err::<u32, _>(JobError::TimedOut("wedged".into())),
            )
            .unwrap_err();
        assert_eq!(err.error, JobError::TimedOut("wedged".into()));
    }

    #[test]
    fn budget_is_published_to_the_worker_thread() {
        let pool = Pool::new(1).with_budget(JobBudget {
            wall: Some(std::time::Duration::from_secs(3600)),
            cycles: Some(42),
        });
        let seen = pool
            .try_run(
                vec![()],
                |()| "b".to_owned(),
                |()| Ok::<_, String>(active_budget()),
            )
            .unwrap();
        let (deadline, cycles) = seen[0];
        assert!(deadline.is_some(), "wall budget becomes a deadline");
        assert_eq!(cycles, Some(42));
        // Cleared once the job is done.
        assert_eq!(active_budget(), (None, None));
    }
}
