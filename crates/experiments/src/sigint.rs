//! Cooperative SIGINT/SIGTERM handling for sweep binaries.
//!
//! A raw, zero-dependency handler (std already links libc, so `signal(2)`
//! is available without adding a crate) that only sets an atomic flag. The
//! pool's workers stop claiming new jobs once the flag is up and the
//! in-flight simulations bail at their next guard check, so an interrupted
//! sweep leaves a valid journal of every completed point instead of a
//! corrupt CSV. SIGTERM — what watchdogs and container runtimes send
//! before escalating to SIGKILL — takes the same clean-flush path as a
//! user's Ctrl-C.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process exit code for a run cut short by SIGINT/SIGTERM (the shell
/// convention `128 + SIGINT`); part of the exit-code contract documented in
/// `EXPERIMENTS.md`.
pub const EXIT_INTERRUPTED: i32 = 130;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Installs the SIGINT and SIGTERM handlers (idempotent; a no-op off
/// Unix). Both signals share one flag: either means "flush and exit 130".
pub fn install() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_signum: i32) {
            INTERRUPTED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is async-signal-safe to install, and the handler
        // only stores to an atomic (itself async-signal-safe).
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Whether a SIGINT or SIGTERM has been received since [`install`].
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Raises the interrupt flag programmatically (what the signal handler
/// does; exposed so tests can exercise the drain path).
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the interrupt flag (test support: the flag is process-global).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}
