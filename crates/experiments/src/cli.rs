use crate::journal::Journal;
use crate::runner::{JobError, Pool, SweepError};
use crate::{NetPreset, Scale, SweepCtx, Table};
use std::path::PathBuf;

/// Shared command-line options of the figure binaries.
///
/// Usage: `figN [--scale paper|reduced|smoke|tiny] [--net paper|small]
/// [--jobs N] [--out DIR] [--seed N] [--resume]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Simulation length preset (default: `reduced`).
    pub scale: Scale,
    /// Network preset (default: the paper's 16-ary 2-cube).
    pub net: NetPreset,
    /// Worker count (default: `STCC_JOBS`, else available parallelism).
    pub jobs: Option<usize>,
    /// Output directory for CSV files (default: `results/`).
    pub out: PathBuf,
    /// Base seed override.
    pub seed: u64,
    /// Resume from this sweep's journal, skipping completed points.
    pub resume: bool,
    /// Step-loop shard count override (default: `STCC_SHARDS`, else 1).
    /// Results are bit-identical for any value, so — like `jobs` — it is
    /// deliberately absent from [`Cli::sweep_fingerprint`].
    pub shards: Option<usize>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Reduced,
            net: NetPreset::Paper,
            jobs: None,
            out: PathBuf::from("results"),
            seed: 1,
            resume: false,
            shards: None,
        }
    }
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or bad values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    cli.scale = Scale::parse(&v)
                        .ok_or_else(|| format!("unknown scale '{v}' (paper|reduced|smoke|tiny)"))?;
                }
                "--net" => {
                    let v = it.next().ok_or("--net needs a value")?;
                    cli.net = NetPreset::parse(&v)
                        .ok_or_else(|| format!("unknown net preset '{v}' (paper|small)"))?;
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad job count '{v}'"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_owned());
                    }
                    cli.jobs = Some(n);
                }
                "--out" => {
                    cli.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cli.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--resume" => cli.resume = true,
                "--shards" => {
                    let v = it.next().ok_or("--shards needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad shard count '{v}'"))?;
                    if n == 0 {
                        return Err("--shards must be at least 1".to_owned());
                    }
                    cli.shards = Some(n);
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale paper|reduced|smoke|tiny] [--net paper|small] \
                         [--jobs N] [--shards N] [--out DIR] [--seed N] [--resume]"
                            .to_owned(),
                    )
                }
                other => return Err(format!("unknown argument '{other}' (try --help)")),
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments, exiting with a message on error.
    ///
    /// A `--shards` override is published as `STCC_SHARDS` here — before
    /// any worker thread exists — so every `Simulation` this process (or
    /// a respawned campaign worker) builds picks it up.
    #[must_use]
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => {
                if let Some(shards) = cli.shards {
                    std::env::set_var("STCC_SHARDS", shards.to_string());
                }
                cli
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The worker pool this invocation asked for: `--jobs` if given, else
    /// `STCC_JOBS`/available parallelism. Progress lines go to stderr.
    #[must_use]
    pub fn pool(&self) -> Pool {
        self.jobs
            .map_or_else(Pool::from_env, Pool::new)
            .with_progress(true)
    }

    /// Prints `table` and writes it to `<out>/<stem>.<scale>.csv`.
    pub fn emit(&self, stem: &str, table: &Table) {
        print!("{}", table.to_text());
        let path = self.out.join(format!("{stem}.{}.csv", self.scale.label()));
        match table.write_csv(&path) {
            Ok(()) => eprintln!("[wrote {}]", path.display()),
            Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
        }
    }

    /// [`Cli::emit`] for a sweep outcome: emits the table, or reports the
    /// failing point and exits 1.
    pub fn emit_or_exit(&self, stem: &str, table: Result<Table, SweepError>) {
        match table {
            Ok(t) => self.emit(stem, &t),
            Err(e) => {
                eprintln!("{stem}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Where this sweep's resume journal lives: next to its CSV.
    #[must_use]
    pub fn journal_path(&self, stem: &str) -> PathBuf {
        self.out
            .join(format!("{stem}.{}.journal", self.scale.label()))
    }

    /// Identity of this sweep for journal matching: a resumed run must have
    /// the same figure, scale, network, seed and harness version, otherwise
    /// its journaled rows describe a different experiment and are ignored.
    #[must_use]
    pub fn sweep_fingerprint(&self, stem: &str) -> u64 {
        checkpoint::fnv1a64(
            format!(
                "{stem}|{}|{}|{}|{}",
                self.scale.label(),
                self.net.label(),
                self.seed,
                env!("CARGO_PKG_VERSION"),
            )
            .as_bytes(),
        )
    }

    /// Runs one figure's sweep crash-safely: installs the SIGINT handler,
    /// opens the journal (honoring `--resume`), hands `generate` a
    /// [`SweepCtx`], and emits the table. On success the journal is removed;
    /// on SIGINT the process exits 130 with a `--resume` hint (the journal
    /// keeps every completed point); on any other failure it exits 1.
    pub fn run_sweep(
        &self,
        stem: &str,
        generate: impl FnOnce(&SweepCtx) -> Result<Table, SweepError>,
    ) {
        crate::sigint::install();
        let journal_path = self.journal_path(stem);
        let ctx = match Journal::begin(&journal_path, self.sweep_fingerprint(stem), self.resume) {
            Ok((journal, load)) => {
                if self.resume && (!load.done.is_empty() || !load.failed.is_empty()) {
                    eprintln!(
                        "[resuming: {} completed points journaled, {} failed points to retry]",
                        load.done.len(),
                        load.failed.len()
                    );
                    for (idx, failure) in &load.failed {
                        eprintln!(
                            "[retrying point {idx}: {} — {}]",
                            failure.kind, failure.message
                        );
                    }
                }
                SweepCtx::with_journal(self.pool(), journal, load)
            }
            Err(e) => {
                eprintln!(
                    "{stem}: cannot open journal {}: {e}",
                    journal_path.display()
                );
                std::process::exit(1);
            }
        };
        match generate(&ctx) {
            Ok(t) => {
                self.emit(stem, &t);
                let _ = std::fs::remove_file(&journal_path);
            }
            Err(SweepError {
                label,
                error: JobError::Interrupted,
            }) => {
                eprintln!(
                    "{stem}: interrupted ({label}); completed points are journaled — \
                     re-run with --resume to continue"
                );
                std::process::exit(crate::sigint::EXIT_INTERRUPTED);
            }
            Err(e) => {
                eprintln!(
                    "{stem}: {e}\n[completed points remain in {}; failed points carry \
                     typed records and will be retried — re-run with --resume]",
                    journal_path.display()
                );
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn defaults() {
        let cli = Cli::parse(args(&[])).unwrap();
        assert_eq!(cli.scale, Scale::Reduced);
        assert_eq!(cli.net, NetPreset::Paper);
        assert_eq!(cli.jobs, None);
        assert_eq!(cli.out, PathBuf::from("results"));
    }

    #[test]
    fn parses_flags() {
        let cli = Cli::parse(args(&[
            "--scale", "smoke", "--out", "/tmp/x", "--seed", "9", "--jobs", "4", "--net", "small",
        ]))
        .unwrap();
        assert_eq!(cli.scale, Scale::Smoke);
        assert_eq!(cli.out, PathBuf::from("/tmp/x"));
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.net, NetPreset::Small);
        assert_eq!(cli.pool().jobs(), 4);
        assert_eq!(cli.shards, None);
        let cli = Cli::parse(args(&["--shards", "4"])).unwrap();
        assert_eq!(cli.shards, Some(4));
    }

    #[test]
    fn parses_resume() {
        assert!(!Cli::parse(args(&[])).unwrap().resume);
        assert!(Cli::parse(args(&["--resume"])).unwrap().resume);
    }

    #[test]
    fn fingerprint_separates_sweeps() {
        let a = Cli::parse(args(&["--scale", "tiny"])).unwrap();
        let b = Cli::parse(args(&["--scale", "tiny", "--seed", "2"])).unwrap();
        assert_ne!(a.sweep_fingerprint("fig4"), a.sweep_fingerprint("fig5"));
        assert_ne!(a.sweep_fingerprint("fig4"), b.sweep_fingerprint("fig4"));
        assert_eq!(a.sweep_fingerprint("fig4"), a.sweep_fingerprint("fig4"));
        assert_eq!(
            a.journal_path("fig4"),
            PathBuf::from("results/fig4.tiny.journal")
        );
    }

    #[test]
    fn rejects_unknown() {
        assert!(Cli::parse(args(&["--bogus"])).is_err());
        assert!(Cli::parse(args(&["--scale", "huge"])).is_err());
        assert!(Cli::parse(args(&["--scale"])).is_err());
        assert!(Cli::parse(args(&["--jobs", "0"])).is_err());
        assert!(Cli::parse(args(&["--jobs", "many"])).is_err());
        assert!(Cli::parse(args(&["--net", "huge"])).is_err());
        assert!(Cli::parse(args(&["--shards", "0"])).is_err());
        assert!(Cli::parse(args(&["--shards", "lots"])).is_err());
    }

    /// `--shards` must not enter the sweep fingerprint: a journal written
    /// at one shard count resumes at any other (results are identical).
    #[test]
    fn fingerprint_ignores_shards() {
        let a = Cli::parse(args(&["--scale", "tiny"])).unwrap();
        let b = Cli::parse(args(&["--scale", "tiny", "--shards", "4"])).unwrap();
        assert_eq!(a.sweep_fingerprint("fig4"), b.sweep_fingerprint("fig4"));
    }
}
