use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-oriented results table, printable as aligned text and
/// writable as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends every row (the flattened output of
    /// [`SweepCtx::try_run_rows`](crate::SweepCtx::try_run_rows)).
    ///
    /// # Panics
    ///
    /// Panics if any row's cell count does not match the header count.
    pub fn extend(&mut self, rows: Vec<Vec<String>>) {
        for row in rows {
            self.push(row);
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for programmatic inspection in tests.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as an aligned plain-text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path` atomically (temp file in the same
    /// directory, then rename), creating parent directories. A crash mid-run
    /// can therefore never leave a truncated CSV behind: readers see either
    /// the previous complete file or the new one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, self.to_csv())?;
        fs::rename(&tmp, path)
    }
}

/// Formats a float with the precision the result tables use.
#[must_use]
pub fn fnum(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else if v == 0.0 {
        "0".to_owned()
    } else if v.abs() < 0.01 {
        format!("{v:.5}")
    } else if v.abs() < 10.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_csv_rendering() {
        let mut t = Table::new("demo", &["a", "rate"]);
        t.push(vec!["x".into(), "0.5".into()]);
        t.push(vec!["longer".into(), "1".into()]);
        let text = t.to_text();
        assert!(text.starts_with("# demo"));
        assert!(text.contains("longer"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("a,rate"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("esc", &["v"]);
        t.push(vec!["a,b".into()]);
        t.push(vec!["q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(f64::NAN), "-");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.00123), "0.00123");
        assert_eq!(fnum(0.25), "0.2500");
        assert_eq!(fnum(152.37), "152.4");
    }
}
