//! Ablation: hop_delay (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit(
        "ablation_hop_delay",
        ablations::hop_delay(cli.scale, &cli.pool()),
    );
}
