//! Ablation: hop_delay (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("ablation_hop_delay", |ctx| {
        ablations::hop_delay(cli.scale, ctx)
    });
}
