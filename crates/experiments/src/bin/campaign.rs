//! `campaign` — the supervised campaign orchestrator.
//!
//! ```text
//! campaign --manifest FILE [--out DIR] [--resume] [--workers N]
//! ```
//!
//! Parses and validates the declarative manifest (see `EXPERIMENTS.md`,
//! "Campaigns"), expands its scenario matrix, and executes every job as an
//! isolated worker process — this same binary re-invoked in the hidden
//! `--job IDX --attempt K` mode — with per-job budgets, deterministic
//! retry backoff, quarantine, and a crash-safe ledger for `--resume`.
//!
//! Exit codes (the contract `scripts/ci.sh` and callers rely on):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | every job completed |
//! | 1    | internal/IO failure (ledger, report write) |
//! | 2    | usage error (bad flags) |
//! | 3    | manifest failed to load or validate |
//! | 4    | campaign completed but quarantined at least one job |
//! | 130  | interrupted by SIGINT/SIGTERM (resume with `--resume`) |

use experiments::campaign::{
    manifest::Manifest, orchestrate, worker_main, CampaignOpts, EXIT_MANIFEST, EXIT_USAGE,
};
use std::path::PathBuf;

const USAGE: &str = "usage: campaign --manifest FILE [--out DIR] [--resume] [--workers N]";

struct Args {
    manifest: PathBuf,
    out: PathBuf,
    resume: bool,
    workers: Option<usize>,
    job: Option<u64>,
    attempt: u32,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut manifest: Option<PathBuf> = None;
    let mut out = PathBuf::from("results/campaign");
    let mut resume = false;
    let mut workers = None;
    let mut job = None;
    let mut attempt = 0;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifest" => {
                manifest = Some(PathBuf::from(it.next().ok_or("--manifest needs a value")?));
            }
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--resume" => resume = true,
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count '{v}'"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
                workers = Some(n);
            }
            "--job" => {
                let v = it.next().ok_or("--job needs a value")?;
                job = Some(v.parse().map_err(|_| format!("bad job index '{v}'"))?);
            }
            "--attempt" => {
                let v = it.next().ok_or("--attempt needs a value")?;
                attempt = v.parse().map_err(|_| format!("bad attempt '{v}'"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}' ({USAGE})")),
        }
    }
    let manifest = manifest.ok_or_else(|| format!("--manifest is required ({USAGE})"))?;
    Ok(Args {
        manifest,
        out,
        resume,
        workers,
        job,
        attempt,
    })
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let text = match std::fs::read_to_string(&args.manifest) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaign: cannot read {}: {e}", args.manifest.display());
            std::process::exit(EXIT_MANIFEST);
        }
    };
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("campaign: manifest error: {e}");
            std::process::exit(EXIT_MANIFEST);
        }
    };
    if let Some(idx) = args.job {
        // Hidden worker mode: run exactly one job in this process.
        std::process::exit(worker_main(&manifest, idx, args.attempt));
    }
    let opts = CampaignOpts {
        manifest: args.manifest,
        out: args.out,
        resume: args.resume,
        workers: args.workers,
    };
    std::process::exit(orchestrate(&text, &manifest, &opts));
}
