//! Ablation: increments (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit(
        "ablation_increments",
        ablations::increments(cli.scale, &cli.pool()),
    );
}
