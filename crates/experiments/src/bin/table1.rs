//! Prints the implemented tuning decision table (Table 1 of the paper).
use experiments::{figures::table1, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit("table1", &table1::generate());
}
