//! Ablation: tuning_period (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("ablation_tuning_period", |ctx| {
        ablations::tuning_period(cli.scale, ctx)
    });
}
