//! Ablation: tuning_period (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit(
        "ablation_tuning_period",
        ablations::tuning_period(cli.scale, &cli.pool()),
    );
}
