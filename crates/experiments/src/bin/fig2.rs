//! Regenerates Figure 2 of the paper (see DESIGN.md §5).
use experiments::{figures::fig2, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig2", |ctx| fig2::generate_on(cli.net, cli.scale, ctx));
}
