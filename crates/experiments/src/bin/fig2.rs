//! Regenerates Figure 2 of the paper (see DESIGN.md §5).
use experiments::{figures::fig2, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit("fig2", &fig2::generate(cli.scale));
}
