//! Ablation: extrapolation (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("ablation_extrapolation", |ctx| {
        ablations::extrapolation(cli.scale, ctx)
    });
}
