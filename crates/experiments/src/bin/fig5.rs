//! Regenerates Figure 5 of the paper (see DESIGN.md §5).
use experiments::{figures::fig5, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig5", |ctx| fig5::generate_on(cli.net, cli.scale, ctx));
}
