//! Regenerates Figure 5 of the paper (see DESIGN.md §5).
use experiments::{figures::fig5, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit("fig5", fig5::generate_on(cli.net, cli.scale, &cli.pool()));
}
