//! Regenerates Figure 4 of the paper (see DESIGN.md §5).
use experiments::{figures::fig4, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig4", |ctx| fig4::generate_on(cli.net, cli.scale, ctx));
}
