//! Regenerates Figure 7 of the paper (see DESIGN.md §5).
use experiments::{figures::fig7, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig7", |ctx| fig7::generate(cli.scale, ctx));
}
