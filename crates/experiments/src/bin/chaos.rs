//! Deterministic chaos harness: seeded random configurations × traffic
//! patterns × fault storms, every trial stepped with invariant audits on
//! and forced through a mid-run checkpoint/restore split whose two halves
//! must finish in bit-identical states.
//!
//! Each trial draws a small random network (16 nodes, so every-cycle-ish
//! audits stay cheap), a scheme, a traffic pattern, and — half the time — a
//! storm of link stalls, hotspots and side-band faults. The trial runs to
//! its midpoint under a periodic full-scan audit, checkpoints, restores the
//! snapshot into a second simulation, then races both halves to the end:
//! any audit violation, restore failure, or divergence between the two
//! final checkpoints fails the run loudly with a one-line minimized repro
//! (`--seed S --trial T` reproduces exactly that trial and nothing else).
//!
//! The harness is crash-safe the same way the figure sweeps are: completed
//! trials are journaled, `--resume` skips them after a kill, and the final
//! report (`<out>/chaos.report`) is byte-identical for a given seed whether
//! the run was interrupted or not — which is itself part of what CI checks.
//!
//! Usage: `chaos [--seed N] [--trials N] [--audit-every N] [--out DIR]
//! [--trial T] [--resume]`.

use experiments::journal::Journal;
use experiments::sigint;
use faults::{FaultPlan, HotspotFault, LinkFault, SidebandFaults};
use sideband::SidebandConfig;
use stcc::{AimdConfig, BbrConfig, DecBitConfig, Scheme, SimConfig, Simulation, TuneConfig};
use std::path::{Path, PathBuf};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

/// 16 nodes: big enough for every deadlock mode and pattern, small enough
/// that a full-scan audit every few cycles costs almost nothing.
const RADIX: usize = 4;
const DIMENSIONS: usize = 2;
const NODES: usize = 16;

#[derive(Debug, Clone)]
struct Args {
    seed: u64,
    trials: u64,
    audit_every: u64,
    out: PathBuf,
    /// Run exactly this one trial (minimized repro mode).
    trial: Option<u64>,
    resume: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 1,
            trials: 16,
            audit_every: 32,
            out: PathBuf::from("results"),
            trial: None,
            resume: false,
        }
    }
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad {name} value '{v}'"))
        };
        match arg.as_str() {
            "--seed" => args.seed = num("--seed")?,
            "--trials" => {
                args.trials = num("--trials")?;
                if args.trials == 0 {
                    return Err("--trials must be at least 1".to_owned());
                }
            }
            "--audit-every" => {
                args.audit_every = num("--audit-every")?;
                if args.audit_every == 0 {
                    return Err("--audit-every must be at least 1".to_owned());
                }
            }
            "--trial" => args.trial = Some(num("--trial")?),
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--resume" => args.resume = true,
            "--help" | "-h" => {
                return Err(
                    "usage: chaos [--seed N] [--trials N] [--audit-every N] [--out DIR] \
                     [--trial T] [--resume]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// SplitMix64: the same generator the traffic crate uses, re-derived here
/// so the harness owns its stream and a repro depends on nothing else.
struct Rng(u64);

impl Rng {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        Self::mix(self.0)
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform draw from a slice.
    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// One trial's fully drawn scenario.
struct Trial {
    cfg: SimConfig,
    plan: Option<FaultPlan>,
    /// Step-loop shard counts for the original and the restored twin —
    /// drawn independently, so the final-checkpoint comparison doubles as
    /// a shard-invariance check (results must not depend on either).
    shards: (usize, usize),
    /// fnv1a64 over the Debug rendering of the scenario: a stable
    /// fingerprint to pin a repro against drift in the drawing code.
    fingerprint: u64,
    describe: String,
}

fn draw_trial(seed: u64, trial: u64) -> Trial {
    let mut rng = Rng(Rng::mix(seed ^ trial.wrapping_mul(0xa076_1d64_78bd_642f)));

    let deadlock = if rng.chance(0.5) {
        DeadlockMode::Avoidance
    } else {
        DeadlockMode::Recovery {
            timeout: rng.pick(&[4, 8]),
        }
    };
    // Avoidance needs an escape VC plus at least one adaptive VC.
    let min_vcs = match deadlock {
        DeadlockMode::Avoidance => 2,
        DeadlockMode::Recovery { .. } => 1,
    };
    let vcs = min_vcs + rng.below(4 - min_vcs as u64) as usize;
    let net = NetConfig {
        radix: RADIX,
        dimensions: DIMENSIONS,
        vcs,
        buf_depth: rng.pick(&[2, 4, 8]),
        packet_len: rng.pick(&[4, 8]),
        hop_latency: rng.pick(&[1, 2]),
        source_queue_cap: 16,
        deadlock,
    };

    let pattern = match rng.below(7) {
        0 => Pattern::UniformRandom,
        1 => Pattern::BitReversal,
        2 => Pattern::PerfectShuffle,
        3 => Pattern::Butterfly,
        4 => Pattern::BitComplement,
        5 => Pattern::Transpose,
        _ => Pattern::Hotspot {
            target: rng.below(NODES as u64) as usize,
            fraction: 0.2 + 0.05 * rng.below(5) as f64,
        },
    };
    let load = 0.03 + 0.01 * rng.below(10) as f64;

    // Draw from the full controller registry: the checkpoint-split and
    // audit properties must hold for every scheme, not just the paper's.
    let sideband = SidebandConfig {
        radix: RADIX,
        ..SidebandConfig::paper()
    };
    let scheme = match rng.below(7) {
        0 => Scheme::Base,
        1 => Scheme::Alo,
        2 => Scheme::Static {
            threshold: 2 + rng.below(40) as u32,
            sideband,
        },
        3 => Scheme::Aimd(AimdConfig {
            sideband,
            ..AimdConfig::paper()
        }),
        4 => Scheme::DecBit(DecBitConfig {
            sideband,
            ..DecBitConfig::paper()
        }),
        5 => Scheme::Bbr(BbrConfig {
            sideband,
            ..BbrConfig::paper()
        }),
        _ => Scheme::Tuned(TuneConfig {
            sideband,
            ..TuneConfig::paper()
        }),
    };

    let cycles = 2_000 + 500 * rng.below(5);
    let cfg = SimConfig {
        net,
        workload: Workload::steady(pattern, Process::bernoulli(load)),
        scheme,
        cycles,
        warmup: 200,
        seed: rng.next(),
    };

    // Half the trials run under a storm whose windows all close before the
    // end, so stalled links can't hold traffic hostage forever.
    let plan = rng.chance(0.5).then(|| {
        let n_links = 1 + rng.below(3);
        let links = (0..n_links)
            .map(|_| {
                let start = 300 + rng.below(500);
                LinkFault {
                    node: rng.below(NODES as u64) as usize,
                    port: rng.below(DIMENSIONS as u64 * 2) as usize,
                    start,
                    end: start + 300 + rng.below(400),
                }
            })
            .collect();
        let hotspots = rng
            .chance(0.5)
            .then(|| {
                let start = 400 + rng.below(400);
                HotspotFault {
                    node: rng.below(NODES as u64) as usize,
                    start,
                    end: start + 300 + rng.below(300),
                }
            })
            .into_iter()
            .collect();
        FaultPlan {
            seed: rng.next(),
            sideband: SidebandFaults {
                loss_rate: 0.1 * rng.below(4) as f64,
                delay_rate: 0.1 * rng.below(3) as f64,
                max_delay: 8,
                corrupt_rate: 0.05 * rng.below(3) as f64,
                corrupt_bits: 2,
            },
            links,
            hotspots,
        }
    });

    // Drawn last so the scenario draws above are unchanged by the shard
    // axis. The trial steps the original at `shards.0` and the restored
    // twin at `shards.1`; both must land on identical bytes.
    let shards = (1 + rng.below(8) as usize, 1 + rng.below(8) as usize);

    let describe = format!(
        "{} {} load={load:.2} vcs={vcs} depth={} plen={} {} cycles={cycles} shards={}/{} {}",
        cfg.scheme.label(),
        cfg.workload.phases()[0].pattern.name(),
        cfg.net.buf_depth,
        cfg.net.packet_len,
        match cfg.net.deadlock {
            DeadlockMode::Avoidance => "avoidance".to_owned(),
            DeadlockMode::Recovery { timeout } => format!("recovery/{timeout}"),
        },
        shards.0,
        shards.1,
        match &plan {
            Some(p) => format!(
                "storm(links={} hotspots={} loss={:.1})",
                p.links.len(),
                p.hotspots.len(),
                p.sideband.loss_rate
            ),
            None => "clean".to_owned(),
        },
    );
    let fingerprint = checkpoint::fnv1a64(format!("{cfg:?}|{plan:?}").as_bytes());
    Trial {
        cfg,
        plan,
        shards,
        fingerprint,
        describe,
    }
}

/// Steps `sim` to `until`, running a full audit every `audit_every` cycles.
/// Returns the first violation report instead of panicking, so the harness
/// can print a repro line and keep its journal intact.
fn step_audited(sim: &mut Simulation, until: u64, audit_every: u64) -> Result<(), String> {
    while sim.now() < until {
        sim.step();
        if sim.now().is_multiple_of(audit_every) {
            let report = sim.audit();
            if !report.is_clean() {
                return Err(format!("{report}"));
            }
        }
    }
    Ok(())
}

/// Runs one trial end to end; `Err` carries a human-readable cause
/// (boxed: the scenario rides along for the repro line).
fn run_trial(seed: u64, trial: u64, audit_every: u64) -> Result<Trial, Box<(Trial, String)>> {
    let t = draw_trial(seed, trial);
    let fail = |t: Trial, msg: String| Err(Box::new((t, msg)));

    let mut sim = match &t.plan {
        Some(p) => Simulation::with_faults(t.cfg.clone(), p.clone()),
        None => Simulation::new(t.cfg.clone()),
    }
    .map_err(|e| {
        Box::new((
            draw_trial(seed, trial),
            format!("scenario rejected by validation: {e}"),
        ))
    })?;
    // The harness audits manually so a violation yields a repro line, not a
    // panic; make sure an ambient STCC_AUDIT doesn't double up.
    sim.set_audit_every(None);
    sim.set_shards(t.shards.0);

    let mid = t.cfg.cycles / 2;
    if let Err(v) = step_audited(&mut sim, mid, audit_every) {
        return fail(t, format!("audit violation before midpoint: {v}"));
    }

    // Fork at the midpoint: the restored half must replay bit-identically.
    let snap = sim.checkpoint();
    let mut twin = match Simulation::restore(t.cfg.clone(), t.plan.clone(), &snap) {
        Ok(s) => s,
        Err(e) => return fail(t, format!("restore of own checkpoint failed: {e}")),
    };
    twin.set_audit_every(None);
    twin.set_shards(t.shards.1);
    // Bounce the original's shard count mid-trial: the persistent worker
    // pool must tear down (join its workers) and rebuild cleanly with
    // traffic in flight. Returning to `shards.0` keeps the back half a
    // genuine cross-count comparison against the twin at `shards.1`.
    sim.set_shards(t.shards.1);
    sim.set_shards(t.shards.0);

    let end = t.cfg.cycles;
    if let Err(v) = step_audited(&mut sim, end, audit_every) {
        return fail(t, format!("audit violation after midpoint (original): {v}"));
    }
    if let Err(v) = step_audited(&mut twin, end, audit_every) {
        return fail(t, format!("audit violation after midpoint (restored): {v}"));
    }
    if sim.checkpoint() != twin.checkpoint() {
        return fail(
            t,
            "restored run diverged from original: final checkpoints differ".to_owned(),
        );
    }
    let report = sim.audit();
    if !report.is_clean() {
        return fail(t, format!("final audit: {report}"));
    }
    Ok(t)
}

fn report_line(trial: u64, t: &Trial) -> String {
    format!(
        "trial {trial:3} fp={:016x} {} ok",
        t.fingerprint, t.describe
    )
}

/// Writes the report atomically (temp + rename) so a kill mid-write can't
/// leave a torn file for the determinism comparison to trip over.
fn write_report(path: &Path, lines: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("report.tmp");
    std::fs::write(&tmp, lines.join("\n") + "\n")?;
    std::fs::rename(&tmp, path)
}

fn fail_loudly(args: &Args, trial: u64, t: &Trial, cause: &str) -> ! {
    eprintln!(
        "CHAOS FAILURE: seed={} trial={trial} fp={:016x} [{}]\n  cause: {cause}\n  \
         repro: cargo run --release -p experiments --bin chaos -- --seed {} --trial {trial}",
        args.seed, t.fingerprint, t.describe, args.seed,
    );
    std::process::exit(1);
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    sigint::install();

    // Repro mode: one trial, no journal, no report.
    if let Some(trial) = args.trial {
        match run_trial(args.seed, trial, args.audit_every) {
            Ok(t) => {
                println!("{}", report_line(trial, &t));
                println!("trial {trial} passed");
            }
            Err(e) => fail_loudly(&args, trial, &e.0, &e.1),
        }
        return;
    }

    let journal_path = args.out.join("chaos.journal");
    let fingerprint = checkpoint::fnv1a64(
        format!(
            "chaos|{}|{}|{}|{}",
            args.seed,
            args.trials,
            args.audit_every,
            env!("CARGO_PKG_VERSION"),
        )
        .as_bytes(),
    );
    let (mut journal, load) = match Journal::begin(&journal_path, fingerprint, args.resume) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("chaos: cannot open journal {}: {e}", journal_path.display());
            std::process::exit(1);
        }
    };
    if args.resume && !load.done.is_empty() {
        eprintln!("[resuming: {} completed trials journaled]", load.done.len());
    }

    let mut lines: Vec<String> = Vec::with_capacity(args.trials as usize);
    for trial in 0..args.trials {
        if sigint::interrupted() {
            eprintln!(
                "chaos: interrupted after {} trials; re-run with --resume to continue",
                lines.len()
            );
            std::process::exit(experiments::sigint::EXIT_INTERRUPTED);
        }
        if let Some(rows) = load.done.get(&trial) {
            // Journaled line from a previous run: reuse verbatim so the
            // resumed report is byte-identical to an uninterrupted one.
            lines.push(rows[0][0].clone());
            continue;
        }
        match run_trial(args.seed, trial, args.audit_every) {
            Ok(t) => {
                let line = report_line(trial, &t);
                eprintln!("{line}");
                if let Err(e) = journal.append(trial, &vec![vec![line.clone()]]) {
                    eprintln!("chaos: cannot journal trial {trial}: {e}");
                    std::process::exit(1);
                }
                lines.push(line);
            }
            Err(e) => fail_loudly(&args, trial, &e.0, &e.1),
        }
    }

    let report_path = args.out.join("chaos.report");
    if let Err(e) = write_report(&report_path, &lines) {
        eprintln!("chaos: cannot write {}: {e}", report_path.display());
        std::process::exit(1);
    }
    let _ = std::fs::remove_file(&journal_path);
    println!(
        "chaos: {} trials passed (seed={}, audit every {} cycles) -> {}",
        args.trials,
        args.seed,
        args.audit_every,
        report_path.display()
    );
}
