//! Controller-zoo head-to-head: every registered controller over every
//! traffic pattern (see DESIGN.md §6).
//!
//! Usage: the shared figure flags plus `--controllers a,b,c` to restrict
//! the roster (names as in `Scheme::by_name`: `base`, `alo`, `tune`,
//! `aimd`, `decbit`, `bbr`, `static-<N>`).
use experiments::{figures::controllers, Cli};
use stcc::Scheme;

fn main() {
    // `--controllers` is this binary's own flag: extract it before the
    // shared parser, which rejects anything it doesn't know.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Option<Vec<String>> = None;
    if let Some(pos) = raw.iter().position(|a| a == "--controllers") {
        if pos + 1 >= raw.len() {
            eprintln!("--controllers needs a comma-separated list (e.g. aimd,bbr)");
            std::process::exit(2);
        }
        let list = raw.remove(pos + 1);
        raw.remove(pos);
        only = Some(list.split(',').map(str::to_owned).collect());
    }
    let cli = match Cli::parse(raw) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}\n       [--controllers name,name,...]");
            std::process::exit(2);
        }
    };
    let schemes = match &only {
        None => controllers::roster(cli.net),
        Some(names) => {
            let sideband = cli.net.sideband();
            names
                .iter()
                .map(|name| {
                    Scheme::by_name(name, &sideband).unwrap_or_else(|| {
                        eprintln!(
                            "unknown controller '{name}' \
                             (base|alo|tune|aimd|decbit|bbr|static-<N>)"
                        );
                        std::process::exit(2);
                    })
                })
                .collect()
        }
    };
    cli.run_sweep("fig_controllers", |ctx| {
        controllers::generate_filtered(cli.net, cli.scale, ctx, &schemes)
    });
}
