//! Regenerates Figure 3 of the paper (see DESIGN.md §5).
use experiments::{figures::fig3, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig3", |ctx| fig3::generate(cli.scale, ctx));
}
