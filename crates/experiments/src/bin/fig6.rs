//! Regenerates Figure 6 of the paper (see DESIGN.md §5).
use experiments::{figures::fig6, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit("fig6", &fig6::generate(cli.scale));
}
