//! Ad-hoc probe: windowed throughput over time for one configuration.
//! Usage: `probe <scheme> <rate> <recovery|avoidance> <cycles>`
use experiments::try_run_series;
use stcc::Simulation;
use stcc::{Scheme, SimConfig};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

/// Reports a usage/configuration error and exits (probe is ad-hoc tooling,
/// but it must fail with a message, not a panic backtrace).
fn bail(msg: &str) -> ! {
    eprintln!("probe: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scheme = match args.first().map(String::as_str) {
        None => Scheme::Base,
        Some(name) => match Scheme::by_name(name, &sideband::SidebandConfig::paper()) {
            Some(s) => s,
            None => bail(&format!(
                "unknown scheme '{name}' (base|alo|tune|aimd|decbit|bbr|static-<N>)"
            )),
        },
    };
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let deadlock = match args.get(2).map(String::as_str) {
        Some("avoidance") => DeadlockMode::Avoidance,
        _ => DeadlockMode::PAPER_RECOVERY,
    };
    let cycles: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let cfg = SimConfig {
        net: NetConfig::paper(deadlock),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(rate)),
        scheme,
        cycles,
        warmup: cycles / 6,
        seed: 42,
    };
    if std::env::var("PROBE_TUNER_DEBUG").is_ok() {
        let mut sim = match Simulation::new(cfg.clone()) {
            Ok(sim) => sim,
            Err(e) => bail(&format!("bad configuration: {e}")),
        };
        let mut last = 0u64;
        while sim.now() < cfg.cycles {
            sim.step();
            if sim.now().is_multiple_of(2000) {
                let cum = sim.network().delivered_flits_cum();
                let tput = (cum - last) as f64 / (2000.0 * 256.0);
                last = cum;
                if let Some(t) = sim.tuned() {
                    let (tm, nm) = t.max_anchor().unwrap_or((f64::NAN, f64::NAN));
                    println!(
                        "t={} tput={:.4} full={} thr={:.0} max={} tmax={:.0} nmax={:.0} resets={}",
                        sim.now(),
                        tput,
                        sim.network().full_buffer_count(),
                        t.threshold().unwrap_or(f64::NAN),
                        t.max_throughput().unwrap_or(0),
                        tm,
                        nm,
                        t.resets()
                    );
                }
            }
        }
        return;
    }
    let r = match try_run_series(cfg, 4000) {
        Ok(r) => r,
        Err(e) => bail(&format!("{e}")),
    };
    println!("t,tput_flits_node_cyc,full_buffers,threshold");
    let fb: Vec<_> = r.full_buffers.points().to_vec();
    let th: Vec<_> = r.threshold.points().to_vec();
    for (i, (t, v)) in r.tput.normalized(r.nodes).enumerate() {
        let f = fb.get(i).map_or(f64::NAN, |&(_, v)| v);
        let h = th.get(i).map_or(f64::NAN, |&(_, v)| v);
        println!("{t},{v:.4},{f},{h:.0}");
    }
    println!(
        "# latency={:.1} latency_total={:.1} recovered={}",
        r.latency, r.latency_total, r.recovered
    );
}
