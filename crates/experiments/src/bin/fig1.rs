//! Regenerates Figure 1 of the paper (see DESIGN.md §5).
use experiments::{figures::fig1, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig1", |ctx| fig1::generate(cli.scale, ctx));
}
