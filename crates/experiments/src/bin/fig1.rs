//! Regenerates Figure 1 of the paper (see DESIGN.md §5).
use experiments::{figures::fig1, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit("fig1", fig1::generate(cli.scale, &cli.pool()));
}
