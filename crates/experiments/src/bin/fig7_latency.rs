//! Prints the bursty-load average latencies quoted in the paper's text.
use experiments::{figures::fig7, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit(
        "fig7_latency",
        fig7::latency_summary(cli.scale, &cli.pool()),
    );
}
