//! Prints the bursty-load average latencies quoted in the paper's text.
use experiments::{figures::fig7, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("fig7_latency", |ctx| fig7::latency_summary(cli.scale, ctx));
}
