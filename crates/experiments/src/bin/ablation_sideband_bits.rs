//! Ablation: sideband_bits (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit_or_exit(
        "ablation_sideband_bits",
        ablations::sideband_bits(cli.scale, &cli.pool()),
    );
}
