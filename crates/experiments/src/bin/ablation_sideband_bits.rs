//! Ablation: sideband_bits (see DESIGN.md experiment index).
use experiments::{figures::ablations, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("ablation_sideband_bits", |ctx| {
        ablations::sideband_bits(cli.scale, ctx)
    });
}
