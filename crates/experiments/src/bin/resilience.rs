//! Fault-injection resilience sweep (see DESIGN.md, "Fault model &
//! degradation"): Base / Static / Tuned under rising side-band snapshot
//! loss.
use experiments::{figures::resilience, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.run_sweep("resilience", |ctx| {
        resilience::generate_on(cli.net, cli.scale, ctx)
    });
}
