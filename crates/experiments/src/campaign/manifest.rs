//! Declarative campaign manifests: a zero-dependency TOML-subset parser.
//!
//! A manifest names a campaign and lays out a **scenario matrix** — every
//! `[scenario.<id>]` section is the cross product of its `schemes` ×
//! `patterns` × `rates` × `faults` axes — plus the campaign-wide execution
//! policy (per-job budgets, retry count, backoff base, worker count). The
//! grammar is the small, line-oriented TOML subset the examples use:
//!
//! ```toml
//! [campaign]
//! name = "nightly"        # strings are double-quoted, no escapes
//! seed = 42               # non-negative integers
//! retries = 2             # extra attempts after the first failure
//! backoff_ms = 50         # base of the exponential backoff
//! timeout_s = 60          # per-job wall budget (orchestrator-enforced)
//! cycle_budget = 500000   # optional per-job simulated-cycle budget
//! workers = 2             # concurrent worker processes
//!
//! [scenario.sweep]
//! net = "small"           # paper | small
//! scale = "tiny"          # paper | reduced | smoke | tiny
//! schemes = ["base", "tune", "static-62"]
//! patterns = ["uniform-random", "transpose"]
//! rates = [0.005, 0.028]
//! faults = ["none", "loss-0.5", "storm-3"]
//! ```
//!
//! Comments run from an unquoted `#` to end of line; arrays are
//! single-line. Every malformed construct is a typed [`ManifestError`]
//! naming the line and, for unknown schemes/patterns, listing what the
//! registries actually offer — a campaign must die at parse time, not three
//! hours in.

use crate::{NetPreset, Scale};
use stcc::Scheme;
use traffic::Pattern;

/// A fault axis entry of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// No faults: the quiet plan.
    None,
    /// Side-band snapshot loss at the given probability (`loss-<p>`).
    Loss(f64),
    /// A deterministic storm of `k` link stalls plus a hotspot, drawn from
    /// the campaign seed (`storm-<k>`).
    Storm(u64),
}

impl FaultSpec {
    /// The manifest spelling (`none`, `loss-0.5`, `storm-3`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FaultSpec::None => "none".to_owned(),
            FaultSpec::Loss(p) => format!("loss-{p}"),
            FaultSpec::Storm(k) => format!("storm-{k}"),
        }
    }

    fn parse(s: &str) -> Option<FaultSpec> {
        if s == "none" {
            return Some(FaultSpec::None);
        }
        if let Some(p) = s.strip_prefix("loss-") {
            let p: f64 = p.parse().ok()?;
            return (p.is_finite() && (0.0..=1.0).contains(&p)).then_some(FaultSpec::Loss(p));
        }
        if let Some(k) = s.strip_prefix("storm-") {
            let k: u64 = k.parse().ok()?;
            return (k > 0).then_some(FaultSpec::Storm(k));
        }
        None
    }
}

/// One scenario: a point matrix over schemes × patterns × rates × faults.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The section id (`[scenario.<id>]`), unique within the manifest.
    pub id: String,
    /// Network preset the whole scenario runs on.
    pub net: NetPreset,
    /// Simulation length preset.
    pub scale: Scale,
    /// Scheme registry names (validated against [`Scheme::by_name`]).
    pub schemes: Vec<String>,
    /// Pattern names (validated against [`Pattern::by_name`]).
    pub patterns: Vec<String>,
    /// Offered loads, packets/node/cycle, each in `(0, 1]`.
    pub rates: Vec<f64>,
    /// Fault axis (defaults to just [`FaultSpec::None`]).
    pub faults: Vec<FaultSpec>,
}

/// A parsed, validated campaign manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (report header only).
    pub name: String,
    /// Campaign seed: the root of every job seed and every backoff jitter.
    pub seed: u64,
    /// Retries after the first failed attempt (`retries = 2` ⇒ up to 3
    /// attempts per job).
    pub retries: u32,
    /// Base of the exponential retry backoff, in milliseconds.
    pub backoff_ms: u64,
    /// Per-job wall-clock budget in seconds, enforced cooperatively inside
    /// the worker and with a hard kill by the orchestrator.
    pub timeout_s: u64,
    /// Optional per-job simulated-cycle budget.
    pub cycle_budget: Option<u64>,
    /// Concurrent worker processes.
    pub workers: usize,
    /// Step-loop shard count inside every worker (`STCC_SHARDS` for the
    /// worker processes; results are bit-identical for any value).
    pub shards: usize,
    /// The scenarios, in manifest order.
    pub scenarios: Vec<Scenario>,
}

/// Everything that can be wrong with a manifest, each its own class so
/// tests can pin the diagnosis (not just "parse failed").
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// Unparsable line (bad header, missing `=`, malformed value…).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A `[section]` that is neither `[campaign]` nor `[scenario.<id>]`.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The offending header.
        section: String,
    },
    /// A key the section does not define.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The section the key appeared in.
        section: String,
        /// The offending key.
        key: String,
    },
    /// The same key twice in one section.
    DuplicateKey {
        /// 1-based line number.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// Two `[scenario.<id>]` sections with the same id.
    DuplicateScenario {
        /// 1-based line number.
        line: usize,
        /// The repeated id.
        id: String,
    },
    /// A scenario is missing a required key.
    MissingKey {
        /// The scenario id.
        scenario: String,
        /// The missing key.
        key: &'static str,
    },
    /// A scheme name the registry cannot resolve.
    UnknownScheme {
        /// The scenario id.
        scenario: String,
        /// The unresolvable name.
        name: String,
    },
    /// A pattern name the registry cannot resolve.
    UnknownPattern {
        /// The scenario id.
        scenario: String,
        /// The unresolvable name.
        name: String,
    },
    /// An offered rate outside `(0, 1]`.
    BadRate {
        /// The scenario id.
        scenario: String,
        /// The rejected value.
        value: f64,
    },
    /// A fault spec that is not `none`, `loss-<p>` or `storm-<k>`.
    BadFault {
        /// The scenario id.
        scenario: String,
        /// The rejected spec.
        spec: String,
    },
    /// A matrix axis with no entries.
    EmptyList {
        /// The scenario id.
        scenario: String,
        /// The empty key.
        key: &'static str,
    },
    /// No `[scenario.*]` sections at all.
    NoScenarios,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ManifestError::UnknownSection { line, section } => write!(
                f,
                "line {line}: unknown section [{section}] (expected [campaign] or [scenario.<id>])"
            ),
            ManifestError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key '{key}' in [{section}]")
            }
            ManifestError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key '{key}'")
            }
            ManifestError::DuplicateScenario { line, id } => {
                write!(f, "line {line}: duplicate scenario id '{id}'")
            }
            ManifestError::MissingKey { scenario, key } => {
                write!(f, "scenario '{scenario}': missing required key '{key}'")
            }
            ManifestError::UnknownScheme { scenario, name } => write!(
                f,
                "scenario '{scenario}': unknown scheme '{name}' (known: {}, static-<threshold>)",
                Scheme::registry_names().join(", ")
            ),
            ManifestError::UnknownPattern { scenario, name } => write!(
                f,
                "scenario '{scenario}': unknown pattern '{name}' (known: {})",
                Pattern::names().join(", ")
            ),
            ManifestError::BadRate { scenario, value } => {
                write!(f, "scenario '{scenario}': rate {value} out of range (0, 1]")
            }
            ManifestError::BadFault { scenario, spec } => write!(
                f,
                "scenario '{scenario}': bad fault spec '{spec}' \
                 (expected none, loss-<p> or storm-<k>)"
            ),
            ManifestError::EmptyList { scenario, key } => {
                write!(f, "scenario '{scenario}': '{key}' must not be empty")
            }
            ManifestError::NoScenarios => f.write_str("manifest defines no [scenario.*] sections"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One parsed value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::List(_) => "array",
        }
    }
}

/// Cuts an unquoted `#` comment off `line`.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, ManifestError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or(ManifestError::Syntax {
            line,
            msg: format!("unterminated string {s}"),
        })?;
        if inner.contains('"') {
            return Err(ManifestError::Syntax {
                line,
                msg: format!("embedded quote in string {s}"),
            });
        }
        return Ok(Value::Str(inner.to_owned()));
    }
    let n: f64 = s.parse().map_err(|_| ManifestError::Syntax {
        line,
        msg: format!("bad value '{s}' (expected a string, number or array)"),
    })?;
    if !n.is_finite() {
        return Err(ManifestError::Syntax {
            line,
            msg: format!("non-finite number '{s}'"),
        });
    }
    Ok(Value::Num(n))
}

fn parse_value(s: &str, line: usize) -> Result<Value, ManifestError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or(ManifestError::Syntax {
            line,
            msg: "unterminated array (arrays are single-line)".to_owned(),
        })?;
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::List(Vec::new()));
        }
        return inner
            .split(',')
            .map(|item| parse_scalar(item, line))
            .collect::<Result<Vec<_>, _>>()
            .map(Value::List);
    }
    parse_scalar(s, line)
}

fn expect_str(v: &Value, key: &str, line: usize) -> Result<String, ManifestError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(ManifestError::Syntax {
            line,
            msg: format!("'{key}' must be a string, got a {}", other.type_name()),
        }),
    }
}

fn expect_uint(v: &Value, key: &str, line: usize) -> Result<u64, ManifestError> {
    match v {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Ok(*n as u64),
        other => Err(ManifestError::Syntax {
            line,
            msg: format!(
                "'{key}' must be a non-negative integer, got {}",
                match other {
                    Value::Num(n) => n.to_string(),
                    v => format!("a {}", v.type_name()),
                }
            ),
        }),
    }
}

fn expect_str_list(v: &Value, key: &str, line: usize) -> Result<Vec<String>, ManifestError> {
    match v {
        Value::List(items) => items.iter().map(|i| expect_str(i, key, line)).collect(),
        other => Err(ManifestError::Syntax {
            line,
            msg: format!("'{key}' must be an array, got a {}", other.type_name()),
        }),
    }
}

fn expect_num_list(v: &Value, key: &str, line: usize) -> Result<Vec<f64>, ManifestError> {
    match v {
        Value::List(items) => items
            .iter()
            .map(|i| match i {
                Value::Num(n) => Ok(*n),
                other => Err(ManifestError::Syntax {
                    line,
                    msg: format!(
                        "'{key}' entries must be numbers, got a {}",
                        other.type_name()
                    ),
                }),
            })
            .collect(),
        other => Err(ManifestError::Syntax {
            line,
            msg: format!("'{key}' must be an array, got a {}", other.type_name()),
        }),
    }
}

/// Raw key/value accumulation of one section during the parse pass.
#[derive(Debug, Default)]
struct RawSection {
    keys: Vec<(String, Value, usize)>,
}

impl RawSection {
    fn insert(&mut self, key: String, value: Value, line: usize) -> Result<(), ManifestError> {
        if self.keys.iter().any(|(k, _, _)| *k == key) {
            return Err(ManifestError::DuplicateKey { line, key });
        }
        self.keys.push((key, value, line));
        Ok(())
    }

    fn take(&self, key: &str) -> Option<(&Value, usize)> {
        self.keys
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v, *l))
    }
}

fn finalize_scenario(id: &str, raw: &RawSection) -> Result<Scenario, ManifestError> {
    const KEYS: &[&str] = &["net", "scale", "schemes", "patterns", "rates", "faults"];
    for (key, _, line) in &raw.keys {
        if !KEYS.contains(&key.as_str()) {
            return Err(ManifestError::UnknownKey {
                line: *line,
                section: format!("scenario.{id}"),
                key: key.clone(),
            });
        }
    }
    let scenario = id.to_owned();
    let net = match raw.take("net") {
        Some((v, line)) => {
            let s = expect_str(v, "net", line)?;
            NetPreset::parse(&s).ok_or(ManifestError::Syntax {
                line,
                msg: format!("unknown net preset '{s}' (paper|small)"),
            })?
        }
        None => NetPreset::Paper,
    };
    let scale = match raw.take("scale") {
        Some((v, line)) => {
            let s = expect_str(v, "scale", line)?;
            Scale::parse(&s).ok_or(ManifestError::Syntax {
                line,
                msg: format!("unknown scale '{s}' (paper|reduced|smoke|tiny)"),
            })?
        }
        None => Scale::Reduced,
    };
    let require = |key: &'static str| {
        raw.take(key).ok_or(ManifestError::MissingKey {
            scenario: scenario.clone(),
            key,
        })
    };
    let (v, line) = require("schemes")?;
    let schemes = expect_str_list(v, "schemes", line)?;
    let (v, line) = require("patterns")?;
    let patterns = expect_str_list(v, "patterns", line)?;
    let (v, line) = require("rates")?;
    let rates = expect_num_list(v, "rates", line)?;
    let faults = match raw.take("faults") {
        Some((v, line)) => expect_str_list(v, "faults", line)?
            .iter()
            .map(|s| {
                FaultSpec::parse(s).ok_or_else(|| ManifestError::BadFault {
                    scenario: scenario.clone(),
                    spec: s.clone(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => vec![FaultSpec::None],
    };
    for (key, empty) in [
        ("schemes", schemes.is_empty()),
        ("patterns", patterns.is_empty()),
        ("rates", rates.is_empty()),
        ("faults", faults.is_empty()),
    ] {
        if empty {
            return Err(ManifestError::EmptyList {
                scenario: scenario.clone(),
                key,
            });
        }
    }
    // Resolve every axis entry now: a campaign must refuse to start on a
    // name the registries cannot honor.
    let sideband = net.sideband();
    for name in &schemes {
        if Scheme::by_name(name, &sideband).is_none() {
            return Err(ManifestError::UnknownScheme {
                scenario,
                name: name.clone(),
            });
        }
    }
    for name in &patterns {
        if Pattern::by_name(name).is_none() {
            return Err(ManifestError::UnknownPattern {
                scenario,
                name: name.clone(),
            });
        }
    }
    for &value in &rates {
        if !value.is_finite() || value <= 0.0 || value > 1.0 {
            return Err(ManifestError::BadRate { scenario, value });
        }
    }
    Ok(Scenario {
        id: scenario,
        net,
        scale,
        schemes,
        patterns,
        rates,
        faults,
    })
}

impl Manifest {
    /// Parses and validates a manifest.
    ///
    /// # Errors
    ///
    /// Returns the first [`ManifestError`], with its line number where one
    /// applies.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        enum Section {
            Preamble,
            Campaign,
            Scenario(usize),
        }
        let mut campaign = RawSection::default();
        let mut scenarios: Vec<(String, RawSection)> = Vec::new();
        let mut current = Section::Preamble;
        for (i, raw_line) in text.lines().enumerate() {
            let line = i + 1;
            let stripped = strip_comment(raw_line).trim();
            if stripped.is_empty() {
                continue;
            }
            if let Some(header) = stripped.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or(ManifestError::Syntax {
                    line,
                    msg: format!("malformed section header '{stripped}'"),
                })?;
                if header == "campaign" {
                    if !campaign.keys.is_empty() {
                        return Err(ManifestError::Syntax {
                            line,
                            msg: "duplicate [campaign] section".to_owned(),
                        });
                    }
                    current = Section::Campaign;
                } else if let Some(id) = header.strip_prefix("scenario.") {
                    if id.is_empty()
                        || !id
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                    {
                        return Err(ManifestError::Syntax {
                            line,
                            msg: format!("bad scenario id '{id}' (alphanumeric, '-' and '_' only)"),
                        });
                    }
                    if scenarios.iter().any(|(existing, _)| existing == id) {
                        return Err(ManifestError::DuplicateScenario {
                            line,
                            id: id.to_owned(),
                        });
                    }
                    scenarios.push((id.to_owned(), RawSection::default()));
                    current = Section::Scenario(scenarios.len() - 1);
                } else {
                    return Err(ManifestError::UnknownSection {
                        line,
                        section: header.to_owned(),
                    });
                }
                continue;
            }
            let (key, value) = stripped.split_once('=').ok_or(ManifestError::Syntax {
                line,
                msg: format!("expected 'key = value', got '{stripped}'"),
            })?;
            let key = key.trim().to_owned();
            let value = parse_value(value, line)?;
            match current {
                Section::Preamble => {
                    return Err(ManifestError::Syntax {
                        line,
                        msg: format!("key '{key}' before any section header"),
                    })
                }
                Section::Campaign => campaign.insert(key, value, line)?,
                Section::Scenario(idx) => scenarios[idx].1.insert(key, value, line)?,
            }
        }

        const CAMPAIGN_KEYS: &[&str] = &[
            "name",
            "seed",
            "retries",
            "backoff_ms",
            "timeout_s",
            "cycle_budget",
            "workers",
            "shards",
        ];
        for (key, _, line) in &campaign.keys {
            if !CAMPAIGN_KEYS.contains(&key.as_str()) {
                return Err(ManifestError::UnknownKey {
                    line: *line,
                    section: "campaign".to_owned(),
                    key: key.clone(),
                });
            }
        }
        let name = match campaign.take("name") {
            Some((v, line)) => expect_str(v, "name", line)?,
            None => "campaign".to_owned(),
        };
        let uint_or = |key: &str, default: u64| -> Result<u64, ManifestError> {
            campaign
                .take(key)
                .map_or(Ok(default), |(v, line)| expect_uint(v, key, line))
        };
        let seed = uint_or("seed", 1)?;
        #[allow(clippy::cast_possible_truncation)]
        let retries = uint_or("retries", 2)?.min(u64::from(u32::MAX)) as u32;
        let backoff_ms = uint_or("backoff_ms", 50)?;
        let timeout_s = uint_or("timeout_s", 60)?;
        let cycle_budget = campaign
            .take("cycle_budget")
            .map(|(v, line)| expect_uint(v, "cycle_budget", line))
            .transpose()?;
        #[allow(clippy::cast_possible_truncation)]
        let workers = (uint_or("workers", 2)?.clamp(1, 64)) as usize;
        #[allow(clippy::cast_possible_truncation)]
        let shards = (uint_or("shards", 1)?.clamp(1, 64)) as usize;

        if scenarios.is_empty() {
            return Err(ManifestError::NoScenarios);
        }
        let scenarios = scenarios
            .iter()
            .map(|(id, raw)| finalize_scenario(id, raw))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest {
            name,
            seed,
            retries,
            backoff_ms,
            timeout_s,
            cycle_budget,
            workers,
            shards,
            scenarios,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# A comment before anything.
[campaign]
name = "unit"    # trailing comment
seed = 9
retries = 1
backoff_ms = 10
timeout_s = 30
workers = 3
shards = 2

[scenario.alpha]
net = "small"
scale = "tiny"
schemes = ["base", "tune", "static-62"]
patterns = ["uniform-random", "transpose"]
rates = [0.005, 0.028]
faults = ["none", "loss-0.5", "storm-2"]

[scenario.beta]
schemes = ["alo"]
patterns = ["bit-reversal"]
rates = [0.01]
"#;

    #[test]
    fn parses_a_full_manifest() {
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.name, "unit");
        assert_eq!(m.seed, 9);
        assert_eq!(m.retries, 1);
        assert_eq!(m.backoff_ms, 10);
        assert_eq!(m.timeout_s, 30);
        assert_eq!(m.cycle_budget, None);
        assert_eq!(m.workers, 3);
        assert_eq!(m.shards, 2);
        assert_eq!(m.scenarios.len(), 2);
        let a = &m.scenarios[0];
        assert_eq!(a.id, "alpha");
        assert_eq!(a.net, NetPreset::Small);
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.schemes, vec!["base", "tune", "static-62"]);
        assert_eq!(a.rates, vec![0.005, 0.028]);
        assert_eq!(
            a.faults,
            vec![FaultSpec::None, FaultSpec::Loss(0.5), FaultSpec::Storm(2)]
        );
        let b = &m.scenarios[1];
        assert_eq!(b.net, NetPreset::Paper, "net defaults to paper");
        assert_eq!(b.scale, Scale::Reduced, "scale defaults to reduced");
        assert_eq!(b.faults, vec![FaultSpec::None], "faults default to none");
    }

    #[test]
    fn shards_defaults_to_one() {
        let text = GOOD.replace("shards = 2\n", "");
        assert_eq!(Manifest::parse(&text).unwrap().shards, 1);
    }

    #[test]
    fn rejects_unknown_key() {
        let text = GOOD.replace("workers = 3", "wrokers = 3");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::UnknownKey { section, key, .. })
                if section == "campaign" && key == "wrokers"
        ));
        let text = GOOD.replace("scale = \"tiny\"", "scalee = \"tiny\"");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::UnknownKey { section, key, .. })
                if section == "scenario.alpha" && key == "scalee"
        ));
    }

    #[test]
    fn rejects_bad_rate() {
        for bad in ["0.0", "-0.1", "1.5"] {
            let text = GOOD.replace("rates = [0.005, 0.028]", &format!("rates = [{bad}]"));
            assert!(
                matches!(
                    Manifest::parse(&text),
                    Err(ManifestError::BadRate { ref scenario, .. }) if scenario == "alpha"
                ),
                "rate {bad} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_duplicate_scenario_id() {
        let text = GOOD.replace("[scenario.beta]", "[scenario.alpha]");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::DuplicateScenario { id, .. }) if id == "alpha"
        ));
    }

    #[test]
    fn rejects_unknown_scheme_listing_the_registry() {
        let text = GOOD.replace("\"tune\"", "\"warp\"");
        let err = Manifest::parse(&text).unwrap_err();
        assert!(matches!(
            err,
            ManifestError::UnknownScheme { ref name, .. } if name == "warp"
        ));
        let msg = err.to_string();
        for known in Scheme::registry_names() {
            assert!(msg.contains(known), "error must list '{known}': {msg}");
        }
        assert!(msg.contains("static-<threshold>"));
    }

    #[test]
    fn rejects_unknown_pattern_listing_the_registry() {
        let text = GOOD.replace("\"transpose\"", "\"tornado\"");
        let err = Manifest::parse(&text).unwrap_err();
        assert!(matches!(
            err,
            ManifestError::UnknownPattern { ref name, .. } if name == "tornado"
        ));
        assert!(err.to_string().contains("uniform-random"));
    }

    #[test]
    fn rejects_malformed_syntax_classes() {
        assert!(matches!(
            Manifest::parse("[campaign]\nname \"x\"\n"),
            Err(ManifestError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("[bogus]\n"),
            Err(ManifestError::UnknownSection { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("[scenario.]\n"),
            Err(ManifestError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("stray = 1\n"),
            Err(ManifestError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("[campaign]\nseed = -3\n[scenario.a]\nschemes=[\"base\"]\npatterns=[\"transpose\"]\nrates=[0.01]\n"),
            Err(ManifestError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("[campaign]\nseed = 1\nseed = 2\n"),
            Err(ManifestError::DuplicateKey { line: 3, .. })
        ));
        assert!(matches!(
            Manifest::parse("[campaign]\nname = \"x\"\n"),
            Err(ManifestError::NoScenarios)
        ));
        let text = GOOD.replace("schemes = [\"alo\"]", "schemes = []");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::EmptyList { key: "schemes", .. })
        ));
        let text = GOOD.replace(
            "patterns = [\"bit-reversal\"]\nrates = [0.01]",
            "rates = [0.01]",
        );
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::MissingKey {
                key: "patterns",
                ..
            })
        ));
        let text = GOOD.replace("\"loss-0.5\"", "\"loss-nan\"");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::BadFault { ref spec, .. }) if spec == "loss-nan"
        ));
        let text = GOOD.replace("\"storm-2\"", "\"storm-0\"");
        assert!(matches!(
            Manifest::parse(&text),
            Err(ManifestError::BadFault { ref spec, .. }) if spec == "storm-0"
        ));
    }

    #[test]
    fn comment_hash_inside_string_is_kept() {
        let text = GOOD.replace("name = \"unit\"", "name = \"a#b\" # real comment");
        assert_eq!(Manifest::parse(&text).unwrap().name, "a#b");
    }
}
