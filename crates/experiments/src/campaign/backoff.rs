//! Deterministic retry backoff: exponential growth plus **seeded** jitter.
//!
//! Ordinary jitter defeats reproducibility — two runs of the same campaign
//! would retry at different instants. Here the jitter is drawn from a
//! [`SimRng`] seeded from `(campaign seed, job id, attempt)`, so the full
//! retry schedule is a pure function of the manifest: two runs of the same
//! campaign produce identical schedules (the property test below), yet
//! different jobs and different attempts still spread out as jitter should.

use std::time::Duration;
use traffic::SimRng;

/// Cap on the exponent so the delay cannot overflow (2^10 × base).
const MAX_SHIFT: u32 = 10;

/// The delay to sleep before retry `attempt` of job `job` (attempt 1 is
/// the first retry): `base_ms · 2^(attempt−1)` plus a jitter uniform in
/// `[0, base_ms)`, both deterministic in the inputs.
#[must_use]
pub fn delay(campaign_seed: u64, job: u64, attempt: u32, base_ms: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(MAX_SHIFT);
    let exp = base_ms.saturating_mul(1u64 << shift);
    let key = checkpoint::fnv1a64(format!("backoff|{campaign_seed}|{job}|{attempt}").as_bytes());
    let jitter = SimRng::seed_from_u64(key).random_range(0..base_ms.max(1));
    Duration::from_millis(exp.saturating_add(jitter))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        // Property: recomputing any (seed, job, attempt, base) cell yields
        // the identical delay — the whole retry schedule is reproducible.
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            for job in 0..20u64 {
                for attempt in 1..=6u32 {
                    for base in [1u64, 10, 50, 250] {
                        let a = delay(seed, job, attempt, base);
                        let b = delay(seed, job, attempt, base);
                        assert_eq!(a, b, "seed={seed} job={job} attempt={attempt} base={base}");
                    }
                }
            }
        }
    }

    #[test]
    fn grows_exponentially_and_stays_bounded() {
        for attempt in 1..=6u32 {
            let d = delay(7, 3, attempt, 50).as_millis() as u64;
            let floor = 50u64 << (attempt - 1);
            assert!(
                (floor..floor + 50).contains(&d),
                "attempt {attempt}: delay {d} outside [{floor}, {})",
                floor + 50
            );
        }
        // The exponent caps: attempt 40 must not overflow.
        let capped = delay(7, 3, 40, 50).as_millis() as u64;
        assert!(capped <= (50 << MAX_SHIFT) + 50);
    }

    #[test]
    fn different_jobs_and_attempts_get_different_jitter() {
        // Not a hard requirement of correctness, but the point of jitter:
        // across many (job, attempt) cells the delays must not all agree.
        let base = 1000;
        let delays: Vec<u64> = (0..32u64)
            .map(|job| delay(1, job, 1, base).as_millis() as u64)
            .collect();
        let distinct = {
            let mut d = delays.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        assert!(distinct > 16, "jitter collapsed: {delays:?}");
    }

    #[test]
    fn zero_base_is_safe() {
        assert_eq!(delay(1, 1, 1, 0), Duration::from_millis(0));
    }
}
