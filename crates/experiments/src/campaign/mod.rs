//! Supervised campaign runner: a declarative scenario matrix executed by a
//! fault-tolerant multi-process orchestrator.
//!
//! A campaign ([`manifest::Manifest`]) expands to a deterministic job list
//! (the cross product of every scenario's axes, in manifest order). The
//! orchestrator runs each job in an **isolated OS process** — the
//! `campaign` binary re-invoked in its hidden `--job` mode — so a worker
//! that panics, blows its budget, or is killed takes down one job, never
//! the campaign. Each job is supervised with:
//!
//! - a per-job wall budget, enforced cooperatively inside the worker (the
//!   run guard) and by a hard kill from the orchestrator as a backstop;
//! - bounded retries with deterministic exponential [`backoff`] (seeded
//!   jitter — the full retry schedule is a pure function of the manifest);
//! - **quarantine**: a job failing every attempt is recorded with its
//!   typed failure and the campaign continues.
//!
//! Completed jobs land in a crash-safe ledger (the crc-checked append-only
//! [`crate::journal`]), so `--resume` after a SIGKILL — of the orchestrator
//! *or* any worker — replays finished jobs verbatim and re-runs quarantined
//! ones. Because every job and every row rendering is deterministic, a
//! resumed campaign's final report is byte-identical to an uninterrupted
//! run (`tests/campaign.rs` and the CI gate prove it).

pub mod backoff;
pub mod manifest;

use crate::journal::{FailureKind, Journal};
use crate::runner::{JobBudget, JobError, Pool};
use crate::table::fnum;
use crate::{steady_config, try_run_point_instrumented, NetPreset, Scale, Table};
use faults::{FaultPlan, HotspotFault, LinkFault, SidebandFaults};
use manifest::{FaultSpec, Manifest};
use stcc::Scheme;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use traffic::{Pattern, SimRng};
use wormsim::DeadlockMode;

/// Exit code of a clean campaign: every job succeeded.
pub const EXIT_OK: i32 = 0;
/// Usage error (bad flags).
pub const EXIT_USAGE: i32 = 2;
/// The manifest failed to load or validate.
pub const EXIT_MANIFEST: i32 = 3;
/// The campaign completed but quarantined at least one job.
pub const EXIT_QUARANTINED: i32 = 4;
/// A worker failed in its hidden `--job` mode (typed failure on stdout).
pub const EXIT_WORKER_FAILED: i32 = 6;

const OK_TAG: &str = "STCC-JOB-OK";
const ERR_TAG: &str = "STCC-JOB-ERR";

/// One fully resolved job of the campaign matrix.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Position in the expanded list (stable across runs: the ledger key).
    pub idx: u64,
    /// Owning scenario id.
    pub scenario: String,
    /// Scheme registry name.
    pub scheme: String,
    /// Pattern registry name.
    pub pattern: String,
    /// Offered load, packets/node/cycle.
    pub rate: f64,
    /// Fault axis entry.
    pub fault: FaultSpec,
    /// Network preset.
    pub net: NetPreset,
    /// Simulation length preset.
    pub scale: Scale,
    /// The job's simulation seed, derived from the campaign seed and every
    /// axis coordinate.
    pub seed: u64,
}

impl JobSpec {
    /// Progress/report label: `scenario/scheme/pattern@rate+fault`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}@{}+{}",
            self.scenario,
            self.scheme,
            self.pattern,
            fnum(self.rate),
            self.fault.label()
        )
    }
}

/// Expands a manifest into its deterministic job list: scenarios in
/// manifest order, axes nested schemes → patterns → rates → faults.
#[must_use]
pub fn expand(m: &Manifest) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for sc in &m.scenarios {
        for scheme in &sc.schemes {
            for pattern in &sc.patterns {
                for &rate in &sc.rates {
                    for fault in &sc.faults {
                        let seed = checkpoint::fnv1a64(
                            format!(
                                "job|{}|{}|{}|{}|{}|{}",
                                m.seed,
                                sc.id,
                                scheme,
                                pattern,
                                fnum(rate),
                                fault.label()
                            )
                            .as_bytes(),
                        );
                        jobs.push(JobSpec {
                            idx: jobs.len() as u64,
                            scenario: sc.id.clone(),
                            scheme: scheme.clone(),
                            pattern: pattern.clone(),
                            rate,
                            fault: fault.clone(),
                            net: sc.net,
                            scale: sc.scale,
                            seed,
                        });
                    }
                }
            }
        }
    }
    jobs
}

/// Builds the job's fault plan: `None` for the quiet axis, a side-band
/// loss plan for `loss-<p>`, and for `storm-<k>` a deterministic draw of
/// `k` link stalls plus one hotspot from the campaign seed (sized and
/// validated against the scenario's network and scale).
#[must_use]
pub fn fault_plan(spec: &JobSpec, campaign_seed: u64) -> Option<FaultPlan> {
    let plan_seed =
        checkpoint::fnv1a64(format!("fault|{campaign_seed}|{}", spec.label()).as_bytes());
    match spec.fault {
        FaultSpec::None => None,
        FaultSpec::Loss(p) => Some(FaultPlan::sideband_only(
            plan_seed,
            SidebandFaults {
                loss_rate: p,
                ..SidebandFaults::none()
            },
        )),
        FaultSpec::Storm(k) => {
            let net = spec.net.net(DeadlockMode::PAPER_RECOVERY);
            let nodes = net.node_count() as u64;
            let ports = (2 * net.dimensions) as u64;
            let cycles = spec.scale.cycles();
            let warmup = spec.scale.warmup();
            let mut rng = SimRng::seed_from_u64(plan_seed);
            let window = |rng: &mut SimRng| {
                // Stall windows inside the measured interval, each at most
                // a quarter of it, so storms degrade rather than dominate.
                let span = (cycles - warmup).max(4);
                let len = 1 + rng.random_range(0..span / 4);
                let start = warmup + rng.random_range(0..span - len);
                (start, start + len)
            };
            let links = (0..k)
                .map(|_| {
                    let (start, end) = window(&mut rng);
                    LinkFault {
                        node: rng.random_range(0..nodes) as usize,
                        port: rng.random_range(0..ports) as usize,
                        start,
                        end,
                    }
                })
                .collect();
            let (start, end) = window(&mut rng);
            let hotspots = vec![HotspotFault {
                node: rng.random_range(0..nodes) as usize,
                start,
                end,
            }];
            Some(FaultPlan {
                seed: plan_seed,
                sideband: SidebandFaults::none(),
                links,
                hotspots,
            })
        }
    }
}

/// The metric cells a worker reports for one completed job, already
/// formatted (formatting happens worker-side so a replayed ledger row is
/// byte-identical to a fresh one).
fn run_job_metrics(spec: &JobSpec, m: &Manifest) -> Result<Vec<String>, JobError> {
    let sideband = spec.net.sideband();
    let scheme = Scheme::by_name(&spec.scheme, &sideband)
        .ok_or_else(|| JobError::Failed(format!("unresolvable scheme '{}'", spec.scheme)))?;
    let pattern = Pattern::by_name(&spec.pattern)
        .ok_or_else(|| JobError::Failed(format!("unresolvable pattern '{}'", spec.pattern)))?;
    let cfg = steady_config(
        spec.net.net(DeadlockMode::PAPER_RECOVERY),
        scheme,
        pattern,
        spec.rate,
        spec.scale,
        spec.seed,
    );
    let plan = fault_plan(spec, m.seed);
    if let Some(plan) = &plan {
        let net = spec.net.net(DeadlockMode::PAPER_RECOVERY);
        plan.validate(net.node_count(), 2 * net.dimensions)
            .map_err(|e| JobError::Failed(format!("bad fault plan ({}): {e}", spec.label())))?;
    }
    let (p, f) = try_run_point_instrumented(cfg, plan)?;
    let c = f.controller;
    Ok(vec![
        fnum(p.tput_flits),
        fnum(p.latency),
        fnum(p.fairness),
        p.throttled.to_string(),
        f.watchdog_trips.to_string(),
        f.watchdog_rearms.to_string(),
        c.raises.to_string(),
        c.cuts.to_string(),
    ])
}

/// Parses the crash-test rig `STCC_CAMPAIGN_FAIL` (comma-separated
/// `scenario:<k>` / `scenario:all` entries): whether this attempt of this
/// job must crash (plain `exit(7)`, no protocol line — simulating a dying
/// worker). Keyed on the `--attempt` argument, so the rig is fully
/// deterministic: `flaky:2` crashes attempts 0 and 1 and lets attempt 2
/// succeed, in every run and every resume.
fn rigged_to_crash(scenario: &str, attempt: u32) -> bool {
    let Ok(rig) = std::env::var("STCC_CAMPAIGN_FAIL") else {
        return false;
    };
    for entry in rig.split(',') {
        let Some((id, upto)) = entry.trim().split_once(':') else {
            continue;
        };
        if id != scenario {
            continue;
        }
        if upto == "all" {
            return true;
        }
        if let Ok(k) = upto.parse::<u32>() {
            return attempt < k;
        }
    }
    false
}

/// The hidden `--job` mode: runs one job in this process and speaks the
/// one-line stdout protocol (`STCC-JOB-OK <crc> <cells>` or
/// `STCC-JOB-ERR <kind> <message>`). Returns the process exit code.
#[must_use]
pub fn worker_main(m: &Manifest, job_idx: u64, attempt: u32) -> i32 {
    let jobs = expand(m);
    let Some(spec) = jobs.iter().find(|j| j.idx == job_idx) else {
        println!(
            "{ERR_TAG} failed {}",
            crate::journal::escape_cell(&format!("job index {job_idx} out of range"))
        );
        return EXIT_WORKER_FAILED;
    };
    if rigged_to_crash(&spec.scenario, attempt) {
        // Crash-test rig: die like a real defect would — no marker line.
        std::process::exit(7);
    }
    // The manifest's `shards` key is authoritative for every job: publish
    // it before the pool (and its simulations) exist. Results are
    // bit-identical for any value, so this only sets the thread layout.
    std::env::set_var("STCC_SHARDS", m.shards.to_string());
    let budget = JobBudget {
        wall: (m.timeout_s > 0).then(|| Duration::from_secs(m.timeout_s)),
        cycles: m.cycle_budget,
    };
    // A single-worker pool publishes the budget to this thread so the run
    // guard inside the simulation enforces it cooperatively.
    let pool = Pool::new(1).with_budget(budget);
    let outcome = pool
        .try_run(vec![spec.clone()], JobSpec::label, |spec| {
            run_job_metrics(&spec, m)
        })
        .map(|mut v| v.pop().expect("one job in, one result out"));
    match outcome {
        Ok(cells) => {
            let payload = crate::journal::escape_rows(&vec![cells]);
            let crc = checkpoint::crc32(payload.as_bytes());
            println!("{OK_TAG} {crc:08x} {payload}");
            EXIT_OK
        }
        Err(e) => {
            let kind = FailureKind::of(&e.error).unwrap_or(FailureKind::Failed);
            println!(
                "{ERR_TAG} {} {}",
                kind.label(),
                crate::journal::escape_cell(&format!("{}: {}", e.label, e.error))
            );
            EXIT_WORKER_FAILED
        }
    }
}

/// What one supervised attempt of one job produced.
enum AttemptOutcome {
    Ok(Vec<String>),
    Failed(FailureKind, String),
    Interrupted,
}

/// Spawns and supervises one worker process for `(job, attempt)`.
fn supervise_attempt(
    spec: &JobSpec,
    attempt: u32,
    m: &Manifest,
    manifest_path: &Path,
) -> AttemptOutcome {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return AttemptOutcome::Failed(FailureKind::Failed, format!("current_exe: {e}")),
    };
    let child = Command::new(exe)
        .arg("--manifest")
        .arg(manifest_path)
        .arg("--job")
        .arg(spec.idx.to_string())
        .arg("--attempt")
        .arg(attempt.to_string())
        .env("STCC_SHARDS", m.shards.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(e) => return AttemptOutcome::Failed(FailureKind::Failed, format!("spawn: {e}")),
    };
    // Hard-kill backstop: the worker enforces the wall budget cooperatively
    // and should exit on its own with a typed timeout; a worker wedged so
    // hard its guard never fires is killed at twice the budget (plus grace
    // for process startup).
    let hard_deadline =
        (m.timeout_s > 0).then(|| Instant::now() + Duration::from_secs(2 * m.timeout_s + 5));
    let mut hard_killed = false;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return AttemptOutcome::Failed(FailureKind::Failed, format!("wait: {e}"));
            }
        }
        if crate::sigint::interrupted() {
            let _ = child.kill();
            let _ = child.wait();
            return AttemptOutcome::Interrupted;
        }
        if hard_deadline.is_some_and(|d| Instant::now() >= d) {
            hard_killed = true;
            let _ = child.kill();
            match child.wait() {
                Ok(status) => break status,
                Err(e) => return AttemptOutcome::Failed(FailureKind::Failed, format!("wait: {e}")),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let mut stdout = String::new();
    if let Some(mut pipe) = child.stdout.take() {
        let _ = pipe.read_to_string(&mut stdout);
    }
    if hard_killed {
        // Deterministic text: the report must not depend on where the
        // worker happened to be when it was shot.
        return AttemptOutcome::Failed(
            FailureKind::TimedOut,
            format!(
                "worker ignored its {}s wall budget and was killed",
                m.timeout_s
            ),
        );
    }
    classify(&stdout, status.code(), m)
}

/// Classifies a finished worker from its stdout protocol line and exit
/// status.
fn classify(stdout: &str, code: Option<i32>, m: &Manifest) -> AttemptOutcome {
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix(OK_TAG) {
            let mut parts = rest.trim_start().splitn(2, ' ');
            let (Some(crc), Some(payload)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(crc) = u32::from_str_radix(crc, 16) else {
                continue;
            };
            if checkpoint::crc32(payload.as_bytes()) != crc {
                return AttemptOutcome::Failed(
                    FailureKind::Failed,
                    "worker result failed its crc check".to_owned(),
                );
            }
            if let Some(rows) = crate::journal::unescape_rows(payload) {
                if let Some(cells) = rows.into_iter().next() {
                    return AttemptOutcome::Ok(cells);
                }
            }
            return AttemptOutcome::Failed(
                FailureKind::Failed,
                "worker result payload was malformed".to_owned(),
            );
        }
        if let Some(rest) = line.strip_prefix(ERR_TAG) {
            let mut parts = rest.trim_start().splitn(2, ' ');
            let kind = parts
                .next()
                .and_then(FailureKind::parse)
                .unwrap_or(FailureKind::Failed);
            let message = parts
                .next()
                .and_then(crate::journal::unescape_cell)
                .unwrap_or_else(|| "worker reported an unreadable error".to_owned());
            // Normalize cooperative-timeout messages: the cycle at which a
            // wall budget fires is machine-dependent and must not leak into
            // the (byte-stable) report.
            let message = if kind == FailureKind::TimedOut {
                format!("exceeded the per-job budget ({}s wall)", m.timeout_s)
            } else {
                message
            };
            return AttemptOutcome::Failed(kind, message);
        }
    }
    // No protocol line: the worker crashed (panic, rigged exit, signal).
    let how = match code {
        Some(c) => format!("worker crashed with exit code {c}"),
        None => "worker was killed by a signal".to_owned(),
    };
    AttemptOutcome::Failed(FailureKind::Panicked, how)
}

/// Report table column layout (shared by fresh rows, ledger replay and the
/// degradation summary).
const COLUMNS: &[&str] = &[
    "scenario",
    "scheme",
    "pattern",
    "rate",
    "fault",
    "status",
    "attempts",
    "timeouts",
    "crashes",
    "errors",
    "tput_flits",
    "latency",
    "fairness",
    "throttled",
    "wd_trips",
    "wd_rearms",
    "raises",
    "cuts",
    "last_error",
];
const COL_STATUS: usize = 5;
const COL_ATTEMPTS: usize = 6;
const COL_TIMEOUTS: usize = 7;
const COL_CRASHES: usize = 8;
const COL_ERRORS: usize = 9;
const COL_TPUT: usize = 10;
const COL_LATENCY: usize = 11;
const COL_FAIRNESS: usize = 12;
const COL_WD_TRIPS: usize = 14;
const COL_LAST_ERROR: usize = 18;

/// Per-attempt failure tally of one job.
#[derive(Debug, Default, Clone)]
struct Tally {
    timeouts: u32,
    crashes: u32,
    errors: u32,
    last_error: Option<(FailureKind, String)>,
}

impl Tally {
    fn record(&mut self, kind: FailureKind, message: String) {
        match kind {
            FailureKind::TimedOut => self.timeouts += 1,
            FailureKind::Panicked => self.crashes += 1,
            FailureKind::Failed => self.errors += 1,
        }
        self.last_error = Some((kind, message));
    }
}

fn compose_row(
    spec: &JobSpec,
    status: &str,
    attempts: u32,
    tally: &Tally,
    metrics: &[String],
) -> Vec<String> {
    let last_error = tally
        .last_error
        .as_ref()
        .map_or_else(|| "-".to_owned(), |(k, msg)| format!("{k}: {msg}"));
    let mut row = vec![
        spec.scenario.clone(),
        spec.scheme.clone(),
        spec.pattern.clone(),
        fnum(spec.rate),
        spec.fault.label(),
        status.to_owned(),
        attempts.to_string(),
        tally.timeouts.to_string(),
        tally.crashes.to_string(),
        tally.errors.to_string(),
    ];
    if metrics.is_empty() {
        row.extend(std::iter::repeat_n("-".to_owned(), 8));
    } else {
        row.extend(metrics.iter().cloned());
    }
    row.push(last_error);
    row
}

/// How one job of the campaign ended.
enum JobOutcome {
    Done(Vec<String>),
    Quarantined(Vec<String>),
    Interrupted,
    LedgerError(String),
}

/// Options of one orchestrator invocation.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Path of the manifest file (re-read by every worker).
    pub manifest: PathBuf,
    /// Output directory (ledger, CSV, report).
    pub out: PathBuf,
    /// Resume from the campaign ledger.
    pub resume: bool,
    /// Override the manifest's worker count.
    pub workers: Option<usize>,
}

/// Sleeps the backoff delay in small slices so a SIGINT is honored
/// promptly; returns false if interrupted.
fn backoff_sleep(d: Duration) -> bool {
    let deadline = Instant::now() + d;
    loop {
        if crate::sigint::interrupted() {
            return false;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10).min(left));
    }
}

/// Runs the whole campaign: expansion, supervision, ledger, report.
/// Returns the process exit code.
///
/// # Panics
///
/// Panics only on a poisoned internal lock (a worker thread panicked,
/// which the pool prevents).
#[must_use]
pub fn orchestrate(manifest_text: &str, m: &Manifest, opts: &CampaignOpts) -> i32 {
    crate::sigint::install();
    let jobs = expand(m);
    let fingerprint = checkpoint::fnv1a64(
        format!("campaign|{manifest_text}|{}", env!("CARGO_PKG_VERSION")).as_bytes(),
    );
    let ledger_path = opts.out.join("campaign.ledger");
    let (ledger, load) = match Journal::begin(&ledger_path, fingerprint, opts.resume) {
        Ok(x) => x,
        Err(e) => {
            eprintln!(
                "campaign: cannot open ledger {}: {e}",
                ledger_path.display()
            );
            return 1;
        }
    };
    if opts.resume && (!load.done.is_empty() || !load.failed.is_empty()) {
        eprintln!(
            "[resuming: {} completed jobs in the ledger, {} quarantined/failed jobs to re-run]",
            load.done.len(),
            load.failed.len()
        );
    }
    let ledger = Mutex::new(ledger);

    // Jobs whose rows are already in the ledger are replayed verbatim;
    // everything else (including previously quarantined jobs — their
    // failure records are not rows) runs fresh.
    let mut slots: Vec<Option<Vec<String>>> = Vec::with_capacity(jobs.len());
    let mut pending: Vec<JobSpec> = Vec::new();
    for job in &jobs {
        if let Some(rows) = load.done.get(&job.idx) {
            slots.push(rows.first().cloned());
        } else {
            slots.push(None);
            pending.push(job.clone());
        }
    }

    let workers = opts.workers.unwrap_or(m.workers);
    let pool = Pool::new(workers).with_progress(true);
    let fresh_count = pending.len();
    eprintln!(
        "[campaign '{}': {} jobs ({} replayed from ledger, {} to run) on {} workers]",
        m.name,
        jobs.len(),
        jobs.len() - fresh_count,
        fresh_count,
        pool.jobs()
    );

    let outcomes = pool.run(pending, JobSpec::label, |spec| {
        let mut tally = Tally::default();
        let mut attempt: u32 = 0;
        loop {
            if crate::sigint::interrupted() {
                return Ok::<_, JobError>((spec.idx, JobOutcome::Interrupted));
            }
            if attempt > 0
                && !backoff_sleep(backoff::delay(m.seed, spec.idx, attempt, m.backoff_ms))
            {
                return Ok((spec.idx, JobOutcome::Interrupted));
            }
            match supervise_attempt(&spec, attempt, m, &opts.manifest) {
                AttemptOutcome::Ok(metrics) => {
                    let status = if attempt == 0 { "ok" } else { "ok-retried" };
                    let row = compose_row(&spec, status, attempt + 1, &tally, &metrics);
                    let append = ledger
                        .lock()
                        .expect("ledger lock")
                        .append(spec.idx, &vec![row.clone()]);
                    if let Err(e) = append {
                        return Ok((spec.idx, JobOutcome::LedgerError(e.to_string())));
                    }
                    return Ok((spec.idx, JobOutcome::Done(row)));
                }
                AttemptOutcome::Interrupted => return Ok((spec.idx, JobOutcome::Interrupted)),
                AttemptOutcome::Failed(kind, message) => {
                    eprintln!(
                        "[{}: attempt {}/{} failed ({kind}): {message}]",
                        spec.label(),
                        attempt + 1,
                        m.retries + 1
                    );
                    tally.record(kind, message);
                    if attempt >= m.retries {
                        // Quarantine: the row carries the tally; the ledger
                        // gets a failure record (NOT a row), so a resume
                        // re-runs this job.
                        let (kind, message) =
                            tally.last_error.clone().expect("at least one failure");
                        let _ = ledger
                            .lock()
                            .expect("ledger lock")
                            .append_failure(spec.idx, kind, &message);
                        let row = compose_row(&spec, "quarantined", attempt + 1, &tally, &[]);
                        return Ok((spec.idx, JobOutcome::Quarantined(row)));
                    }
                    attempt += 1;
                }
            }
        }
    });

    let mut interrupted = false;
    let mut quarantined: Vec<u64> = Vec::new();
    let mut ledger_error: Option<String> = None;
    for outcome in outcomes {
        match outcome {
            Ok((idx, JobOutcome::Done(row))) => slots[idx as usize] = Some(row),
            Ok((idx, JobOutcome::Quarantined(row))) => {
                slots[idx as usize] = Some(row);
                quarantined.push(idx);
            }
            Ok((_, JobOutcome::Interrupted)) => interrupted = true,
            Ok((_, JobOutcome::LedgerError(e))) => ledger_error = Some(e),
            Err(e) if e.error == JobError::Interrupted => interrupted = true,
            Err(e) => ledger_error = Some(e.to_string()),
        }
    }
    if interrupted {
        eprintln!(
            "campaign: interrupted; completed jobs are in {} — re-run with --resume",
            ledger_path.display()
        );
        return crate::sigint::EXIT_INTERRUPTED;
    }
    if let Some(e) = ledger_error {
        eprintln!("campaign: ledger failure: {e} — re-run with --resume");
        return 1;
    }

    let rows: Vec<Vec<String>> = slots
        .into_iter()
        .map(|s| s.expect("every job replayed, done or quarantined"))
        .collect();
    let mut table = Table::new(format!("Campaign '{}'", m.name), COLUMNS);
    table.extend(rows.clone());
    let csv_path = opts.out.join("campaign.csv");
    if let Err(e) = table.write_csv(&csv_path) {
        eprintln!("campaign: cannot write {}: {e}", csv_path.display());
        return 1;
    }
    let report = render_report(m, fingerprint, &table, &rows);
    let report_path = opts.out.join("campaign.report");
    if let Err(e) = write_atomic(&report_path, &report) {
        eprintln!("campaign: cannot write {}: {e}", report_path.display());
        return 1;
    }
    print!("{report}");
    eprintln!(
        "[wrote {} and {}]",
        csv_path.display(),
        report_path.display()
    );

    if quarantined.is_empty() {
        // Fully clean: the ledger has served its purpose.
        let _ = std::fs::remove_file(&ledger_path);
        EXIT_OK
    } else {
        // Keep the ledger so a later --resume replays the good jobs and
        // retries only the quarantined ones.
        eprintln!(
            "campaign: {} job(s) quarantined — see the degradation section; \
             --resume will retry them",
            quarantined.len()
        );
        EXIT_QUARANTINED
    }
}

fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("report.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

fn cell_u64(row: &[String], col: usize) -> u64 {
    row.get(col).and_then(|c| c.parse().ok()).unwrap_or(0)
}

fn cell_f64(row: &[String], col: usize) -> Option<f64> {
    row.get(col).and_then(|c| c.parse().ok())
}

/// Renders the merged campaign report: header, the metric table, per-scheme
/// summary, and the degradation section (retries, quarantines, timeouts,
/// watchdog trips). Pure function of the rows — a resumed campaign renders
/// the identical report.
fn render_report(m: &Manifest, fingerprint: u64, table: &Table, rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Campaign '{}'", m.name);
    let _ = writeln!(out, "manifest fingerprint: {fingerprint:016x}");
    let _ = writeln!(
        out,
        "seed {} | retries {} | backoff {} ms | timeout {} s | workers {}",
        m.seed, m.retries, m.backoff_ms, m.timeout_s, m.workers
    );
    let _ = writeln!(out, "jobs: {}", rows.len());
    out.push('\n');
    out.push_str(&table.to_text());
    out.push('\n');

    // Per-scheme summary over jobs that produced metrics.
    let _ = writeln!(out, "## Scheme summary (mean over completed jobs)");
    let mut schemes: Vec<String> = rows.iter().map(|r| r[1].clone()).collect();
    schemes.sort();
    schemes.dedup();
    for scheme in schemes {
        let done: Vec<&Vec<String>> = rows
            .iter()
            .filter(|r| r[1] == scheme && r[COL_STATUS].starts_with("ok"))
            .collect();
        if done.is_empty() {
            let _ = writeln!(out, "- {scheme}: no completed jobs");
            continue;
        }
        let mean = |col: usize| {
            let vals: Vec<f64> = done.iter().filter_map(|r| cell_f64(r, col)).collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let _ = writeln!(
            out,
            "- {scheme}: {} jobs | tput_flits {} | latency {} | fairness {}",
            done.len(),
            fnum(mean(COL_TPUT)),
            fnum(mean(COL_LATENCY)),
            fnum(mean(COL_FAIRNESS)),
        );
    }
    out.push('\n');

    // Degradation: everything that went wrong on the way to this report.
    let ok = rows
        .iter()
        .filter(|r| r[COL_STATUS].starts_with("ok"))
        .count();
    let quarantined: Vec<&Vec<String>> = rows
        .iter()
        .filter(|r| r[COL_STATUS] == "quarantined")
        .collect();
    let sum = |col: usize| rows.iter().map(|r| cell_u64(r, col)).sum::<u64>();
    let retries: u64 = rows
        .iter()
        .map(|r| cell_u64(r, COL_ATTEMPTS).saturating_sub(1))
        .sum();
    let _ = writeln!(out, "## Degradation");
    let _ = writeln!(
        out,
        "jobs {} | ok {} | quarantined {}",
        rows.len(),
        ok,
        quarantined.len()
    );
    let _ = writeln!(
        out,
        "retries {} | timeouts {} | crashes {} | errors {}",
        retries,
        sum(COL_TIMEOUTS),
        sum(COL_CRASHES),
        sum(COL_ERRORS)
    );
    let _ = writeln!(
        out,
        "watchdog trips {} | rearms {}",
        sum(COL_WD_TRIPS),
        sum(COL_WD_TRIPS + 1)
    );
    if quarantined.is_empty() {
        let _ = writeln!(out, "quarantined jobs: none");
    } else {
        let _ = writeln!(out, "quarantined jobs:");
        for r in quarantined {
            let _ = writeln!(
                out,
                "- {}/{}/{}@{}+{}: {}",
                r[0], r[1], r[2], r[3], r[4], r[COL_LAST_ERROR]
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest::parse(
            r#"
[campaign]
name = "t"
seed = 5

[scenario.a]
net = "small"
scale = "tiny"
schemes = ["base", "tune"]
patterns = ["uniform-random"]
rates = [0.005, 0.028]
faults = ["none", "loss-0.5"]

[scenario.b]
net = "small"
scale = "tiny"
schemes = ["alo"]
patterns = ["transpose"]
rates = [0.01]
"#,
        )
        .unwrap()
    }

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let m = manifest();
        let a = expand(&m);
        let b = expand(&m);
        assert_eq!(a.len(), 9, "2 schemes x 2 rates x 2 faults + 1");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.idx, y.idx);
            assert_eq!(x.label(), y.label());
            assert_eq!(x.seed, y.seed);
        }
        // Indices are positional and dense.
        for (i, job) in a.iter().enumerate() {
            assert_eq!(job.idx, i as u64);
        }
        // Scenario order then axis order: first job is a/base, last is b.
        assert_eq!(a[0].scenario, "a");
        assert_eq!(a[0].scheme, "base");
        assert_eq!(a[0].fault, FaultSpec::None);
        assert_eq!(a[1].fault, FaultSpec::Loss(0.5));
        assert_eq!(a.last().unwrap().scenario, "b");
        // Seeds differ across jobs (axis coordinates feed the hash).
        let mut seeds: Vec<u64> = a.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn storm_plans_are_deterministic_and_valid() {
        let m = manifest();
        let mut spec = expand(&m)[0].clone();
        spec.fault = FaultSpec::Storm(4);
        let p1 = fault_plan(&spec, m.seed).unwrap();
        let p2 = fault_plan(&spec, m.seed).unwrap();
        assert_eq!(p1, p2, "storm draw must be deterministic");
        assert_eq!(p1.links.len(), 4);
        assert_eq!(p1.hotspots.len(), 1);
        let net = spec.net.net(DeadlockMode::PAPER_RECOVERY);
        p1.validate(net.node_count(), 2 * net.dimensions).unwrap();
        // A different campaign seed draws a different storm.
        let p3 = fault_plan(&spec, m.seed + 1).unwrap();
        assert_ne!(p1, p3);
    }

    #[test]
    fn crash_rig_is_keyed_on_attempt() {
        // The rig reads the environment; set it only for this check.
        std::env::set_var("STCC_CAMPAIGN_FAIL", "flaky:2,doomed:all");
        assert!(rigged_to_crash("flaky", 0));
        assert!(rigged_to_crash("flaky", 1));
        assert!(!rigged_to_crash("flaky", 2));
        assert!(rigged_to_crash("doomed", 0));
        assert!(rigged_to_crash("doomed", 99));
        assert!(!rigged_to_crash("steady", 0));
        std::env::remove_var("STCC_CAMPAIGN_FAIL");
    }

    #[test]
    fn rows_round_trip_through_the_protocol() {
        let cells = vec!["0.1234".to_owned(), "tab\there".to_owned(), "-".to_owned()];
        let payload = crate::journal::escape_rows(&vec![cells.clone()]);
        let crc = checkpoint::crc32(payload.as_bytes());
        let line = format!("{OK_TAG} {crc:08x} {payload}");
        let m = manifest();
        match classify(&line, Some(0), &m) {
            AttemptOutcome::Ok(got) => assert_eq!(got, cells),
            _ => panic!("valid OK line must classify as success"),
        }
        // A corrupted payload fails the crc and is not trusted.
        let bad = format!("{OK_TAG} {crc:08x} {payload}x");
        assert!(matches!(
            classify(&bad, Some(0), &m),
            AttemptOutcome::Failed(FailureKind::Failed, _)
        ));
        // Typed failure lines come back typed (timeouts normalized).
        let line = format!(
            "{ERR_TAG} timeout {}",
            crate::journal::escape_cell("x: wall budget exhausted at cycle 123")
        );
        match classify(&line, Some(EXIT_WORKER_FAILED), &m) {
            AttemptOutcome::Failed(FailureKind::TimedOut, msg) => {
                assert!(
                    !msg.contains("cycle 123"),
                    "timeout text must be normalized"
                )
            }
            _ => panic!("ERR line must classify as its kind"),
        }
        // No marker at all: a crash.
        assert!(matches!(
            classify("", Some(7), &m),
            AttemptOutcome::Failed(FailureKind::Panicked, _)
        ));
    }

    #[test]
    fn report_is_a_pure_function_of_rows() {
        let m = manifest();
        let specs = expand(&m);
        let tally = Tally::default();
        let metrics: Vec<String> = vec![
            "0.5".into(),
            "20.0".into(),
            "0.99".into(),
            "3".into(),
            "0".into(),
            "0".into(),
            "2".into(),
            "1".into(),
        ];
        let rows: Vec<Vec<String>> = specs
            .iter()
            .map(|s| compose_row(s, "ok", 1, &tally, &metrics))
            .collect();
        let mut table = Table::new("t", COLUMNS);
        table.extend(rows.clone());
        let a = render_report(&m, 0xAB, &table, &rows);
        let b = render_report(&m, 0xAB, &table, &rows);
        assert_eq!(a, b);
        assert!(a.contains("## Degradation"));
        assert!(a.contains("quarantined jobs: none"));
        assert!(a.contains("## Scheme summary"));
    }
}
