//! Per-sweep resume journal.
//!
//! An append-only, fsync'd text file recording the rendered rows of every
//! completed sweep point — and a typed error record for every point that
//! *failed* — so a killed run (crash, SIGKILL, SIGINT) can be re-entered
//! with `--resume` and only re-simulate what never finished. Because every
//! job is deterministic, replaying journaled rows is bit-identical to
//! re-running them — the golden CSVs prove it. Failure records are never
//! replayed: on resume the failed point is *retried* (with the failure kept
//! on disk until a success supersedes it), so a sweep wedged on one
//! timed-out point does not lose the diagnosis or re-crash blind.
//!
//! Format (one record per line, human-inspectable):
//!
//! ```text
//! stcc-journal v1 <16-hex sweep fingerprint>
//! <job index> <8-hex crc32 of payload> <escaped payload>
//! fail <job index> <8-hex crc32 of payload> <kind>\t<escaped message>
//! ```
//!
//! The success payload is the job's rows: cells escaped (`\` `\t` `\n` `\v`
//! → `\\` `\t` `\n` `\v` escape sequences), joined by tabs within a row and
//! by vertical tabs between rows. A failure payload is the error kind
//! (`timeout`, `panic` or `failed`) and the escaped diagnostic message.
//! Each record is flushed and fsync'd before the job is considered
//! complete, so at most the final line can be torn by a crash; loading
//! tolerates (and drops) torn or corrupt lines, and re-opening for resume
//! compacts the file back to only its valid records. Per job index the
//! *last* record wins, so a retry that succeeds supersedes its earlier
//! failure record.

use crate::runner::JobError;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

/// Rendered rows of one completed job.
pub type Rows = Vec<Vec<String>>;

const HEADER_TAG: &str = "stcc-journal v1";
const FAIL_TAG: &str = "fail";

/// The journaled class of a failed job (the [`JobError`] variants worth
/// persisting; `Interrupted` jobs never ran, so they are not recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The job's watchdog fired: livelock or an exhausted cycle/wall budget.
    TimedOut,
    /// The job (or its worker process) panicked or crashed.
    Panicked,
    /// The job returned a typed error (e.g. an invalid configuration).
    Failed,
}

impl FailureKind {
    /// The journaled kind of `error`, or `None` for errors that must not be
    /// recorded (`Interrupted`: the job never ran and will simply re-run).
    #[must_use]
    pub fn of(error: &JobError) -> Option<FailureKind> {
        match error {
            JobError::TimedOut(_) => Some(FailureKind::TimedOut),
            JobError::Panicked(_) => Some(FailureKind::Panicked),
            JobError::Failed(_) => Some(FailureKind::Failed),
            JobError::Interrupted => None,
        }
    }

    /// The on-disk (and report) tag.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::TimedOut => "timeout",
            FailureKind::Panicked => "panic",
            FailureKind::Failed => "failed",
        }
    }

    /// Parses an on-disk tag.
    #[must_use]
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "timeout" => Some(FailureKind::TimedOut),
            "panic" => Some(FailureKind::Panicked),
            "failed" => Some(FailureKind::Failed),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A journaled typed failure: what killed the point on its last attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// The error class.
    pub kind: FailureKind,
    /// The diagnostic message of the failing attempt.
    pub message: String,
}

/// Everything a journal held when it was reopened: completed jobs to
/// replay verbatim, and failed jobs to *retry* (their records survive
/// compaction so the diagnosis is never lost, but they are not replayed).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct JournalLoad {
    /// Rendered rows of every completed job, by job index.
    pub done: BTreeMap<u64, Rows>,
    /// The last recorded failure of every job that never completed.
    pub failed: BTreeMap<u64, FailureRecord>,
}

/// An open, append-only sweep journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens the journal at `path` for a sweep identified by `fingerprint`.
    ///
    /// With `resume` set, any valid records from a previous run (same
    /// fingerprint) are loaded and returned, and the file is compacted to
    /// exactly those records. Otherwise — or when the existing file belongs
    /// to a different sweep or is unreadable — the journal starts fresh.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or rewriting the file.
    pub fn begin(
        path: &Path,
        fingerprint: u64,
        resume: bool,
    ) -> io::Result<(Journal, JournalLoad)> {
        let load = if resume {
            load(path, fingerprint)
        } else {
            JournalLoad::default()
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Rewrite from scratch either way: a fresh start truncates stale
        // records, and a resume compacts away any torn tail line so new
        // appends land on a clean line boundary.
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        writeln!(file, "{HEADER_TAG} {fingerprint:016x}")?;
        for (idx, rows) in &load.done {
            write_record(&mut file, *idx, rows)?;
        }
        for (idx, failure) in &load.failed {
            write_failure(&mut file, *idx, failure.kind, &failure.message)?;
        }
        file.sync_data()?;
        Ok((Journal { file }, load))
    }

    /// Appends (and fsyncs) one completed job's rows.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an unrecorded job must not count as
    /// complete.
    pub fn append(&mut self, idx: u64, rows: &Rows) -> io::Result<()> {
        write_record(&mut self.file, idx, rows)?;
        self.file.sync_data()
    }

    /// Appends (and fsyncs) a typed failure record for job `idx`, so a
    /// resume retries the point instead of silently forgetting why it died.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_failure(&mut self, idx: u64, kind: FailureKind, message: &str) -> io::Result<()> {
        write_failure(&mut self.file, idx, kind, message)?;
        self.file.sync_data()
    }
}

fn write_record(file: &mut File, idx: u64, rows: &Rows) -> io::Result<()> {
    let payload = escape_rows(rows);
    let crc = checkpoint::crc32(payload.as_bytes());
    writeln!(file, "{idx} {crc:08x} {payload}")
}

fn write_failure(file: &mut File, idx: u64, kind: FailureKind, message: &str) -> io::Result<()> {
    let payload = format!("{}\t{}", kind.label(), escape_cell(message));
    let crc = checkpoint::crc32(payload.as_bytes());
    writeln!(file, "{FAIL_TAG} {idx} {crc:08x} {payload}")
}

/// Loads every valid record of a journal with a matching fingerprint;
/// anything unreadable, foreign or corrupt yields an empty load.
fn load(path: &Path, fingerprint: u64) -> JournalLoad {
    let mut text = String::new();
    let ok = File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .is_ok();
    if !ok {
        return JournalLoad::default();
    }
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&format!("{HEADER_TAG} {fingerprint:016x}").as_str()) {
        return JournalLoad::default();
    }
    let records = &lines[1..];
    let mut out = JournalLoad::default();
    for (i, line) in records.iter().enumerate() {
        // Per index the last record wins: a success supersedes any earlier
        // failure (a retried point), and vice versa.
        match parse_line(line) {
            Some(Record::Done(idx, rows)) => {
                out.failed.remove(&idx);
                out.done.insert(idx, rows);
            }
            Some(Record::Failed(idx, failure)) => {
                out.done.remove(&idx);
                out.failed.insert(idx, failure);
            }
            None => {
                // A record that fails its CRC or shape check is dropped and
                // its point re-run. The expected cause is a crash mid-append
                // tearing the final line; anything earlier is bit rot.
                let what = if i + 1 == records.len() {
                    "torn trailing"
                } else {
                    "corrupt"
                };
                eprintln!(
                    "warning: dropping {what} record at {}:{} — its point will be re-run",
                    path.display(),
                    i + 2
                );
            }
        }
    }
    out
}

enum Record {
    Done(u64, Rows),
    Failed(u64, FailureRecord),
}

fn parse_line(line: &str) -> Option<Record> {
    if let Some(rest) = line.strip_prefix("fail ") {
        let (idx, payload) = parse_checked(rest)?;
        let (kind, message) = payload.split_once('\t')?;
        let kind = FailureKind::parse(kind)?;
        let message = unescape_cell(message)?;
        return Some(Record::Failed(idx, FailureRecord { kind, message }));
    }
    let (idx, payload) = parse_checked(line)?;
    unescape_rows(payload).map(|rows| Record::Done(idx, rows))
}

/// Parses `<idx> <crc> <payload>`, validating the CRC.
fn parse_checked(line: &str) -> Option<(u64, &str)> {
    let mut parts = line.splitn(3, ' ');
    let idx: u64 = parts.next()?.parse().ok()?;
    let crc: u32 = u32::from_str_radix(parts.next()?, 16).ok()?;
    let payload = parts.next()?;
    if checkpoint::crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some((idx, payload))
}

pub(crate) fn escape_cell(cell: &str) -> String {
    let mut out = String::with_capacity(cell.len());
    for c in cell.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\x0b' => out.push_str("\\v"),
            other => out.push(other),
        }
    }
    out
}

pub(crate) fn escape_rows(rows: &Rows) -> String {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|c| escape_cell(c))
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect::<Vec<_>>()
        .join("\x0b")
}

pub(crate) fn unescape_cell(cell: &str) -> Option<String> {
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'v' => out.push('\x0b'),
            _ => return None,
        }
    }
    Some(out)
}

pub(crate) fn unescape_rows(payload: &str) -> Option<Rows> {
    payload
        .split('\x0b')
        .map(|row| {
            row.split('\t')
                .map(unescape_cell)
                .collect::<Option<Vec<_>>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u64) -> Rows {
        vec![
            vec![format!("r{n}"), "0.5".to_owned()],
            vec![
                "x,\"y\"".to_owned(),
                "tab\there\nand\\slash\x0btoo".to_owned(),
            ],
        ]
    }

    #[test]
    fn round_trips_awkward_cells() {
        let dir = std::env::temp_dir().join("stcc-journal-test-rt");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, load) = Journal::begin(&path, 0xabcd, false).unwrap();
        assert!(load.done.is_empty());
        j.append(3, &rows(3)).unwrap();
        j.append(1, &rows(1)).unwrap();
        drop(j);
        let (_, load) = Journal::begin(&path, 0xabcd, true).unwrap();
        assert_eq!(load.done.len(), 2);
        assert_eq!(load.done[&3], rows(3));
        assert_eq!(load.done[&1], rows(1));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_start_truncates_and_mismatched_fingerprint_ignores() {
        let dir = std::env::temp_dir().join("stcc-journal-test-fp");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 1, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        drop(j);
        // Different fingerprint: the journal belongs to another sweep.
        let (_, load) = Journal::begin(&path, 2, true).unwrap();
        assert!(load.done.is_empty());
        // Fresh (non-resume) start discards records even with a match.
        let (mut j, _) = Journal::begin(&path, 1, false).unwrap();
        j.append(5, &rows(5)).unwrap();
        drop(j);
        let (_, load) = Journal::begin(&path, 1, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![5]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_and_corrupt_lines_are_dropped() {
        let dir = std::env::temp_dir().join("stcc-journal-test-torn");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 9, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        j.append(1, &rows(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn final line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("2 0badc0de r2\ttorn-without-newl");
        fs::write(&path, &text).unwrap();
        let (_, load) = Journal::begin(&path, 9, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        // The reopened journal was compacted: reloading again is clean.
        let (_, load) = Journal::begin(&path, 9, true).unwrap();
        assert_eq!(load.done.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tail_truncated_at_every_byte_offset_never_errors() {
        // A crash mid-`fsync` can leave any prefix of the final record on
        // disk. Whatever the cut point, resume must keep every earlier
        // record, drop the partial one, and never error.
        let dir = std::env::temp_dir().join("stcc-journal-test-cut");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 5, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        j.append(1, &rows(1)).unwrap();
        j.append(2, &rows(2)).unwrap();
        drop(j);
        let full = fs::read(&path).unwrap();
        // Start of the last record = just past the second record's newline.
        let text = String::from_utf8(full.clone()).unwrap();
        let mut newlines = text.match_indices('\n').map(|(i, _)| i);
        let base = newlines.nth(2).unwrap() + 1; // header + records 0 and 1
        assert!(base < full.len());
        for cut in base..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (_, load) = Journal::begin(&path, 5, true).unwrap();
            // Losing only the final newline leaves record 2 intact (the CRC
            // still passes), so that single cut point legitimately keeps it.
            let want = if cut == full.len() - 1 {
                vec![0, 1, 2]
            } else {
                vec![0, 1]
            };
            assert_eq!(
                load.done.keys().copied().collect::<Vec<_>>(),
                want,
                "cut at byte {cut} lost an intact record or kept a torn one"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_resumes_empty() {
        let path = std::env::temp_dir().join("stcc-journal-test-none/no.journal");
        let _ = fs::remove_file(&path);
        let (_, load) = Journal::begin(&path, 7, true).unwrap();
        assert!(load.done.is_empty() && load.failed.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_records_round_trip_and_survive_compaction() {
        let dir = std::env::temp_dir().join("stcc-journal-test-fail");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 11, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        j.append_failure(1, FailureKind::TimedOut, "livelock at cycle 42\twedged")
            .unwrap();
        j.append_failure(2, FailureKind::Panicked, "boom\nwith newline")
            .unwrap();
        drop(j);
        let (_, load) = Journal::begin(&path, 11, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(load.failed.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(load.failed[&1].kind, FailureKind::TimedOut);
        assert_eq!(load.failed[&1].message, "livelock at cycle 42\twedged");
        assert_eq!(load.failed[&2].kind, FailureKind::Panicked);
        assert_eq!(load.failed[&2].message, "boom\nwith newline");
        // Compaction preserved the failures: a second resume still sees
        // them (the diagnosis is not lost until a success supersedes it).
        let (_, load) = Journal::begin(&path, 11, true).unwrap();
        assert_eq!(load.failed.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn success_after_failure_supersedes_the_failure() {
        let dir = std::env::temp_dir().join("stcc-journal-test-retry");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 12, false).unwrap();
        j.append_failure(4, FailureKind::TimedOut, "first attempt wedged")
            .unwrap();
        j.append(4, &rows(4)).unwrap();
        drop(j);
        let (_, load) = Journal::begin(&path, 12, true).unwrap();
        assert_eq!(load.done.keys().copied().collect::<Vec<_>>(), vec![4]);
        assert!(load.failed.is_empty(), "retried point must not stay failed");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_failure_record_is_dropped() {
        let dir = std::env::temp_dir().join("stcc-journal-test-failtorn");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 13, false).unwrap();
        j.append_failure(0, FailureKind::Panicked, "real failure")
            .unwrap();
        drop(j);
        let full = fs::read_to_string(&path).unwrap();
        // Truncate mid-payload: the CRC no longer matches.
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        let (_, load) = Journal::begin(&path, 13, true).unwrap();
        assert!(load.done.is_empty());
        assert!(load.failed.is_empty(), "torn failure line must be dropped");
        // Unknown kinds are rejected, not misread.
        let bogus = "notakind\tmsg";
        let crc = checkpoint::crc32(bogus.as_bytes());
        fs::write(
            &path,
            format!("{HEADER_TAG} {:016x}\nfail 0 {crc:08x} {bogus}\n", 13),
        )
        .unwrap();
        let (_, load) = Journal::begin(&path, 13, true).unwrap();
        assert!(load.failed.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_kind_maps_job_errors() {
        assert_eq!(
            FailureKind::of(&JobError::TimedOut("x".into())),
            Some(FailureKind::TimedOut)
        );
        assert_eq!(
            FailureKind::of(&JobError::Panicked("x".into())),
            Some(FailureKind::Panicked)
        );
        assert_eq!(
            FailureKind::of(&JobError::Failed("x".into())),
            Some(FailureKind::Failed)
        );
        assert_eq!(FailureKind::of(&JobError::Interrupted), None);
        for kind in [
            FailureKind::TimedOut,
            FailureKind::Panicked,
            FailureKind::Failed,
        ] {
            assert_eq!(FailureKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FailureKind::parse("bogus"), None);
    }
}
