//! Per-sweep resume journal.
//!
//! An append-only, fsync'd text file recording the rendered rows of every
//! completed sweep point, so a killed run (crash, SIGKILL, SIGINT) can be
//! re-entered with `--resume` and only re-simulate what never finished.
//! Because every job is deterministic, replaying journaled rows is
//! bit-identical to re-running them — the golden CSVs prove it.
//!
//! Format (one record per line, human-inspectable):
//!
//! ```text
//! stcc-journal v1 <16-hex sweep fingerprint>
//! <job index> <8-hex crc32 of payload> <escaped payload>
//! ```
//!
//! The payload is the job's rows: cells escaped (`\` `\t` `\n` `\v` →
//! `\\` `\t` `\n` `\v` escape sequences), joined by tabs within a row and
//! by vertical tabs between rows. Each record is flushed and fsync'd before
//! the job is considered complete, so at most the final line can be torn
//! by a crash; loading tolerates (and drops) torn or corrupt lines, and
//! re-opening for resume compacts the file back to only its valid records.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

/// Rendered rows of one completed job.
pub type Rows = Vec<Vec<String>>;

const HEADER_TAG: &str = "stcc-journal v1";

/// An open, append-only sweep journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens the journal at `path` for a sweep identified by `fingerprint`.
    ///
    /// With `resume` set, any valid records from a previous run (same
    /// fingerprint) are loaded and returned, and the file is compacted to
    /// exactly those records. Otherwise — or when the existing file belongs
    /// to a different sweep or is unreadable — the journal starts fresh.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or rewriting the file.
    pub fn begin(
        path: &Path,
        fingerprint: u64,
        resume: bool,
    ) -> io::Result<(Journal, BTreeMap<u64, Rows>)> {
        let done = if resume {
            load(path, fingerprint)
        } else {
            BTreeMap::new()
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Rewrite from scratch either way: a fresh start truncates stale
        // records, and a resume compacts away any torn tail line so new
        // appends land on a clean line boundary.
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        writeln!(file, "{HEADER_TAG} {fingerprint:016x}")?;
        for (idx, rows) in &done {
            write_record(&mut file, *idx, rows)?;
        }
        file.sync_data()?;
        Ok((Journal { file }, done))
    }

    /// Appends (and fsyncs) one completed job's rows.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an unrecorded job must not count as
    /// complete.
    pub fn append(&mut self, idx: u64, rows: &Rows) -> io::Result<()> {
        write_record(&mut self.file, idx, rows)?;
        self.file.sync_data()
    }
}

fn write_record(file: &mut File, idx: u64, rows: &Rows) -> io::Result<()> {
    let payload = escape_rows(rows);
    let crc = checkpoint::crc32(payload.as_bytes());
    writeln!(file, "{idx} {crc:08x} {payload}")
}

/// Loads every valid record of a journal with a matching fingerprint;
/// anything unreadable, foreign or corrupt yields an empty map.
fn load(path: &Path, fingerprint: u64) -> BTreeMap<u64, Rows> {
    let mut text = String::new();
    let ok = File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .is_ok();
    if !ok {
        return BTreeMap::new();
    }
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&format!("{HEADER_TAG} {fingerprint:016x}").as_str()) {
        return BTreeMap::new();
    }
    let records = &lines[1..];
    let mut done = BTreeMap::new();
    for (i, line) in records.iter().enumerate() {
        match parse_record(line) {
            Some((idx, rows)) => {
                done.insert(idx, rows);
            }
            None => {
                // A record that fails its CRC or shape check is dropped and
                // its point re-run. The expected cause is a crash mid-append
                // tearing the final line; anything earlier is bit rot.
                let what = if i + 1 == records.len() {
                    "torn trailing"
                } else {
                    "corrupt"
                };
                eprintln!(
                    "warning: dropping {what} record at {}:{} — its point will be re-run",
                    path.display(),
                    i + 2
                );
            }
        }
    }
    done
}

fn parse_record(line: &str) -> Option<(u64, Rows)> {
    let mut parts = line.splitn(3, ' ');
    let idx: u64 = parts.next()?.parse().ok()?;
    let crc: u32 = u32::from_str_radix(parts.next()?, 16).ok()?;
    let payload = parts.next()?;
    if checkpoint::crc32(payload.as_bytes()) != crc {
        return None;
    }
    unescape_rows(payload).map(|rows| (idx, rows))
}

fn escape_cell(cell: &str) -> String {
    let mut out = String::with_capacity(cell.len());
    for c in cell.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\x0b' => out.push_str("\\v"),
            other => out.push(other),
        }
    }
    out
}

fn escape_rows(rows: &Rows) -> String {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|c| escape_cell(c))
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect::<Vec<_>>()
        .join("\x0b")
}

fn unescape_cell(cell: &str) -> Option<String> {
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'v' => out.push('\x0b'),
            _ => return None,
        }
    }
    Some(out)
}

fn unescape_rows(payload: &str) -> Option<Rows> {
    payload
        .split('\x0b')
        .map(|row| {
            row.split('\t')
                .map(unescape_cell)
                .collect::<Option<Vec<_>>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u64) -> Rows {
        vec![
            vec![format!("r{n}"), "0.5".to_owned()],
            vec![
                "x,\"y\"".to_owned(),
                "tab\there\nand\\slash\x0btoo".to_owned(),
            ],
        ]
    }

    #[test]
    fn round_trips_awkward_cells() {
        let dir = std::env::temp_dir().join("stcc-journal-test-rt");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, done) = Journal::begin(&path, 0xabcd, false).unwrap();
        assert!(done.is_empty());
        j.append(3, &rows(3)).unwrap();
        j.append(1, &rows(1)).unwrap();
        drop(j);
        let (_, done) = Journal::begin(&path, 0xabcd, true).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&3], rows(3));
        assert_eq!(done[&1], rows(1));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_start_truncates_and_mismatched_fingerprint_ignores() {
        let dir = std::env::temp_dir().join("stcc-journal-test-fp");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 1, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        drop(j);
        // Different fingerprint: the journal belongs to another sweep.
        let (_, done) = Journal::begin(&path, 2, true).unwrap();
        assert!(done.is_empty());
        // Fresh (non-resume) start discards records even with a match.
        let (mut j, _) = Journal::begin(&path, 1, false).unwrap();
        j.append(5, &rows(5)).unwrap();
        drop(j);
        let (_, done) = Journal::begin(&path, 1, true).unwrap();
        assert_eq!(done.keys().copied().collect::<Vec<_>>(), vec![5]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_and_corrupt_lines_are_dropped() {
        let dir = std::env::temp_dir().join("stcc-journal-test-torn");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 9, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        j.append(1, &rows(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn final line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("2 0badc0de r2\ttorn-without-newl");
        fs::write(&path, &text).unwrap();
        let (_, done) = Journal::begin(&path, 9, true).unwrap();
        assert_eq!(done.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        // The reopened journal was compacted: reloading again is clean.
        let (_, done) = Journal::begin(&path, 9, true).unwrap();
        assert_eq!(done.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tail_truncated_at_every_byte_offset_never_errors() {
        // A crash mid-`fsync` can leave any prefix of the final record on
        // disk. Whatever the cut point, resume must keep every earlier
        // record, drop the partial one, and never error.
        let dir = std::env::temp_dir().join("stcc-journal-test-cut");
        let path = dir.join("fig.test.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _) = Journal::begin(&path, 5, false).unwrap();
        j.append(0, &rows(0)).unwrap();
        j.append(1, &rows(1)).unwrap();
        j.append(2, &rows(2)).unwrap();
        drop(j);
        let full = fs::read(&path).unwrap();
        // Start of the last record = just past the second record's newline.
        let text = String::from_utf8(full.clone()).unwrap();
        let mut newlines = text.match_indices('\n').map(|(i, _)| i);
        let base = newlines.nth(2).unwrap() + 1; // header + records 0 and 1
        assert!(base < full.len());
        for cut in base..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (_, done) = Journal::begin(&path, 5, true).unwrap();
            // Losing only the final newline leaves record 2 intact (the CRC
            // still passes), so that single cut point legitimately keeps it.
            let want = if cut == full.len() - 1 {
                vec![0, 1, 2]
            } else {
                vec![0, 1]
            };
            assert_eq!(
                done.keys().copied().collect::<Vec<_>>(),
                want,
                "cut at byte {cut} lost an intact record or kept a torn one"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_resumes_empty() {
        let path = std::env::temp_dir().join("stcc-journal-test-none/no.journal");
        let _ = fs::remove_file(&path);
        let (_, done) = Journal::begin(&path, 7, true).unwrap();
        assert!(done.is_empty());
        fs::remove_file(&path).unwrap();
    }
}
