//! Figure 1: performance breakdown at network saturation.
//!
//! 16-ary 2-cube, adaptive routing, deadlock recovery, **no congestion
//! control**; uniform-random and butterfly traffic; delivered bandwidth vs
//! offered load. The paper's two observations to reproduce: (1) both
//! patterns collapse dramatically at saturation, and (2) they saturate at
//! *different* offered loads.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, sweep_rates_for, try_run_point, Scale, SweepCtx, Table};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig};

/// Runs the Figure 1 sweep, fanned across `ctx`'s pool (journaled points
/// are replayed, not re-run).
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 1 — saturation breakdown (base, deadlock recovery, 16-ary 2-cube)",
        &[
            "pattern",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
            "recovered",
        ],
    );
    let mut jobs = Vec::new();
    for pattern in [Pattern::UniformRandom, Pattern::Butterfly] {
        for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
            jobs.push((pattern.clone(), rate, i));
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(pattern, rate, _)| format!("fig1 {} @ {rate}", pattern.name()),
        |(pattern, rate, i)| {
            let cfg = steady_config(
                NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
                Scheme::Base,
                pattern.clone(),
                rate,
                scale,
                0xF16_0001 + i as u64,
            );
            let r = try_run_point(cfg)?;
            Ok::<_, JobError>(vec![vec![
                pattern.name().to_owned(),
                fnum(rate),
                fnum(r.tput_packets),
                fnum(r.tput_flits),
                fnum(r.latency),
                r.recovered.to_string(),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
