//! Figure 1: performance breakdown at network saturation.
//!
//! 16-ary 2-cube, adaptive routing, deadlock recovery, **no congestion
//! control**; uniform-random and butterfly traffic; delivered bandwidth vs
//! offered load. The paper's two observations to reproduce: (1) both
//! patterns collapse dramatically at saturation, and (2) they saturate at
//! *different* offered loads.

use crate::table::fnum;
use crate::{run_point, steady_config, sweep_rates_for, Scale, Table};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig};

/// Runs the Figure 1 sweep.
#[must_use]
pub fn generate(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 1 — saturation breakdown (base, deadlock recovery, 16-ary 2-cube)",
        &[
            "pattern",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
            "recovered",
        ],
    );
    for pattern in [Pattern::UniformRandom, Pattern::Butterfly] {
        for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
            let cfg = steady_config(
                NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
                Scheme::Base,
                pattern.clone(),
                rate,
                scale,
                0xF16_0001 + i as u64,
            );
            let r = run_point(cfg);
            t.push(vec![
                pattern.name().to_owned(),
                fnum(rate),
                fnum(r.tput_packets),
                fnum(r.tput_flits),
                fnum(r.latency),
                r.recovered.to_string(),
            ]);
        }
    }
    t
}
