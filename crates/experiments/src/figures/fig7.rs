//! Figure 7: performance under the bursty load.
//!
//! Delivered throughput vs time for `Base`, `ALO` and `Tune` under the
//! Figure 6 workload, with deadlock recovery (a) and avoidance (b), plus the
//! average packet latencies the paper quotes in the text. The shape to
//! reproduce: Base and ALO ramp up at each burst and then collapse into deep
//! saturation (the recovery configuration drains its backlog long after the
//! burst ends); Tune delivers sustained throughput and far lower latency.

use crate::figures::fig6;
use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{try_run_series, Scale, SweepCtx, Table};
use stcc::{Scheme, SimConfig};
use wormsim::{DeadlockMode, NetConfig};

/// The six (deadlock mode, scheme) combinations the bursty figures run.
fn combos() -> Vec<(DeadlockMode, &'static str, Scheme)> {
    let mut v = Vec::new();
    for (mode, mode_name) in [
        (DeadlockMode::PAPER_RECOVERY, "recovery"),
        (DeadlockMode::Avoidance, "avoidance"),
    ] {
        for scheme in [Scheme::Base, Scheme::Alo, Scheme::tuned_paper()] {
            v.push((mode, mode_name, scheme));
        }
    }
    v
}

/// Runs the six bursty traces, fanned across `ctx`'s pool. Each row is one
/// time window; the `latency` columns repeat each run's whole-run averages
/// on every row of that run (self-describing CSV).
///
/// # Errors
///
/// Returns the first failing trace.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 7 — bursty-load performance (throughput vs time; run-average latencies)",
        &[
            "deadlock",
            "scheme",
            "t",
            "tput_flits",
            "avg_net_latency",
            "avg_total_latency",
            "recovered",
        ],
    );
    let cycles = fig6::cycles(scale);
    let window = (cycles / 90).max(1);
    let rows = ctx.try_run_rows(
        combos(),
        |(_, mode_name, scheme)| format!("fig7 {mode_name} {}", scheme.label()),
        |(mode, mode_name, scheme)| {
            let cfg = SimConfig {
                net: NetConfig::paper(mode),
                workload: fig6::workload(scale),
                scheme: scheme.clone(),
                // The time series covers the whole run; latencies skip the
                // first (quiet) phase as warm-up.
                cycles,
                warmup: scale.bursty_phase() / 2,
                seed: 0xF16_0007,
            };
            let r = try_run_series(cfg, window)?;
            Ok::<_, JobError>(
                r.tput
                    .normalized(r.nodes)
                    .map(|(time, tput)| {
                        vec![
                            mode_name.to_owned(),
                            scheme.label(),
                            time.to_string(),
                            fnum(tput),
                            fnum(r.latency),
                            fnum(r.latency_total),
                            r.recovered.to_string(),
                        ]
                    })
                    .collect(),
            )
        },
    )?;
    t.extend(rows);
    Ok(t)
}

/// Condensed variant: just the per-run average latencies (the numbers the
/// paper quotes in §5.2.3).
///
/// # Errors
///
/// Returns the first failing trace.
pub fn latency_summary(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Figure 7 (text) — average packet latency under the bursty load",
        &["deadlock", "scheme", "avg_net_latency", "avg_total_latency"],
    );
    let cycles = fig6::cycles(scale);
    let rows = ctx.try_run_rows(
        combos(),
        |(_, mode_name, scheme)| format!("fig7-latency {mode_name} {}", scheme.label()),
        |(mode, mode_name, scheme)| {
            let cfg = SimConfig {
                net: NetConfig::paper(mode),
                workload: fig6::workload(scale),
                scheme: scheme.clone(),
                cycles,
                warmup: scale.bursty_phase() / 2,
                seed: 0xF16_0007,
            };
            let r = try_run_series(cfg, cycles / 8)?;
            Ok::<_, JobError>(vec![vec![
                mode_name.to_owned(),
                scheme.label(),
                fnum(r.latency),
                fnum(r.latency_total),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
