//! Ablation experiments the paper describes in prose (DESIGN.md X1–X5):
//!
//! * **X1** — last-snapshot vs linear-extrapolation congestion estimation
//!   (§3.1 credits extrapolation with 3%/5% of throughput under
//!   avoidance/recovery),
//! * **X2** — tuning-period insensitivity over 32–192 cycles (§4.1),
//! * **X3** — increment/decrement insensitivity over 1–4% (§4.1),
//! * **X4** — narrow (9-bit) side-band channels (§5.1 / companion TR),
//! * **X5** — side-band hop delay `h` (§5.2).
//!
//! All run the self-tuned scheme at a heavily oversaturated uniform-random
//! load, where the throttle does all the work.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{try_run_point, Scale, SweepCtx, Table};
use sideband::{Estimator, Quantizer, SidebandConfig};
use stcc::{Scheme, SimConfig, TuneConfig};
use traffic::{Pattern, Process, Workload};
use wormsim::{DeadlockMode, NetConfig};

/// The overload at which the ablations run (packets/node/cycle).
const RATE: f64 = 0.056;

fn run_tuned(
    tune: TuneConfig,
    mode: DeadlockMode,
    scale: Scale,
    seed: u64,
) -> Result<(f64, f64), JobError> {
    let cfg = SimConfig {
        net: NetConfig::paper(mode),
        workload: Workload::steady(Pattern::UniformRandom, Process::bernoulli(RATE)),
        scheme: Scheme::Tuned(tune),
        cycles: scale.cycles(),
        warmup: scale.warmup(),
        seed,
    };
    try_run_point(cfg).map(|r| (r.tput_flits, r.latency))
}

/// X1 — estimator comparison, both deadlock modes.
///
/// # Errors
///
/// Returns the first failing run.
pub fn extrapolation(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Ablation X1 — congestion estimator (tune @ 0.056, uniform random)",
        &["deadlock", "estimator", "tput_flits", "net_latency"],
    );
    let mut jobs = Vec::new();
    for (mode, mode_name) in [
        (DeadlockMode::PAPER_RECOVERY, "recovery"),
        (DeadlockMode::Avoidance, "avoidance"),
    ] {
        for (est, est_name) in [
            (Estimator::LastSnapshot, "last-snapshot"),
            (Estimator::LinearExtrapolation, "linear-extrapolation"),
            (Estimator::Ewma { alpha: 0.5 }, "ewma-0.5"),
        ] {
            jobs.push((mode, mode_name, est, est_name));
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(_, mode_name, _, est_name)| format!("X1 {mode_name} {est_name}"),
        |(mode, mode_name, est, est_name)| {
            let mut tune = TuneConfig::paper();
            tune.sideband.estimator = est;
            let (tput, lat) = run_tuned(tune, mode, scale, 0xAB1)?;
            Ok::<_, JobError>(vec![vec![
                mode_name.to_owned(),
                est_name.to_owned(),
                fnum(tput),
                fnum(lat),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}

/// X2 — tuning period sweep (1–6 gathers = 32–192 cycles).
///
/// # Errors
///
/// Returns the first failing run.
pub fn tuning_period(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Ablation X2 — tuning period (tune @ 0.056, recovery)",
        &["tune_period_cycles", "tput_flits", "net_latency"],
    );
    let rows = ctx.try_run_rows(
        vec![1u32, 2, 3, 4, 6],
        |gathers| format!("X2 gathers={gathers}"),
        |gathers| {
            let tune = TuneConfig {
                tune_gathers: gathers,
                ..TuneConfig::paper()
            };
            let period = tune.tune_period();
            let (tput, lat) = run_tuned(tune, DeadlockMode::PAPER_RECOVERY, scale, 0xAB2)?;
            Ok::<_, JobError>(vec![vec![period.to_string(), fnum(tput), fnum(lat)]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}

/// X3 — increment/decrement step sweep (1%–4% of all buffers).
///
/// # Errors
///
/// Returns the first failing run.
pub fn increments(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Ablation X3 — increment/decrement steps (tune @ 0.056, recovery)",
        &["inc_pct", "dec_pct", "tput_flits", "net_latency"],
    );
    let rows = ctx.try_run_rows(
        vec![
            (0.01, 0.04),
            (0.01, 0.01),
            (0.02, 0.04),
            (0.04, 0.04),
            (0.04, 0.01),
        ],
        |&(inc, dec)| format!("X3 inc={inc} dec={dec}"),
        |(inc, dec)| {
            let tune = TuneConfig {
                increment_frac: inc,
                decrement_frac: dec,
                ..TuneConfig::paper()
            };
            let (tput, lat) = run_tuned(tune, DeadlockMode::PAPER_RECOVERY, scale, 0xAB3)?;
            Ok::<_, JobError>(vec![vec![
                fnum(inc * 100.0),
                fnum(dec * 100.0),
                fnum(tput),
                fnum(lat),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}

/// X4 — side-band width: full 25-bit counts vs 9-bit quantized channels.
///
/// # Errors
///
/// Returns the first failing run.
pub fn sideband_bits(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Ablation X4 — side-band width (tune @ 0.056, recovery)",
        &["sideband_bits", "tput_flits", "net_latency"],
    );
    let rows = ctx.try_run_rows(
        vec![(25u32, None), (9, Some(Quantizer::new(9)))],
        |&(bits, _)| format!("X4 bits={bits}"),
        |(bits, quant)| {
            let mut tune = TuneConfig::paper();
            tune.sideband.quantizer = quant;
            let (tput, lat) = run_tuned(tune, DeadlockMode::PAPER_RECOVERY, scale, 0xAB4)?;
            Ok::<_, JobError>(vec![vec![bits.to_string(), fnum(tput), fnum(lat)]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}

/// X5 — side-band hop delay sweep (`h` in cycles; `g = 16 h`).
///
/// # Errors
///
/// Returns the first failing run.
pub fn hop_delay(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Ablation X5 — side-band hop delay (tune @ 0.056, recovery)",
        &["hop_delay", "gather_period", "tput_flits", "net_latency"],
    );
    let rows = ctx.try_run_rows(
        vec![1u64, 2, 4, 8],
        |h| format!("X5 h={h}"),
        |h| {
            let sideband = SidebandConfig {
                hop_delay: h,
                ..SidebandConfig::paper()
            };
            let g = sideband.gather_period();
            let tune = TuneConfig {
                sideband,
                ..TuneConfig::paper()
            };
            let (tput, lat) = run_tuned(tune, DeadlockMode::PAPER_RECOVERY, scale, 0xAB5)?;
            Ok::<_, JobError>(vec![vec![
                h.to_string(),
                g.to_string(),
                fnum(tput),
                fnum(lat),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
