//! Resilience: graceful degradation under side-band faults.
//!
//! Not a figure of the paper — this reproduction's fault-injection
//! experiment (DESIGN.md, "Fault model & degradation"). At a saturating
//! uniform-random load, sweep the side-band snapshot **loss rate** and
//! compare Base, Static and Tuned delivered bandwidth. The globally
//! informed schemes must degrade gracefully: as snapshots disappear their
//! estimates go quiet and both fall back towards uncontrolled (Base)
//! behavior — the self-tuner additionally via its staleness watchdog, whose
//! trip/re-arm counters the table reports alongside the controller's
//! raise/cut decision counts (quieting decisions are the mechanism of the
//! fallback, so the columns make the degradation story auditable). At 100% loss the Tuned scheme
//! must neither panic nor collapse: it fails open and lands within a few
//! percent of Static.

use crate::runner::{JobError, SweepError};
use crate::table::fnum;
use crate::{steady_config, try_run_point_with_faults, NetPreset, Scale, SweepCtx, Table};
use faults::{FaultPlan, SidebandFaults};
use stcc::Scheme;
use traffic::Pattern;
use wormsim::DeadlockMode;

/// The swept snapshot loss rates.
#[must_use]
pub fn loss_rates() -> Vec<f64> {
    vec![0.0, 0.1, 0.5, 0.9, 1.0]
}

/// Offered load of every run: past the base network's saturation knee, so
/// throttling (or its faulted absence) is what decides the outcome.
pub const LOAD: f64 = 0.028;

/// The three compared schemes on the paper network.
#[must_use]
pub fn schemes() -> Vec<Scheme> {
    schemes_on(NetPreset::Paper)
}

/// The three compared schemes, with the static threshold and side-band
/// radix matched to the preset's topology.
#[must_use]
pub fn schemes_on(net: NetPreset) -> Vec<Scheme> {
    vec![
        Scheme::Base,
        Scheme::Static {
            threshold: net.static_thresholds()[0],
            sideband: net.sideband(),
        },
        net.tuned(),
    ]
}

/// Runs the resilience sweep (deadlock recovery, uniform random) on the
/// paper network, fanned across `ctx`'s pool.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    generate_on(NetPreset::Paper, scale, ctx)
}

/// Runs the resilience sweep on a chosen network preset.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate_on(net: NetPreset, scale: Scale, ctx: &SweepCtx) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Resilience — delivered bandwidth under side-band snapshot loss (uniform random @ 0.028)",
        &[
            "loss_rate",
            "scheme",
            "tput_flits",
            "latency",
            "throttled",
            "lost_snaps",
            "rejected",
            "wd_trips",
            "wd_rearms",
            "raises",
            "cuts",
        ],
    );
    let mut jobs = Vec::new();
    for &loss in &loss_rates() {
        for scheme in schemes_on(net) {
            jobs.push((loss, scheme));
        }
    }
    let rows = ctx.try_run_rows(
        jobs,
        |(loss, scheme)| format!("resilience {} loss={loss}", scheme.label()),
        |(loss, scheme)| {
            let cfg = steady_config(
                net.net(DeadlockMode::PAPER_RECOVERY),
                scheme.clone(),
                Pattern::UniformRandom,
                LOAD,
                scale,
                0xFA_0001,
            );
            let plan = FaultPlan::sideband_only(
                0xFA17,
                SidebandFaults {
                    loss_rate: loss,
                    ..SidebandFaults::none()
                },
            );
            let (p, f) = try_run_point_with_faults(cfg, plan)?;
            let sb = f.sideband.unwrap_or_default();
            Ok::<_, JobError>(vec![vec![
                fnum(loss),
                scheme.label(),
                fnum(p.tput_flits),
                fnum(p.latency),
                p.throttled.to_string(),
                sb.lost_snapshots.to_string(),
                sb.rejected().to_string(),
                f.watchdog_trips.to_string(),
                f.watchdog_rearms.to_string(),
                f.controller.raises.to_string(),
                f.controller.cuts.to_string(),
            ]])
        },
    )?;
    t.extend(rows);
    Ok(t)
}
