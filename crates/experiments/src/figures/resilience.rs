//! Resilience: graceful degradation under side-band faults.
//!
//! Not a figure of the paper — this reproduction's fault-injection
//! experiment (DESIGN.md, "Fault model & degradation"). At a saturating
//! uniform-random load, sweep the side-band snapshot **loss rate** and
//! compare Base, Static and Tuned delivered bandwidth. The globally
//! informed schemes must degrade gracefully: as snapshots disappear their
//! estimates go quiet and both fall back towards uncontrolled (Base)
//! behavior — the self-tuner additionally via its staleness watchdog, whose
//! trip/re-arm counters the table reports. At 100% loss the Tuned scheme
//! must neither panic nor collapse: it fails open and lands within a few
//! percent of Static.

use crate::runner::{Pool, SweepError};
use crate::table::fnum;
use crate::{steady_config, try_run_point_with_faults, Scale, Table};
use faults::{FaultPlan, SidebandFaults};
use sideband::SidebandConfig;
use stcc::Scheme;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig};

/// The swept snapshot loss rates.
#[must_use]
pub fn loss_rates() -> Vec<f64> {
    vec![0.0, 0.1, 0.5, 0.9, 1.0]
}

/// Offered load of every run: past the base network's saturation knee, so
/// throttling (or its faulted absence) is what decides the outcome.
pub const LOAD: f64 = 0.028;

/// The three compared schemes.
#[must_use]
pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Base,
        Scheme::Static {
            threshold: 250,
            sideband: SidebandConfig::paper(),
        },
        Scheme::tuned_paper(),
    ]
}

/// Runs the resilience sweep (deadlock recovery, uniform random), fanned
/// across `pool`.
///
/// # Errors
///
/// Returns the first failing sweep point.
pub fn generate(scale: Scale, pool: &Pool) -> Result<Table, SweepError> {
    let mut t = Table::new(
        "Resilience — delivered bandwidth under side-band snapshot loss (uniform random @ 0.028)",
        &[
            "loss_rate",
            "scheme",
            "tput_flits",
            "latency",
            "throttled",
            "lost_snaps",
            "rejected",
            "wd_trips",
            "wd_rearms",
        ],
    );
    let mut jobs = Vec::new();
    for &loss in &loss_rates() {
        for scheme in schemes() {
            jobs.push((loss, scheme));
        }
    }
    let results = pool.try_run(
        jobs,
        |(loss, scheme)| format!("resilience {} loss={loss}", scheme.label()),
        |(loss, scheme)| {
            let cfg = steady_config(
                NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
                scheme.clone(),
                Pattern::UniformRandom,
                LOAD,
                scale,
                0xFA_0001,
            );
            let plan = FaultPlan::sideband_only(
                0xFA17,
                SidebandFaults {
                    loss_rate: loss,
                    ..SidebandFaults::none()
                },
            );
            try_run_point_with_faults(cfg, plan).map(|(p, f)| (loss, scheme, p, f))
        },
    )?;
    for (loss, scheme, p, f) in results {
        let sb = f.sideband.unwrap_or_default();
        t.push(vec![
            fnum(loss),
            scheme.label(),
            fnum(p.tput_flits),
            fnum(p.latency),
            p.throttled.to_string(),
            sb.lost_snapshots.to_string(),
            sb.rejected().to_string(),
            f.watchdog_trips.to_string(),
            f.watchdog_rearms.to_string(),
        ]);
    }
    Ok(t)
}
