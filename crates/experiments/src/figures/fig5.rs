//! Figure 5: static thresholds vs self-tuning.
//!
//! Deadlock recovery; uniform-random and butterfly traffic; `Base`, two
//! fixed global thresholds (250 ≈ 8% occupancy and 50 ≈ 1.6%), and `Tune`.
//! The point to reproduce: 250 works well for uniform random but cannot
//! prevent butterfly saturation, 50 protects butterfly but over-throttles
//! uniform random, and the self-tuner adapts to both.

use crate::table::fnum;
use crate::{run_point, steady_config, sweep_rates_for, Scale, Table};
use sideband::SidebandConfig;
use stcc::Scheme;
use traffic::Pattern;
use wormsim::{DeadlockMode, NetConfig};

/// The paper's static thresholds (in full buffers; 8% and 1.6% of 3072).
pub const STATIC_THRESHOLDS: [u32; 2] = [250, 50];

/// Runs the Figure 5 sweeps.
#[must_use]
pub fn generate(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 5 — static thresholds vs self-tuning (deadlock recovery)",
        &[
            "pattern",
            "scheme",
            "offered_pkts",
            "tput_pkts",
            "tput_flits",
            "net_latency",
        ],
    );
    let schemes: Vec<Scheme> = [Scheme::Base]
        .into_iter()
        .chain(STATIC_THRESHOLDS.iter().map(|&threshold| Scheme::Static {
            threshold,
            sideband: SidebandConfig::paper(),
        }))
        .chain([Scheme::tuned_paper()])
        .collect();
    for pattern in [Pattern::UniformRandom, Pattern::Butterfly] {
        for scheme in &schemes {
            for (i, &rate) in sweep_rates_for(scale).iter().enumerate() {
                let cfg = steady_config(
                    NetConfig::paper(DeadlockMode::PAPER_RECOVERY),
                    scheme.clone(),
                    pattern.clone(),
                    rate,
                    scale,
                    0xF16_0005 + i as u64,
                );
                let r = run_point(cfg);
                t.push(vec![
                    pattern.name().to_owned(),
                    scheme.label(),
                    fnum(rate),
                    fnum(r.tput_packets),
                    fnum(r.tput_flits),
                    fnum(r.latency),
                ]);
            }
        }
    }
    t
}
